"""The reprolint semantic engine: symbols, graphs, dataflow.

Rules used to re-walk raw ASTs per file; the process-safety family
(RL008-RL011) needs cross-file answers — what a name resolves to, which
modules a fork would drag in, who calls whom, where a buffer view
escapes.  :class:`ProjectSemantics` is the shared build phase the
driver attaches to :class:`repro.analysis.driver.Project` as
``project.semantics``: built lazily once per lint run, memoized
per-function dataflow, queried by every rule.

Layers (bottom up, docs/STATIC_ANALYSIS.md "Engine architecture"):

* :mod:`repro.analysis.semantics.symbols` — per-module definitions and
  import bindings, qualified-name resolution across re-exports;
* :mod:`repro.analysis.semantics.graph` — module import graph
  (fork-reachability) and the resolved function call graph;
* :mod:`repro.analysis.semantics.dataflow` — per-function def-use
  chains, buffer-view taint with ownership roots, escape records, and
  the annotation-driven :class:`~repro.analysis.semantics.dataflow.Typer`.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set, Tuple

from repro.analysis.astutil import FunctionNode
from repro.analysis.semantics.dataflow import (
    Escape,
    FunctionDataflow,
    Typer,
    build_dataflow,
)
from repro.analysis.semantics.graph import CallGraph, ImportGraph, iter_functions
from repro.analysis.semantics.symbols import (
    ClassInfo,
    GlobalDef,
    ModuleSymbols,
    SymbolTable,
    module_name,
)

__all__ = [
    "CallGraph",
    "ClassInfo",
    "Escape",
    "FunctionDataflow",
    "GlobalDef",
    "ImportGraph",
    "ModuleSymbols",
    "ProjectSemantics",
    "SymbolTable",
    "Typer",
    "build_dataflow",
    "iter_functions",
    "module_name",
]


class ProjectSemantics:
    """The shared cross-file context rules query instead of raw ASTs."""

    def __init__(self, project) -> None:
        self.symbols = SymbolTable.build(project)
        self.imports = ImportGraph.build(self.symbols)
        self.calls = CallGraph.build(self.symbols)
        self._dataflow: Dict[int, FunctionDataflow] = {}

    def module(self, source) -> Optional[ModuleSymbols]:
        """The symbol entry for a driver SourceModule."""
        return self.symbols.by_relpath.get(source.relpath)

    def dataflow(
        self, symbols: ModuleSymbols, fn: FunctionNode
    ) -> FunctionDataflow:
        """Memoized dataflow pass for one function."""
        cached = self._dataflow.get(id(fn))
        if cached is None:
            cached = build_dataflow(fn, set(symbols.globals))
            self._dataflow[id(fn)] = cached
        return cached

    def typer(
        self, symbols: ModuleSymbols, cls_info: Optional[ClassInfo],
        fn: FunctionNode,
    ) -> Typer:
        return Typer(
            self.symbols, symbols, cls_info, self.dataflow(symbols, fn)
        )

    def functions(
        self,
    ) -> Iterator[Tuple[ModuleSymbols, str, Optional[ClassInfo], FunctionNode]]:
        """Every project function: (module, qualified, class, node)."""
        for symbols in self.symbols.modules.values():
            for qualified, info, fn in iter_functions(symbols):
                yield symbols, qualified, info, fn

    def modules_reachable_from_parts(self, parts: Set[str]) -> Set[str]:
        """Modules whose path contains one of ``parts``, plus everything
        they transitively import (the post-fork visibility set)."""
        roots = [
            symbols.name
            for symbols in self.symbols.modules.values()
            if any(part in parts for part in symbols.source.parts)
        ]
        return self.imports.reachable_from(roots)
