"""Import and call graphs over the linted project.

Middle layer of the semantic engine: the :class:`ImportGraph` answers
*which modules can see this state* (RL008's fork-reachability), the
:class:`CallGraph` answers *who calls whom* one resolved edge at a time
(RL011's interprocedural accounting search).  Both are built once per
lint run from the symbol table and shared by every rule.

Call edges are resolved conservatively: a call is recorded only when
the callee name resolves to a function or method the project defines —
``self.m(...)`` against the enclosing class, bare and imported names
through the symbol table, ``ClassName(...)`` to ``__init__``.  Calls
through values whose type is unknown simply contribute no edge, so
rules that consult the graph degrade to their intraprocedural answer
rather than guessing.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.astutil import FunctionNode, dotted_name
from repro.analysis.semantics.symbols import ClassInfo, ModuleSymbols, SymbolTable


class ImportGraph:
    """Module-level import edges, project modules only."""

    def __init__(self, edges: Dict[str, FrozenSet[str]]) -> None:
        self.edges = edges

    @classmethod
    def build(cls, table: SymbolTable) -> "ImportGraph":
        edges: Dict[str, FrozenSet[str]] = {}
        for name, symbols in table.modules.items():
            targets: Set[str] = set()
            for qualified in symbols.imports.values():
                module, _ = table.split_qualified(qualified)
                if module is not None and module.name != name:
                    targets.add(module.name)
            edges[name] = frozenset(targets)
        return cls(edges)

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Roots plus every module they transitively import."""
        seen: Set[str] = set()
        stack = [root for root in roots if root in self.edges]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.edges.get(name, ()))
        return seen


def iter_functions(
    symbols: ModuleSymbols,
) -> Iterator[Tuple[str, Optional[ClassInfo], FunctionNode]]:
    """``(qualified name, owning class or None, node)`` for every
    top-level function and method of a module."""
    for name, fn in symbols.functions.items():
        yield f"{symbols.name}.{name}", None, fn
    for info in symbols.classes.values():
        for name, fn in info.methods.items():
            yield f"{info.qualname}.{name}", info, fn


class CallGraph:
    """Resolved call edges between project functions and methods."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.functions: Dict[str, FunctionNode] = {}
        #: id(function node) -> qualified name (rules walk ASTs and need
        #: the way back into the graph).
        self.names_by_node: Dict[int, str] = {}
        self.callees: Dict[str, FrozenSet[str]] = {}
        self.callers: Dict[str, FrozenSet[str]] = {}

    @classmethod
    def build(cls, table: SymbolTable) -> "CallGraph":
        graph = cls(table)
        for symbols in table.modules.values():
            for qualified, _, fn in iter_functions(symbols):
                graph.functions[qualified] = fn
                graph.names_by_node[id(fn)] = qualified

        callers: Dict[str, Set[str]] = {}
        for symbols in table.modules.values():
            for qualified, info, fn in iter_functions(symbols):
                targets: Set[str] = set()
                for node in ast.walk(fn):
                    if not isinstance(node, ast.Call):
                        continue
                    callee = graph.resolve_call(symbols, info, node.func)
                    if callee is not None:
                        targets.add(callee)
                        callers.setdefault(callee, set()).add(qualified)
                graph.callees[qualified] = frozenset(targets)
        graph.callers = {
            name: frozenset(sources) for name, sources in callers.items()
        }
        return graph

    def resolve_call(
        self,
        symbols: ModuleSymbols,
        cls_info: Optional[ClassInfo],
        func: ast.expr,
    ) -> Optional[str]:
        """Qualified name of the project function a call expression
        targets, or ``None`` when it cannot be resolved."""
        name = dotted_name(func)
        if name is None:
            return None
        if cls_info is not None and name.startswith(("self.", "cls.")):
            method = name.split(".", 1)[1]
            if "." not in method and method in cls_info.methods:
                return f"{cls_info.qualname}.{method}"
            return None
        qualified = self.table.resolve(symbols, name)
        if qualified is None:
            return None
        if qualified in self.functions:
            return qualified
        # ``ClassName(...)`` constructs: edge to ``__init__`` if defined.
        info = self.table.lookup_class(qualified)
        if info is not None and "__init__" in info.methods:
            return f"{qualified}.__init__"
        return None

    def qualified_for(self, fn: FunctionNode) -> Optional[str]:
        return self.names_by_node.get(id(fn))

    def function(self, qualified: str) -> Optional[FunctionNode]:
        return self.functions.get(qualified)

    def callees_of(self, qualified: Optional[str]) -> FrozenSet[str]:
        if qualified is None:
            return frozenset()
        return self.callees.get(qualified, frozenset())

    def callers_of(self, qualified: Optional[str]) -> FrozenSet[str]:
        if qualified is None:
            return frozenset()
        return self.callers.get(qualified, frozenset())

    def callee_functions(
        self, qualified: Optional[str]
    ) -> List[Tuple[str, FunctionNode]]:
        """The resolved callee nodes of a function, one call level deep."""
        return [
            (name, self.functions[name])
            for name in sorted(self.callees_of(qualified))
            if name in self.functions
        ]
