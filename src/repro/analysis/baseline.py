"""The committed-baseline mechanism for grandfathered findings.

A baseline is a JSON file mapping finding fingerprints — ``(rule, path,
message)``, no line numbers — to occurrence counts.  Linting against a
baseline marks up to ``count`` matching findings as *baselined*: still
reported, but not failing the run.  This lets a new rule land with the
tree's existing debt recorded instead of silenced, while any *new*
violation of the same rule still fails CI.  The shipped baseline
(``reprolint-baseline.json``) is empty: the tree lints clean.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.analysis.findings import Finding, sort_findings

Fingerprint = Tuple[str, str, str]


class Baseline:
    """Grandfathered finding fingerprints with per-fingerprint counts."""

    def __init__(self, counts: Dict[Fingerprint, int] = None) -> None:
        self.counts: Dict[Fingerprint, int] = dict(counts or {})

    def __len__(self) -> int:
        return sum(self.counts.values())

    # -- construction ---------------------------------------------------

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        counts: Dict[Fingerprint, int] = {}
        for finding in findings:
            key = finding.fingerprint
            counts[key] = counts.get(key, 0) + 1
        return cls(counts)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        if not isinstance(data, dict) or data.get("version") != 1:
            raise ValueError(f"{path}: not a reprolint baseline (version 1)")
        counts: Dict[Fingerprint, int] = {}
        for entry in data.get("findings", ()):
            key = (entry["rule"], entry["path"], entry["message"])
            counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
        return cls(counts)

    # -- persistence ----------------------------------------------------

    def to_json(self) -> str:
        entries = [
            {"rule": rule, "path": path, "message": message, "count": count}
            for (rule, path, message), count in sorted(self.counts.items())
        ]
        return json.dumps(
            {"version": 1, "tool": "reprolint", "findings": entries},
            indent=2, sort_keys=True,
        ) + "\n"

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    # -- staleness ------------------------------------------------------

    def stale_entries(
        self, findings: Sequence[Finding]
    ) -> List[Tuple[Fingerprint, int]]:
        """Grandfathered counts the tree no longer uses.

        Returns ``(fingerprint, excess)`` for every entry whose count
        exceeds the matching findings in the current run — debt that was
        paid down but never struck from the ledger.  A stale entry is a
        hazard, not mere clutter: it would silently absorb the *next*
        regression of the same fingerprint.
        """
        actual = Baseline.from_findings(findings).counts
        stale: List[Tuple[Fingerprint, int]] = []
        for key, count in sorted(self.counts.items()):
            excess = count - actual.get(key, 0)
            if excess > 0:
                stale.append((key, excess))
        return stale

    def pruned(self, findings: Sequence[Finding]) -> "Baseline":
        """A copy with every count clamped to the current run's actual
        occurrences (stale entries dropped, live debt kept)."""
        actual = Baseline.from_findings(findings).counts
        kept = {
            key: min(count, actual.get(key, 0))
            for key, count in self.counts.items()
        }
        return Baseline({key: count for key, count in kept.items() if count})

    # -- application ----------------------------------------------------

    def apply(self, findings: Sequence[Finding]) -> List[Finding]:
        """Mark baselined findings; returns them sorted.

        Matching is first-come within the sorted order: if the baseline
        grandfathers N occurrences of a fingerprint and the tree now has
        N+1, exactly one stays new (and fails the lint).
        """
        remaining = dict(self.counts)
        ordered = sort_findings(findings)
        for finding in ordered:
            left = remaining.get(finding.fingerprint, 0)
            if left > 0:
                finding.baselined = True
                remaining[finding.fingerprint] = left - 1
        return ordered
