"""Multi-functional applications (paper Section 7, future work).

"PacketShader currently limits one GPU kernel function execution at a
time per device.  The multi-functionality support (e.g., IPv4 and IPsec
at the same time) in PacketShader enforces to implement all the
functions in a single GPU kernel.  NVIDIA has recently added native
support for concurrent execution of heterogeneous kernels into GTX480."

:class:`CompositeApplication` implements that future direction: a chain
of applications processed per chunk in order (e.g. an IPsec gateway that
first runs the IPv4 lookup, then encrypts what it forwards).  The
functional path threads each packet through every stage's verdict
logic; the cost model composes the stages' CPU cycles and GPU kernels,
either serialised (the paper's single-kernel limitation) or overlapped
(Fermi concurrent kernels).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.application import GPUWorkItem, RouterApplication
from repro.core.chunk import Chunk
from repro.hw.gpu import KernelSpec


class CompositeApplication(RouterApplication):
    """A chain of applications applied in order to every chunk.

    Packets dropped or diverted by an earlier stage are not seen by
    later stages (their verdicts stand); packets forwarded by an earlier
    stage are re-offered to the next stage, which may overwrite the
    forwarding decision — e.g. a lookup stage picks the port and an
    IPsec stage re-targets the tunnel.

    ``concurrent_kernels=True`` models Fermi's concurrent kernel
    execution: the chained kernels' *launch overheads* are paid once
    rather than per stage (their execution work is still additive — the
    SMs are a shared resource).
    """

    name = "composite"

    def __init__(
        self,
        stages: Sequence[RouterApplication],
        concurrent_kernels: bool = False,
    ) -> None:
        if not stages:
            raise ValueError("a composite needs at least one stage")
        self.stages = list(stages)
        self.concurrent_kernels = concurrent_kernels
        self.name = "+".join(stage.name for stage in self.stages)
        self.use_streams = any(stage.use_streams for stage in self.stages)
        overrides = [
            stage.gpu_displacement_override
            for stage in self.stages
            if stage.gpu_displacement_override is not None
        ]
        self.gpu_displacement_override = max(overrides) if overrides else None

    # ------------------------------------------------------------------
    # Functional path.
    # ------------------------------------------------------------------

    @staticmethod
    def _reopen_forwarded(chunk: Chunk) -> List[int]:
        """Re-offer forwarded packets to the next stage; returns the
        indices reopened (so failures can be distinguished later)."""
        return chunk.reopen_forwarded()

    def pre_shade(self, chunk: Chunk) -> Optional[GPUWorkItem]:
        """Composite shading runs each stage's full pipeline inline.

        The master still sees a single work item whose ``fn`` performs
        the chained kernels — matching the single-kernel reality the
        paper describes (everything fused into one launch).
        """
        stages = self.stages

        def fused_kernel() -> None:
            # Work happens in post_shade via cpu-process chaining; the
            # fused kernel is the marker for the master's launch.
            return None

        spec, _ = self.kernel_cost(chunk.max_frame_len())
        spec = KernelSpec(
            name=spec.name,
            compute_cycles=spec.compute_cycles,
            mem_accesses=spec.mem_accesses,
            stream_bytes=spec.stream_bytes,
            fn=fused_kernel,
        )
        bytes_in, bytes_out = self.gpu_bytes_per_packet(chunk.max_frame_len())
        return GPUWorkItem(
            spec=spec,
            threads=len(chunk),
            bytes_in=int(bytes_in * len(chunk)),
            bytes_out=int(bytes_out * len(chunk)),
        )

    def post_shade(self, chunk: Chunk, gpu_output) -> None:
        self.cpu_process(chunk)

    def cpu_process(self, chunk: Chunk) -> None:
        """Chain the stages: each consumes the previous stage's
        forwarded packets."""
        for position, stage in enumerate(self.stages):
            if position > 0:
                self._reopen_forwarded(chunk)
            stage.cpu_process(chunk)

    # ------------------------------------------------------------------
    # Cost hooks: compositions of the stages'.
    # ------------------------------------------------------------------

    def cpu_cycles_per_packet(self, frame_len: int) -> float:
        return sum(s.cpu_cycles_per_packet(frame_len) for s in self.stages)

    def worker_cycles_per_packet(self, frame_len: int) -> float:
        return sum(s.worker_cycles_per_packet(frame_len) for s in self.stages)

    def kernel_cost(self, frame_len: int) -> Tuple[KernelSpec, float]:
        """The fused kernel: per-packet work of all stages combined.

        Thread counts differ per stage (1/packet for lookups, 1/block
        for AES), so costs are normalised to the largest stage's thread
        count and the rest folded in as extra per-thread cycles — the
        same issue-bound equivalence used by the IPsec kernel model.
        """
        costs = [s.kernel_cost(frame_len) for s in self.stages]
        threads = max(tpp for _, tpp in costs)
        compute = 0.0
        mem = 0.0
        stream = 0.0
        for spec, tpp in costs:
            scale = tpp / threads
            compute += spec.compute_cycles * scale
            mem += spec.mem_accesses * scale
            stream += spec.stream_bytes * scale
        spec = KernelSpec(
            name=self.name,
            compute_cycles=compute,
            mem_accesses=mem,
            stream_bytes=stream,
        )
        return spec, threads

    def gpu_bytes_per_packet(self, frame_len: int) -> Tuple[float, float]:
        """Transfers are not fused: each stage ships its own data unless
        kernels run concurrently, in which case shared packet payloads
        ride once (we charge the maximum of the stages plus the small
        per-stage metadata)."""
        totals_in = [s.gpu_bytes_per_packet(frame_len)[0] for s in self.stages]
        totals_out = [s.gpu_bytes_per_packet(frame_len)[1] for s in self.stages]
        if self.concurrent_kernels:
            return max(totals_in), max(totals_out)
        return sum(totals_in), sum(totals_out)
