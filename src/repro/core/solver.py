"""Performance solver: from application cost hooks to Figure 11/12 numbers.

Given a :class:`repro.core.application.RouterApplication`, this module
assembles the steady-state pipeline (worker CPUs, GPU shading path, IOH
ceilings) and answers the two evaluation questions:

* :func:`app_throughput_report` — saturated throughput at a frame size,
  CPU-only or CPU+GPU (the Figure 11 bars), annotated with the
  bottleneck stage;
* :func:`app_latency_ns` — mean round-trip latency at an offered load
  (the Figure 12 curves), composing interrupt moderation, adaptive batch
  accumulation, worker service, the GPU pipeline transit, and queueing.

The adaptive-batching fixed point is the paper's Section 5.3 behaviour:
"PacketShader adaptively balances between small parallelism for low
latency and large parallelism for high throughput, according to the
level of offered load" — chunks are whatever accumulated while the
previous batch was being served, so the GPU batch size grows with load
and the latency curve stays flat until the knee.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.calib.constants import CPU, FRAMEWORK, IO_ENGINE, NIC
from repro.core.application import RouterApplication
from repro.core.config import RouterConfig
from repro.hw.gpu import GPUDevice
from repro.hw.numa import SystemTopology
from repro.sim.metrics import ThroughputReport, gbps_to_pps
from repro.sim.pipeline import PipelineModel, Stage

#: Fixed measurement overhead of the software packet generator, ns.  The
#: paper's generator is itself a software router ("measured latency
#: numbers include delays incurred by the generator itself" and it tops
#: out at 28 Gbps "due to overheads of measurement and rate limiting"),
#: so its timestamping, rate limiting, and TX/RX path contribute a
#: substantial fixed term.  Fitted so the Figure 12 CPU+GPU curve sits in
#: the published 200-400 us band.
GENERATOR_OVERHEAD_NS = 70_000.0


def _worker_cycles_per_packet(app: RouterApplication, frame_len: int) -> float:
    """Worker-side cycles per packet in CPU+GPU mode."""
    return (
        IO_ENGINE.per_packet_cycles
        + FRAMEWORK.pre_shading_cycles
        + FRAMEWORK.post_shading_cycles
        + 2.0 * FRAMEWORK.queue_handoff_cycles / FRAMEWORK.chunk_capacity
        + app.worker_cycles_per_packet(frame_len)
    )


def _cpu_only_cycles_per_packet(
    app: RouterApplication, frame_len: int, batch_size: int = 0
) -> float:
    """Per-packet cycles in CPU-only mode.

    ``batch_size=0`` means full batching (the per-batch term amortised
    away, as at the Figure 5 plateau); Figure 12's "CPU-only w/o batch"
    configuration passes 1.
    """
    io_cycles = IO_ENGINE.per_packet_cycles
    if batch_size:
        io_cycles += IO_ENGINE.per_batch_cycles / batch_size
    return io_cycles + app.cpu_cycles_per_packet(frame_len)


def gpu_batch_time_ns(
    app: RouterApplication,
    frame_len: int,
    n_packets: int,
    device: Optional[GPUDevice] = None,
    streams: bool = False,
) -> float:
    """Modelled shading time for one batch of ``n_packets``.

    Sync + launch + h2d + kernel + d2h; with ``streams`` the transfers of
    consecutive sub-batches overlap execution (the Section 5.4 concurrent
    copy & execution, which the paper enables for IPsec only).
    """
    if n_packets <= 0:
        raise ValueError("n_packets must be positive")
    device = device or GPUDevice()
    spec, threads_per_packet = app.kernel_cost(frame_len)
    bytes_in, bytes_out = app.gpu_bytes_per_packet(frame_len)
    threads = max(1, math.ceil(n_packets * threads_per_packet))
    total_in = int(n_packets * bytes_in)
    total_out = int(n_packets * bytes_out)
    if streams:
        # Split into a few sub-batches that pipeline through the copy
        # engines; 4 streams is the classic configuration.
        sub_batches = min(4, n_packets)
        return device.streamed_time_ns(
            spec,
            max(1, threads // sub_batches),
            total_in // sub_batches,
            total_out // sub_batches,
            sub_batches,
        )
    return (
        device.model.sync_overhead_ns
        + device.launch_latency_ns(threads)
        + device.pcie.h2d_time_ns(total_in)
        + device.execution_time_ns(spec, threads)
        + device.pcie.d2h_time_ns(total_out)
    )


def _gpu_stage_capacity_pps(
    app: RouterApplication,
    frame_len: int,
    config: RouterConfig,
    device: Optional[GPUDevice] = None,
) -> float:
    """Per-GPU sustained packet rate at the maximum gathered batch."""
    n_max = config.chunk_capacity * config.effective_gather_chunks()
    streams = app.use_streams and config.concurrent_copy
    time_ns = gpu_batch_time_ns(app, frame_len, n_max, device, streams)
    return n_max / time_ns * 1e9


def app_throughput_report(
    app: RouterApplication,
    frame_len: int,
    use_gpu: bool = True,
    config: Optional[RouterConfig] = None,
    topology: Optional[SystemTopology] = None,
    batch_size: int = 0,
) -> ThroughputReport:
    """Saturated throughput of an application — the Figure 11 generator."""
    config = config or RouterConfig(
        use_gpu=use_gpu, concurrent_copy=getattr(app, "use_streams", False)
    )
    topology = topology or SystemTopology()
    stages = []
    if use_gpu:
        worker_cycles = _worker_cycles_per_packet(app, frame_len)
        stages.append(
            Stage(
                name="workers",
                capacity_pps=CPU.clock_hz / worker_cycles,
                parallelism=config.total_workers,
            )
        )
        stages.append(
            Stage(
                name="gpu",
                capacity_pps=_gpu_stage_capacity_pps(app, frame_len, config),
                parallelism=len(topology.all_gpus),
            )
        )
        bytes_in, bytes_out = app.gpu_bytes_per_packet(frame_len)
        io_gbps = topology.forwarding_capacity_gbps(
            frame_len,
            gpu_pcie_bytes_per_packet=bytes_in + bytes_out,
            numa_aware=config.numa_aware,
            displacement_factor=getattr(app, "gpu_displacement_override", None),
        )
    else:
        cycles = _cpu_only_cycles_per_packet(app, frame_len, batch_size)
        stages.append(
            Stage(
                name="workers",
                capacity_pps=CPU.clock_hz / cycles,
                parallelism=config.total_workers,
            )
        )
        io_gbps = topology.forwarding_capacity_gbps(
            frame_len, numa_aware=config.numa_aware
        )
    stages.append(
        Stage(name="io", capacity_pps=gbps_to_pps(io_gbps, frame_len))
    )
    return PipelineModel(stages, frame_len).report()


def degraded_throughput_report(
    app: RouterApplication,
    frame_len: int,
    config: Optional[RouterConfig] = None,
    topology: Optional[SystemTopology] = None,
) -> ThroughputReport:
    """Saturated throughput with every GPU breaker open.

    The degradation ladder's floor (docs/RESILIENCE.md): launches fail,
    breakers open, and each node falls back to the paper's CPU-only path
    — workers run the whole pipeline and the idle masters rejoin the
    worker pool (in CPU-only mode the same cores run four workers per
    node, Section 6.1), so capacity lands at the Figure 11 CPU-only
    baseline, not at some collapsed fraction of it.  The only extra cost
    over that baseline is the breaker's bookkeeping: one denied handoff
    check per chunk, charged as a queue-handoff pair amortised over the
    chunk.
    """
    config = config or RouterConfig()
    topology = topology or SystemTopology()
    cycles = _cpu_only_cycles_per_packet(app, frame_len)
    cycles += 2.0 * FRAMEWORK.queue_handoff_cycles / FRAMEWORK.chunk_capacity
    cores = (
        config.workers_per_node + config.masters_per_node
    ) * config.system.num_nodes
    io_gbps = topology.forwarding_capacity_gbps(
        frame_len, numa_aware=config.numa_aware
    )
    stages = [
        Stage(
            name="workers",
            capacity_pps=CPU.clock_hz / cycles,
            parallelism=cores,
        ),
        Stage(name="io", capacity_pps=gbps_to_pps(io_gbps, frame_len)),
    ]
    return PipelineModel(stages, frame_len).report()


def _adaptive_gpu_batch(
    app: RouterApplication,
    frame_len: int,
    offered_node_pps: float,
    config: RouterConfig,
) -> Tuple[float, float]:
    """The Section 5.3 load-adaptive batch: (batch packets, transit ns).

    In steady state the master launches back-to-back; each launch serves
    what accumulated during the previous one, so the batch is the fixed
    point ``n = offered * T(n)``, clamped to [1, chunk_cap x gather].
    Found by bisection (T is increasing and affine-ish in n).
    """
    n_max = config.chunk_capacity * config.effective_gather_chunks()
    streams = app.use_streams and config.concurrent_copy

    def imbalance(n: float) -> float:
        time_ns = gpu_batch_time_ns(app, frame_len, max(1, int(n)), streams=streams)
        return n - offered_node_pps * time_ns / 1e9

    if imbalance(n_max) < 0:
        # Even the largest batch cannot keep up; saturated.
        return n_max, gpu_batch_time_ns(app, frame_len, n_max, streams=streams)
    lo, hi = 1.0, float(n_max)
    for _ in range(60):
        mid = (lo + hi) / 2
        if imbalance(mid) < 0:
            lo = mid
        else:
            hi = mid
    batch = max(1.0, hi)
    return batch, gpu_batch_time_ns(app, frame_len, max(1, int(batch)), streams=streams)


def _moderation_extra_ns(per_queue_pps: float, utilization: float) -> float:
    """Mean extra delay from NIC interrupt moderation.

    Delegates to the adaptive-ITR model of :mod:`repro.hw.nic`: the
    effective window shrinks with the per-queue rate, and the blocked
    probability with utilisation."""
    from repro.hw.nic import interrupt_extra_delay_ns

    return interrupt_extra_delay_ns(per_queue_pps, utilization)


def app_latency_ns(
    app: RouterApplication,
    frame_len: int,
    offered_pps: float,
    use_gpu: bool = True,
    batching: bool = True,
    round_trip: bool = True,
    config: Optional[RouterConfig] = None,
    topology: Optional[SystemTopology] = None,
) -> float:
    """Mean latency at an offered load — the Figure 12 generator.

    Returns ``inf`` at or beyond saturation.  ``batching=False`` models
    the Figure 12 "CPU-only without batch" configuration (per-packet
    system calls); it implies ``use_gpu=False``.
    """
    if offered_pps < 0:
        raise ValueError("offered load must be non-negative")
    config = config or RouterConfig(
        use_gpu=use_gpu, concurrent_copy=getattr(app, "use_streams", False)
    )
    topology = topology or SystemTopology()
    if not batching and use_gpu:
        raise ValueError("the GPU path requires batched I/O")
    report = app_throughput_report(
        app, frame_len, use_gpu, config, topology,
        batch_size=0 if batching else 1,
    )
    capacity = report.pps
    if offered_pps >= capacity:
        return math.inf
    rho = offered_pps / capacity
    num_workers = config.total_workers
    offered_per_worker = offered_pps / num_workers if offered_pps else 0.0

    latency = _moderation_extra_ns(offered_per_worker, rho)
    if use_gpu:
        worker_cycles = _worker_cycles_per_packet(app, frame_len)
        offered_node = offered_pps / config.system.num_nodes
        batch, transit_ns = _adaptive_gpu_batch(app, frame_len, offered_node, config)
        # Accumulating one chunk's share of the batch at the worker.
        if offered_per_worker > 0:
            chunk = batch / config.effective_gather_chunks()
            latency += (chunk - 1) / 2.0 / offered_per_worker * 1e9
        # GPU pipeline transit: the packet's own batch, plus the residual
        # of the batch in progress when it arrived (the master launches
        # back-to-back, so on average half a batch period is pending),
        # plus stochastic queueing that grows toward saturation.
        latency += transit_ns
        latency += transit_ns / 2.0
        latency += rho / (2.0 * (1.0 - rho)) * transit_ns
        # Worker service (pre + post shading).
        latency += 2.0 * worker_cycles * 1e9 / CPU.clock_hz
        # Queue handoffs worker <-> master.
        latency += 2.0 * FRAMEWORK.queue_handoff_cycles * 1e9 / CPU.clock_hz
    else:
        cycles = _cpu_only_cycles_per_packet(
            app, frame_len, 0 if batching else 1
        )
        if batching and offered_per_worker > 0:
            from repro.io_engine.batching import effective_batch_size

            batch = effective_batch_size(
                offered_per_worker, config.chunk_capacity
            )
        else:
            batch = 1.0
        if offered_per_worker > 0:
            latency += (batch - 1) / 2.0 / offered_per_worker * 1e9
        service_ns = batch * cycles * 1e9 / CPU.clock_hz
        latency += service_ns
        latency += rho / (2.0 * (1.0 - rho)) * service_ns
    if round_trip:
        # The generator's own RX path: moderated interrupts at its load
        # plus fixed measurement overhead.
        rho_generator = offered_pps / gbps_to_pps(
            topology.line_rate_gbps() / 2.0, frame_len
        )
        generator_queues = topology.total_cores
        latency += _moderation_extra_ns(
            offered_pps / generator_queues, min(1.0, rho_generator)
        )
        latency += GENERATOR_OVERHEAD_NS
    return latency
