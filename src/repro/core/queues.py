"""Worker<->master queues (paper Sections 5.1, 5.3, Figure 9).

Two queue kinds with deliberately different sharing:

* the **master's input queue** is shared by all of the node's workers —
  "we do not apply the same technique to the input queue in order to
  guarantee fairness between worker threads" — so it is a single FIFO;
* each worker has a **private output queue** the master scatters results
  into — "having per-worker output queues relaxes cache bouncing and
  lock contention by avoiding 1-to-N sharing".

Both are bounded (backpressure, not unbounded memory) and count the
handoffs so the cost models can charge the per-chunk queue cycles.

:class:`RemoteMasterClient` is the *cross-process* form of the same
handoff (docs/SHARDING.md): when the master lives in another OS process
the worker submits chunks over a ``multiprocessing`` queue pair instead
— the chunk pickles to a shared-memory descriptor, so the handoff ships
offsets, not frame bytes.  The framework treats it as a drop-in shading
transport (:class:`repro.core.framework.PacketShader`'s ``transport``
parameter).
"""

from __future__ import annotations

import queue as _stdlib_queue
from collections import deque
from typing import Deque, Iterator, List, Optional

from repro.core.chunk import Chunk
from repro.faults.plan import FaultInjector, Sites
from repro.obs import Events, get_flightrec, get_registry, names


class MasterInputQueue:
    """The shared FIFO of chunks awaiting shading on one node."""

    def __init__(
        self,
        capacity: int = 64,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.fault_injector = fault_injector
        self._queue: Deque[Chunk] = deque()
        self.enqueued = 0
        self.rejected = 0
        self._recorder = get_flightrec()
        registry = get_registry()
        self._g_depth = registry.gauge(
            names.CORE_MASTER_INPUT_DEPTH, help="chunks queued for the master"
        )
        self._m_enqueued = registry.counter(
            names.CORE_MASTER_INPUT_ENQUEUED,
            help="chunks accepted by the master queue",
        )
        self._m_rejected = registry.counter(
            names.CORE_MASTER_INPUT_REJECTED,
            help="chunk handoffs refused by a full master queue (backpressure)",
        )

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    def put(self, chunk: Chunk) -> bool:
        """Worker-side: hand a pre-shaded chunk to the master.

        Returns False when the queue is full — the worker then keeps the
        chunk and retries (backpressure slows RX fetch, which is how an
        overloaded GPU path sheds load to the RX rings).  A fault
        injector can force the refusal (the ``queue.overflow`` site), so
        the chaos suite exercises the bounded-backpressure path without
        actually saturating the GPU.
        """
        if self.full or (
            self.fault_injector is not None
            and self.fault_injector.should_fire(Sites.MASTER_QUEUE_OVERFLOW)
        ):
            self.rejected += 1
            self._m_rejected.inc()
            return False
        self._queue.append(chunk)
        self.enqueued += 1
        self._m_enqueued.inc()
        self._g_depth.set(len(self._queue))
        ctx = chunk.trace_ctx or (self._recorder.writer_id, 0)
        self._recorder.note(
            Events.QUEUE, "master", len(self._queue), ctx[0], ctx[1]
        )
        return True

    def get_batch(self, max_chunks: int) -> List[Chunk]:
        """Master-side: dequeue up to ``max_chunks`` (the gather step).

        FIFO across workers — the fairness property the shared queue
        exists for; chunks from different workers interleave in arrival
        order, never favouring one worker.
        """
        if max_chunks < 1:
            raise ValueError("max_chunks must be >= 1")
        count = min(max_chunks, len(self._queue))
        batch = [self._queue.popleft() for _ in range(count)]
        self._g_depth.set(len(self._queue))
        return batch


class WorkerOutputQueue:
    """One worker's private queue of shaded chunks (the scatter target)."""

    def __init__(self, worker_id: int, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.worker_id = worker_id
        self.capacity = capacity
        self._queue: Deque[Chunk] = deque()
        self.enqueued = 0
        self._g_depth = get_registry().gauge(
            names.CORE_WORKER_OUTPUT_DEPTH,
            help="shaded chunks awaiting post-shading",
            worker=str(worker_id),
        )

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    def put(self, chunk: Chunk) -> None:
        """Master-side: scatter a finished chunk back to its worker.

        The master never blocks here in the paper's design; the queue is
        sized so that cannot happen (workers drain faster than one GPU
        produces).  Overflow is therefore a programming error, not load.
        """
        if chunk.worker_id != self.worker_id:
            raise ValueError(
                f"chunk of worker {chunk.worker_id} scattered to queue "
                f"{self.worker_id}"
            )
        if self.full:
            raise OverflowError(f"output queue {self.worker_id} overflow")
        self._queue.append(chunk)
        self.enqueued += 1
        self._g_depth.set(len(self._queue))

    def get(self) -> Optional[Chunk]:
        """Worker-side: pick up one finished chunk (post-shading input)."""
        if not self._queue:
            return None
        chunk = self._queue.popleft()
        self._g_depth.set(len(self._queue))
        return chunk


class RemoteMasterClient:
    """Worker-side shading transport to a master in another process.

    Wraps the worker's two ``multiprocessing`` queues: ``submit_queue``
    (shared by every worker — the paper's fairness FIFO) and
    ``result_queue`` (this worker's private scatter target).  A bounded
    in-flight window plays the role of the master input queue's
    capacity: once full, :meth:`submit` blocks on results instead of
    growing the pipe without bound.

    When a chunk pool is attached, every submitted chunk is first made
    boundary-ready (:meth:`~repro.shard.pool.ShmChunkPool.ensure_packed`)
    so the queue carries descriptors, and every drained chunk's slot is
    recycled after post-shading via :meth:`recycle`.
    """

    def __init__(
        self,
        submit_queue,
        result_queue,
        worker_id: int,
        max_in_flight: int = 64,
        pool=None,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self.submit_queue = submit_queue
        self.result_queue = result_queue
        self.worker_id = worker_id
        self.max_in_flight = max_in_flight
        self.pool = pool
        self.in_flight = 0
        registry = get_registry()
        self._m_enqueued = registry.counter(
            names.SHARD_CHUNKS_SUBMITTED,
            help="chunks handed to the remote master",
        )
        self._m_returned = registry.counter(
            names.SHARD_CHUNKS_RETURNED,
            help="shaded chunks received back from the remote master",
        )

    def submit(self, chunk: Chunk) -> Iterator[Chunk]:
        """Hand one pre-shaded chunk to the remote master.

        Yields any chunks drained while waiting for in-flight headroom
        (the caller post-shades them immediately, exactly like the
        in-process backpressure drain).
        """
        while self.in_flight >= self.max_in_flight:
            drained = self._get(block=True)
            if drained is not None:
                yield drained
        chunk.worker_id = self.worker_id
        if self.pool is not None:
            self.pool.ensure_packed(chunk)
        self.submit_queue.put(chunk)
        self.in_flight += 1
        self._m_enqueued.inc()

    def drain(self, block: bool = False) -> Iterator[Chunk]:
        """Shaded chunks ready for post-shading (all of them if
        ``block``, else whatever the master has scattered so far)."""
        while self.in_flight:
            chunk = self._get(block=block)
            if chunk is None:
                return
            yield chunk

    def recycle(self, chunk: Chunk) -> None:
        """Return a finished chunk's pool slot (after egress copies)."""
        if self.pool is not None:
            self.pool.recycle(chunk)

    def finish(self) -> None:
        """Tell the master this worker is done submitting."""
        self.submit_queue.put(("done", self.worker_id))

    def _get(self, block: bool) -> Optional[Chunk]:
        try:
            chunk = self.result_queue.get(block=block, timeout=60.0 if block else None)
        except _stdlib_queue.Empty:
            if block:
                raise RuntimeError(
                    f"worker {self.worker_id}: remote master stopped "
                    f"scattering with {self.in_flight} chunks in flight"
                ) from None
            return None
        self.in_flight -= 1
        self._m_returned.inc()
        return chunk
