"""The PacketShader router: workers, masters, and the chunk workflow.

A functional, deterministic implementation of Figure 9's collaboration:
worker threads pre-shade chunks and enqueue them on their node's master
input queue; the master gathers queued chunks (gather/scatter,
Section 5.4), launches the GPU work, and scatters results to the
per-worker output queues; workers post-shade and split packets to their
destination ports.

Threads are cooperative objects stepped by the framework in round-robin
order (not OS threads): the paper's threads are hard-affinitized and
communicate only through these queues, so a deterministic interleaving
preserves all the observable behaviour while keeping tests reproducible.
Every packet is a real frame; every application callback does its real
work.  Timing lives in :mod:`repro.core.solver`, not here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.calib.constants import CPU, FRAMEWORK
from repro.core.application import RouterApplication
from repro.core.chunk import Chunk
from repro.core.config import RouterConfig
from repro.core.overload import OverloadController
from repro.core.queues import MasterInputQueue, WorkerOutputQueue
from repro.faults.errors import DMAError, GPULaunchError
from repro.faults.plan import FaultInjector
from repro.faults.recovery import CircuitBreaker, RetryPolicy, Watchdog
from repro.hw.gpu import GPUDevice
from repro.core.slowpath import SlowPathHandler
from repro.io_engine.rss import RSSHasher
from repro.net.packet import parse_packet
from repro.obs import (
    BATCH_SIZE_BUCKETS,
    Events,
    Stages,
    get_flightrec,
    get_profiler,
    get_registry,
    get_tracer,
    names,
)


@dataclass
class RouterStats:
    """End-to-end packet accounting.

    The conservation invariant ``received == forwarded + dropped +
    slow_path`` holds under every fault scenario; ``backpressure_drops``
    attributes the subset of ``dropped`` shed by bounded backpressure
    (it is an attribution counter, not a fourth verdict — those packets
    are already counted in ``dropped`` exactly once).
    """

    received: int = 0
    forwarded: int = 0
    dropped: int = 0
    slow_path: int = 0
    chunks: int = 0
    gpu_launches: int = 0
    gathered_chunks: int = 0
    #: Failed launches retried (transient faults absorbed by backoff).
    gpu_retries: int = 0
    #: Launches that failed past their retry budget.
    gpu_failures: int = 0
    #: Chunks processed on the CPU although GPU mode was configured
    #: (master-side fallback or breaker-open CPU-only rerouting).
    degraded_chunks: int = 0
    #: Packets shed when the master input queue stayed wedged (a subset
    #: of ``dropped``).
    backpressure_drops: int = 0

    @property
    def accounted(self) -> int:
        return self.forwarded + self.dropped + self.slow_path


@dataclass
class _Worker:
    worker_id: int
    node: int
    output_queue: WorkerOutputQueue
    #: Chunks pre-shaded and awaiting shading results (chunk pipelining:
    #: the worker moves on to the next chunk instead of blocking).
    in_flight: int = 0


@dataclass
class _Node:
    node_id: int
    workers: List[_Worker]
    input_queue: MasterInputQueue
    gpu: Optional[GPUDevice]


class PacketShader:
    """The router framework, parameterised by an application."""

    #: How many drain-and-retry rounds a worker attempts before shedding
    #: a chunk that the master input queue keeps refusing.  In the
    #: healthy design the first drain empties the queue, so only a
    #: wedged master (fault injection, breaker churn) ever gets past
    #: round one — the bound turns a potential livelock into an
    #: accounted drop.
    MAX_BACKPRESSURE_RETRIES = 8

    def __init__(
        self,
        app: RouterApplication,
        config: Optional[RouterConfig] = None,
        slow_path: Optional[SlowPathHandler] = None,
        fault_injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        overload: Optional[OverloadController] = None,
        transport=None,
    ) -> None:
        self.app = app
        self.config = config or RouterConfig()
        #: Optional remote shading transport (docs/SHARDING.md): when a
        #: :class:`~repro.core.queues.RemoteMasterClient` is installed,
        #: pre-shaded chunks go to a master in another OS process
        #: instead of this router's in-process master loop; shaded
        #: results come back through :meth:`flush_transport` /
        #: the drain step of :meth:`process_chunks`.
        self.transport = transport
        #: Optional overload controller: when present it owns the chunk
        #: capacity (SLO-aware adaptive sizing) and consumes per-chunk
        #: latency observations and queue-rejection signals.
        self.overload = overload
        #: Diverted packets go here ("passes them onto Linux TCP/IP
        #: stack", Section 6.2.1); its ICMP responses leave through the
        #: ingress port, back toward the source.
        self.slow_path = slow_path
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy or RetryPolicy()
        self.stats = RouterStats()
        #: Span tracing of the chunk lifecycle (per-stage modelled costs).
        self.tracer = get_tracer()
        #: Flight recorder (structured event ring) and wall-clock stage
        #: profiler — the second-generation observability pair.  Handles
        #: are resolved once here, like the registry instruments below.
        self.flightrec = get_flightrec()
        self.profiler = get_profiler()
        # Registry mirrors of RouterStats: same increment sites, so the
        # conservation invariant holds for both views.
        registry = get_registry()
        self._m_received = registry.counter(
            names.ROUTER_RECEIVED_PACKETS, help="packets entering the workflow"
        )
        self._m_forwarded = registry.counter(
            names.ROUTER_FORWARDED_PACKETS, help="packets with a FORWARD verdict"
        )
        self._m_dropped = registry.counter(
            names.ROUTER_DROPPED_PACKETS, help="packets with a DROP verdict"
        )
        self._m_slow_path = registry.counter(
            names.ROUTER_SLOW_PATH_PACKETS,
            help="packets diverted to the slow path",
        )
        self._m_chunks = registry.counter(
            names.ROUTER_CHUNKS, help="chunks completing the workflow"
        )
        self._m_gpu_launches = registry.counter(
            names.ROUTER_GPU_LAUNCHES, help="GPU kernel launches by masters"
        )
        self._m_gathered = registry.counter(
            names.ROUTER_GATHERED_CHUNKS, help="chunks gathered by masters"
        )
        self._h_chunk_size = registry.histogram(
            names.ROUTER_CHUNK_SIZE, buckets=BATCH_SIZE_BUCKETS,
            help="packets per chunk entering the workflow",
        )
        self._m_gpu_retries = registry.counter(
            names.ROUTER_GPU_RETRIES, help="GPU launches retried after a failure"
        )
        self._m_gpu_failures = registry.counter(
            names.ROUTER_GPU_FAILURES,
            help="GPU launches failed past the retry budget",
        )
        self._m_degraded_chunks = registry.counter(
            names.ROUTER_DEGRADED_CHUNKS,
            help="chunks shaded on the CPU although GPU mode was configured",
        )
        self._m_backpressure_drops = registry.counter(
            names.ROUTER_BACKPRESSURE_DROPS,
            help="packets shed after bounded backpressure gave up",
        )
        self.nodes: List[_Node] = []
        worker_id = 0
        for node_id in range(self.config.system.num_nodes):
            workers = []
            for _ in range(self.config.workers_per_node):
                workers.append(
                    _Worker(
                        worker_id=worker_id,
                        node=node_id,
                        output_queue=WorkerOutputQueue(worker_id),
                    )
                )
                worker_id += 1
            self.nodes.append(
                _Node(
                    node_id=node_id,
                    workers=workers,
                    input_queue=MasterInputQueue(fault_injector=fault_injector),
                    gpu=GPUDevice(
                        device_id=node_id, node=node_id,
                        fault_injector=fault_injector,
                    )
                    if self.config.use_gpu
                    else None,
                )
            )
        # Recovery machinery: one breaker per GPU device gates its node's
        # shading path; a single watchdog notices when chunk completion
        # stops making progress.
        self.breakers: Dict[int, CircuitBreaker] = {
            n.node_id: CircuitBreaker(device_id=n.node_id) for n in self.nodes
        }
        self.watchdog = Watchdog()
        self._rr_worker: Dict[int, int] = {n.node_id: 0 for n in self.nodes}
        # One RSS indirection per node, mapping flows onto the node's
        # workers only (the NUMA-aware steering of Section 4.5).
        self._rss: Dict[int, RSSHasher] = {
            n.node_id: RSSHasher(queue_map=list(range(len(n.workers))))
            for n in self.nodes
        }

    # ------------------------------------------------------------------
    # Ingress.
    # ------------------------------------------------------------------

    def effective_chunk_capacity(self) -> int:
        """The chunk cap in force: adaptive when overload control is on."""
        if self.overload is not None:
            return self.overload.chunk_capacity
        return self.config.chunk_capacity

    def node_of_port(self, port: int) -> int:
        """Which NUMA node hosts a NIC port (ports split evenly)."""
        ports_per_node = self.config.system.total_ports // self.config.system.num_nodes
        node = port // ports_per_node
        if not 0 <= node < len(self.nodes):
            raise ValueError(f"port {port} out of range")
        return node

    def _worker_of_frame(self, frame: bytearray, node: _Node) -> _Worker:
        """RSS worker selection: flows stick to one worker (Section 4.4).

        Frames carrying a 5-tuple hash to a worker of the ingress node
        (the NUMA-steered RSS of Section 4.5: local-node queues only);
        non-IP frames fall back to round-robin.  Flow stickiness is what
        preserves intra-flow packet order end to end (Section 5.3).
        """
        flow = None
        try:
            flow = parse_packet(bytes(frame)).five_tuple()
        except ValueError:
            pass
        if flow is None:
            worker = node.workers[self._rr_worker[node.node_id]]
            self._rr_worker[node.node_id] = (
                self._rr_worker[node.node_id] + 1
            ) % len(node.workers)
            return worker
        hasher = self._rss[node.node_id]
        return node.workers[hasher.queue_for(flow)]

    def _chunks_from(self, frames: List[bytearray], in_port: int) -> List[Chunk]:
        """Distribute ingress frames to workers by RSS, then chunk.

        Each worker's share is split into capped chunks; per-worker
        arrival order is preserved (the RX queue is a FIFO).
        """
        node = self.nodes[self.node_of_port(in_port)]
        per_worker: Dict[int, List[bytearray]] = {}
        # RSS distribution is per-packet by design: each frame's flow
        # tuple is extracted and hashed, as the NIC would.
        for frame in frames:  # reprolint: ignore[RL006]
            worker = self._worker_of_frame(frame, node)
            per_worker.setdefault(worker.worker_id, []).append(frame)
        chunks = []
        cap = self.effective_chunk_capacity()
        # Chunks built here (process_frames, no I/O engine) anchor
        # their trace context at the recorder's current seq: the most
        # recent event in flight when the batch entered the router.
        ctx = (self.flightrec.writer_id, self.flightrec.seq)
        for worker in node.workers:
            share = per_worker.get(worker.worker_id, [])
            for start in range(0, len(share), cap):
                chunk = Chunk(
                    frames=share[start:start + cap],
                    worker_id=worker.worker_id,
                    in_port=in_port,
                )
                chunk.trace_ctx = ctx
                chunks.append(chunk)
        return chunks

    # ------------------------------------------------------------------
    # The three-step workflow.
    # ------------------------------------------------------------------

    def _shade_node(self, node: _Node) -> None:
        """Run the node's master: gather, launch, scatter (Section 5.4)."""
        gather = self.config.effective_gather_chunks()
        while len(node.input_queue):
            chunks = node.input_queue.get_batch(gather)
            self.stats.gathered_chunks += len(chunks)
            self._m_gathered.inc(len(chunks))
            self.tracer.record(
                Stages.GATHER,
                packets=sum(len(c) for c in chunks),
                cycles=FRAMEWORK.queue_handoff_cycles * len(chunks),
            )
            for chunk in chunks:
                work = chunk.gpu_input
                if work is None:
                    chunk.gpu_output = None
                else:
                    self._launch_chunk(node, chunk, work)
                worker = node.workers[
                    chunk.worker_id - node.workers[0].worker_id
                ]
                worker.output_queue.put(chunk)
                self.tracer.record(
                    Stages.SCATTER,
                    packets=len(chunk),
                    cycles=FRAMEWORK.queue_handoff_cycles,
                )

    def _launch_chunk(self, node: _Node, chunk: Chunk, work) -> None:
        """Launch one chunk's GPU work, absorbing faults (Section 5.4 +
        the degradation ladder: retry with backoff -> breaker -> CPU).

        Transient launch failures are retried up to the policy's budget
        with exponential backoff (charged as modelled wait time).  A
        launch that fails past the budget counts against the node's
        circuit breaker and the chunk is shaded on the master's CPU
        instead — the already pre-shaded work cannot be re-classified
        (TTLs are already decremented), so the fallback runs the kernel
        function itself on the host.
        """
        breaker = self.breakers[node.node_id]
        if breaker.is_open:
            # The breaker opened while this chunk sat in the input queue:
            # don't even try the device.
            self._shade_on_cpu(chunk, work)
            return
        policy = self.retry_policy
        for attempt in range(policy.max_retries + 1):
            try:
                result = work.launch_on(node.gpu)
            except (GPULaunchError, DMAError):
                if attempt < policy.max_retries:
                    self.stats.gpu_retries += 1
                    self._m_gpu_retries.inc()
                    self.flightrec.note(
                        Events.GPU_RETRY, str(node.node_id), attempt + 1
                    )
                    # The backoff wait is real (modelled) time on the
                    # shading path.
                    wait_ns = policy.backoff_ns(attempt + 1, salt=node.node_id)
                    chunk.service_ns += wait_ns
                    self.tracer.record(
                        Stages.GPU,
                        packets=0,
                        ns=wait_ns,
                        retry=attempt + 1,
                    )
                    continue
                self.stats.gpu_failures += 1
                self._m_gpu_failures.inc()
                breaker.record_failure()
                self._shade_on_cpu(chunk, work)
                return
            breaker.record_success()
            self.stats.gpu_launches += 1
            self._m_gpu_launches.inc()
            chunk.gpu_output = result.output
            chunk.service_ns += result.total_ns
            self.tracer.record(
                Stages.GPU,
                packets=len(chunk),
                ns=result.total_ns,
                kernel=result.kernel,
            )
            return

    def _shade_on_cpu(self, chunk: Chunk, work) -> None:
        """Master-side CPU fallback for a chunk whose GPU path failed.

        Runs the kernel function on the host, producing bit-identical
        output (the kernels are the same Python callables the device
        model executes).  The extra CPU cost relative to the worker-side
        shading already charged is the CPU-only application cost minus
        the worker-side share.
        """
        with self.profiler.track(Stages.GPU_FALLBACK):
            chunk.gpu_output = (
                work.spec.fn(*work.args) if work.spec.fn is not None else None
            )
        self.stats.degraded_chunks += 1
        self._m_degraded_chunks.inc()
        self.flightrec.note(Events.GPU_FALLBACK, "", len(chunk))
        frame_len = self._frame_len(chunk)
        extra = max(
            0.0,
            self.app.cpu_cycles_per_packet(frame_len)
            - self.app.worker_cycles_per_packet(frame_len),
        )
        chunk.service_ns += extra * len(chunk) * CPU.cycle_ns
        self.tracer.record(
            Stages.GPU_FALLBACK, packets=len(chunk), cycles=extra * len(chunk)
        )

    @property
    def degraded_mode(self) -> bool:
        """True while any node's breaker keeps its GPU out of service."""
        return any(b.is_open for b in self.breakers.values())

    def _finish_chunk(self, chunk: Chunk, egress: Dict[int, List[bytearray]]) -> None:
        """Account verdicts and split forwarded frames to ports.

        All three tallies and the egress/slow-path splits come from the
        chunk's disposition column: one ``bincount`` and two mask passes
        instead of four per-packet walks.
        """
        for port, frames in chunk.split_by_port().items():
            # Egress frames outlive the chunk: hand the caller owned
            # copies, not views into the packed store a later
            # replace_frame() would repack underneath them (RL009).
            egress.setdefault(port, []).extend(map(bytearray, frames))
        forwarded, dropped, slow = chunk.disposition_counts()
        self.stats.forwarded += forwarded
        self.stats.dropped += dropped
        self.stats.slow_path += slow
        self.stats.chunks += 1
        self._m_forwarded.inc(forwarded)
        self._m_dropped.inc(dropped)
        self._m_slow_path.inc(slow)
        self._m_chunks.inc()
        ctx = chunk.trace_ctx or (self.flightrec.writer_id, 0)
        self.flightrec.note(
            Events.CHUNK, "", len(chunk), forwarded, dropped, slow,
            ctx[0], ctx[1],
        )
        self.watchdog.note_progress()
        if self.overload is not None:
            self.overload.observe_chunk(
                len(chunk), chunk.service_ns, chunk.enqueue_depth
            )
        if self.slow_path is not None:
            frames = chunk.frames
            diverted = [bytes(frames[i]) for i in chunk.slow_path_indices()]
            if diverted:
                self.tracer.record(Stages.SLOW_PATH, packets=len(diverted))
            for response in self.slow_path.handle_batch(diverted):
                # ICMP responses head back toward the source: out the
                # ingress port, framed with the original source MAC.
                reply_frame = bytearray(14 + len(response))
                reply_frame[12:14] = (0x0800).to_bytes(2, "big")
                reply_frame[14:] = response
                egress.setdefault(chunk.in_port, []).append(reply_frame)

    def process_frames(
        self, frames: List[bytearray], in_port: int = 0
    ) -> Dict[int, List[bytearray]]:
        """Run a burst of ingress frames through the full workflow.

        Returns the egress map ``port -> frames``.  In CPU+GPU mode the
        chunks flow worker -> master -> worker exactly as in Figure 9; in
        CPU-only mode workers do everything.
        """
        node = self.nodes[self.node_of_port(in_port)]
        chunks = self._chunks_from(frames, in_port)
        return self.process_chunks(chunks, node)

    def process_chunks(
        self, chunks: List[Chunk], node: Optional[_Node] = None
    ) -> Dict[int, List[bytearray]]:
        """Run pre-built chunks through the workflow on one node.

        The entry point for callers that already did the RX side (the
        functional testbed fetches chunks through the packet I/O engine
        and hands them here); ``process_frames`` is the convenience
        wrapper that builds the chunks itself.
        """
        node = node or self.nodes[0]
        egress: Dict[int, List[bytearray]] = {}
        for chunk in chunks:
            self.stats.received += len(chunk)
            self._m_received.inc(len(chunk))
            self._h_chunk_size.observe(len(chunk))
            if not self.config.use_gpu:
                self._cpu_process_chunk(chunk, egress, degraded=False)
                continue
            if not self.breakers[node.node_id].allow():
                # Breaker open: the node runs the paper's CPU-only path
                # (Figure 11's CPU-only rows) until a probe closes it.
                # Workers do the whole pipeline, so throughput degrades
                # to the CPU baseline instead of collapsing behind a
                # dead device.
                self._cpu_process_chunk(chunk, egress, degraded=True)
                continue
            with self.profiler.track(Stages.PRE_SHADE):
                chunk.gpu_input = self.app.pre_shade(chunk)
            pre_cycles = self._worker_stage_cycles(
                chunk, FRAMEWORK.pre_shading_cycles
            )
            chunk.service_ns += pre_cycles * CPU.cycle_ns
            self.tracer.record(
                Stages.PRE_SHADE, packets=len(chunk), cycles=pre_cycles
            )
            if self.transport is not None:
                # Remote master: the submit may hand back already-shaded
                # chunks while waiting for in-flight headroom — the
                # cross-process equivalent of the backpressure drain.
                chunk.enqueue_depth = self.transport.in_flight
                for shaded in self.transport.submit(chunk):
                    self._post_shade_chunk(shaded, egress)
                    self.transport.recycle(shaded)
                continue
            chunk.enqueue_depth = len(node.input_queue)
            for _ in range(self.MAX_BACKPRESSURE_RETRIES):
                if node.input_queue.put(chunk):
                    break
                # Backpressure: drain the master before retrying.
                if self.overload is not None:
                    self.overload.note_reject()
                self.watchdog.note_stall()
                self._shade_node(node)
                self._drain_outputs(node, egress)
                chunk.enqueue_depth = len(node.input_queue)
            else:
                # The queue stayed wedged across every retry round:
                # shed the chunk with explicit accounting rather than
                # spin forever.
                self._shed_chunk(chunk, egress)
        if self.config.use_gpu:
            if self.transport is not None:
                # Pick up whatever the remote master has scattered so
                # far (chunk pipelining: never block mid-burst).
                for shaded in self.transport.drain(block=False):
                    self._post_shade_chunk(shaded, egress)
                    self.transport.recycle(shaded)
            else:
                self._shade_node(node)
                self._drain_outputs(node, egress)
        return egress

    def flush_transport(self, egress: Dict[int, List[bytearray]]) -> None:
        """Block until every in-flight remote chunk is post-shaded.

        The end-of-run barrier of the sharded plane: after the last
        burst a worker drains its private result queue to zero before
        reporting totals, so the conservation identities close.
        """
        if self.transport is None:
            return
        for shaded in self.transport.drain(block=True):
            self._post_shade_chunk(shaded, egress)
            self.transport.recycle(shaded)

    def _cpu_process_chunk(
        self, chunk: Chunk, egress: Dict[int, List[bytearray]], degraded: bool
    ) -> None:
        """Run one chunk through the CPU-only pipeline and finish it."""
        with self.profiler.track(Stages.CPU_PROCESS):
            self.app.cpu_process(chunk)
        if degraded:
            self.stats.degraded_chunks += 1
            self._m_degraded_chunks.inc()
        cpu_cycles = self.app.cpu_cycles_per_packet(
            self._frame_len(chunk)
        ) * len(chunk)
        chunk.service_ns += cpu_cycles * CPU.cycle_ns
        self.tracer.record(
            Stages.CPU_PROCESS,
            packets=len(chunk),
            cycles=cpu_cycles,
            degraded=degraded,
        )
        self._finish_chunk(chunk, egress)

    def _shed_chunk(
        self, chunk: Chunk, egress: Dict[int, List[bytearray]]
    ) -> None:
        """Drop a chunk's still-pending packets under sustained backpressure.

        Pre-shading already settled some verdicts (drops, slow-path
        diversions) — those stand; only the PENDING packets that needed
        the wedged shading path are shed.  Accounting flows through
        ``_finish_chunk`` so the conservation invariant counts each
        packet exactly once; ``backpressure_drops`` attributes the shed
        subset.
        """
        pending = chunk.pending_mask()
        shed = int(pending.sum())
        chunk.set_drop(pending)
        self.stats.backpressure_drops += shed
        self._m_backpressure_drops.inc(shed)
        self.flightrec.note(Events.SHED, "", shed)
        chunk.gpu_input = None
        self._finish_chunk(chunk, egress)

    def _post_shade_chunk(
        self, chunk: Chunk, egress: Dict[int, List[bytearray]]
    ) -> None:
        """One shaded chunk's worker-side completion: post-shade + finish."""
        with self.profiler.track(Stages.POST_SHADE):
            self.app.post_shade(chunk, chunk.gpu_output)
        post_cycles = self._worker_stage_cycles(
            chunk, FRAMEWORK.post_shading_cycles
        )
        chunk.service_ns += post_cycles * CPU.cycle_ns
        self.tracer.record(
            Stages.POST_SHADE, packets=len(chunk), cycles=post_cycles
        )
        self._finish_chunk(chunk, egress)

    def _drain_outputs(self, node: _Node, egress: Dict[int, List[bytearray]]) -> None:
        """Workers pick up shaded chunks and post-shade them."""
        for worker in node.workers:
            while True:
                chunk = worker.output_queue.get()
                if chunk is None:
                    break
                self._post_shade_chunk(chunk, egress)

    # ------------------------------------------------------------------
    # Cost attribution helpers (the modelled per-stage spans).
    # ------------------------------------------------------------------

    @staticmethod
    def _frame_len(chunk: Chunk) -> int:
        return len(chunk.frames[0]) if chunk.frames else 64

    def _worker_stage_cycles(self, chunk: Chunk, framework_cycles: float) -> float:
        """Modelled cycles of one worker-side shading step for a chunk.

        The application's worker cycles cover pre- and post-shading
        together; each step is attributed half, on top of the framework's
        own per-step constant.
        """
        app_cycles = self.app.worker_cycles_per_packet(self._frame_len(chunk))
        return (framework_cycles + app_cycles / 2.0) * len(chunk)
