"""The slow-path handler: what "pass to the Linux TCP/IP stack" does.

The fast path (Section 6.2.1) diverts packets that are "destined to
local, malformed, TTL expired, or marked as wrong IP checksum" to the
kernel stack.  For a router, the stack's observable behaviour is:
originate ICMP errors for expired/unroutable packets, answer pings to
the router's own addresses, and count everything.  This module is that
behaviour, so the slow path is functional end to end rather than a
counter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.net import icmp
from repro.net.ethernet import ETHERNET_HEADER_LEN, ETHERTYPE_IPV4
from repro.net.ipv4 import IPV4_HEADER_LEN, IPv4Header


@dataclass
class SlowPathCounters:
    """Per-reason accounting, like /proc/net/snmp would show."""

    ttl_expired: int = 0
    echo_replied: int = 0
    delivered_local: int = 0
    unhandled: int = 0

    @property
    def total(self) -> int:
        return (
            self.ttl_expired + self.echo_replied
            + self.delivered_local + self.unhandled
        )


class SlowPathHandler:
    """Processes diverted packets and originates the router's responses."""

    def __init__(self, router_addresses: Optional[Set[int]] = None) -> None:
        self.router_addresses = set(router_addresses or {0x0A0000FE})
        self.counters = SlowPathCounters()
        #: Locally-delivered payloads (what a BGP daemon would read).
        self.local_delivery: List[bytes] = []

    @property
    def primary_address(self) -> int:
        return min(self.router_addresses)

    def handle_frame(self, frame: bytes) -> Optional[bytes]:
        """Process one diverted Ethernet frame.

        Returns a response *IP packet* to transmit (an ICMP error or
        echo reply), or None when the packet is absorbed.
        """
        if len(frame) < ETHERNET_HEADER_LEN + IPV4_HEADER_LEN:
            self.counters.unhandled += 1
            return None
        ethertype = (frame[12] << 8) | frame[13]
        if ethertype != ETHERTYPE_IPV4:
            self.counters.unhandled += 1
            return None
        packet = bytes(frame[ETHERNET_HEADER_LEN:])
        try:
            ip = IPv4Header.unpack(packet)
        except ValueError:
            self.counters.unhandled += 1
            return None
        if ip.dst in self.router_addresses:
            reply = icmp.echo_reply(packet)
            if reply is not None:
                self.counters.echo_replied += 1
                return reply
            self.counters.delivered_local += 1
            self.local_delivery.append(packet)
            return None
        if ip.ttl <= 1:
            self.counters.ttl_expired += 1
            return icmp.time_exceeded(self.primary_address, packet)
        self.counters.unhandled += 1
        return None

    def handle_batch(self, frames: List[bytes]) -> List[bytes]:
        """Process a batch of diverted frames; returns the responses."""
        responses = []
        # This IS the slow path: per-packet protocol handling off the
        # fast path, as the Linux stack would do it.
        for frame in frames:  # reprolint: ignore[RL006]
            response = self.handle_frame(frame)
            if response is not None:
                responses.append(response)
        return responses
