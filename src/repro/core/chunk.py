"""The chunk: PacketShader's unit of batched processing (Section 5.3).

"We define chunk as a group of packets fetched in a batch of packet
reception.  The chunk size is not fixed but only capped."  A chunk is
also the minimum unit of GPU parallelism, and FIFO order within a chunk
is preserved end to end (flow order is guaranteed by RSS + FIFO queues).

Each packet in a chunk carries a verdict: forward (with an output port),
drop (malformed), or slow path (destined to local, TTL expired, bad
checksum — Section 6.2.1's classification).

Verdicts are stored structure-of-arrays: one ``uint8`` disposition
column and one ``int32`` out-port column, so the data plane classifies,
counts, and splits whole chunks with numpy masks instead of per-packet
Python loops (the same batching lesson the paper applies to packet I/O).
The per-packet :class:`PacketVerdict` API survives as a thin view over
those columns for callers that still think packet-at-a-time.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.net.frames import FrameBatch, pack_frames


class Disposition(enum.Enum):
    """What should happen to one packet."""

    PENDING = "pending"
    FORWARD = "forward"
    DROP = "drop"
    SLOW_PATH = "slow_path"


#: Array codes of the dispositions (the SoA storage form).
_CODES: Dict[Disposition, int] = {
    Disposition.PENDING: 0,
    Disposition.FORWARD: 1,
    Disposition.DROP: 2,
    Disposition.SLOW_PATH: 3,
}
_DISPOSITIONS: Tuple[Disposition, ...] = (
    Disposition.PENDING,
    Disposition.FORWARD,
    Disposition.DROP,
    Disposition.SLOW_PATH,
)

PENDING_CODE = _CODES[Disposition.PENDING]
FORWARD_CODE = _CODES[Disposition.FORWARD]
DROP_CODE = _CODES[Disposition.DROP]
SLOW_PATH_CODE = _CODES[Disposition.SLOW_PATH]

#: ``out_ports`` sentinel for "no port assigned".
NO_PORT = -1

IndexLike = Union[np.ndarray, Sequence[int]]


class PacketVerdict:
    """Per-packet processing outcome.

    Standalone instances hold their own state (legacy constructions and
    tests); instances handed out by :attr:`Chunk.verdicts` are *views*
    bound to the chunk's disposition/out-port columns, so per-packet
    mutations and batch numpy updates see the same storage.
    """

    __slots__ = ("_chunk", "_index", "_disposition", "_out_port")

    def __init__(
        self,
        disposition: Disposition = Disposition.PENDING,
        out_port: Optional[int] = None,
    ) -> None:
        self._chunk: Optional["Chunk"] = None
        self._index = 0
        self._disposition = disposition
        self._out_port = out_port

    @classmethod
    def _bound(cls, chunk: "Chunk", index: int) -> "PacketVerdict":
        verdict = cls.__new__(cls)
        verdict._chunk = chunk
        verdict._index = index
        verdict._disposition = Disposition.PENDING
        verdict._out_port = None
        return verdict

    @property
    def disposition(self) -> Disposition:
        if self._chunk is not None:
            return _DISPOSITIONS[self._chunk.dispositions[self._index]]
        return self._disposition

    @disposition.setter
    def disposition(self, value: Disposition) -> None:
        if self._chunk is not None:
            self._chunk.dispositions[self._index] = _CODES[value]
        else:
            self._disposition = value

    @property
    def out_port(self) -> Optional[int]:
        if self._chunk is not None:
            port = int(self._chunk.out_ports[self._index])
            return None if port == NO_PORT else port
        return self._out_port

    @out_port.setter
    def out_port(self, value: Optional[int]) -> None:
        if self._chunk is not None:
            self._chunk.out_ports[self._index] = (
                NO_PORT if value is None else value
            )
        else:
            self._out_port = value

    def forward_to(self, port: int) -> None:
        self.disposition = Disposition.FORWARD
        self.out_port = port

    def drop(self) -> None:
        self.disposition = Disposition.DROP
        self.out_port = None

    def slow_path(self) -> None:
        self.disposition = Disposition.SLOW_PATH
        self.out_port = None

    def __repr__(self) -> str:
        return (
            f"PacketVerdict(disposition={self.disposition!r}, "
            f"out_port={self.out_port!r})"
        )


class VerdictColumn:
    """Sequence view presenting the SoA columns as per-packet verdicts."""

    __slots__ = ("_chunk",)

    def __init__(self, chunk: "Chunk") -> None:
        self._chunk = chunk

    def __len__(self) -> int:
        return len(self._chunk.dispositions)

    def __getitem__(self, index: int) -> PacketVerdict:
        length = len(self)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError("verdict index out of range")
        return PacketVerdict._bound(self._chunk, index)

    def __iter__(self) -> Iterator[PacketVerdict]:
        for index in range(len(self)):
            yield PacketVerdict._bound(self._chunk, index)


class Chunk:
    """A batch of packets moving through the three shading steps."""

    __slots__ = (
        "frames",
        "worker_id",
        "in_port",
        "queue_id",
        "dispositions",
        "out_ports",
        "gpu_input",
        "gpu_output",
        "app_state",
        "arrival_ns",
        "service_ns",
        "enqueue_depth",
        "trace_ctx",
        "_frame_store",
        "_offsets",
        "_lengths",
        "_packed",
        "_batch",
        "_shm",
    )

    def __init__(
        self,
        frames: List[bytearray],
        worker_id: int = 0,
        in_port: int = 0,
        queue_id: int = 0,
        verdicts: Optional[Sequence[PacketVerdict]] = None,
        gpu_input: object = None,
        gpu_output: object = None,
        app_state: object = None,
        arrival_ns: float = 0.0,
        store_into: Optional[memoryview] = None,
    ) -> None:
        #: Raw frames (mutable: the fast path rewrites TTLs and checksums).
        #: Stored structure-of-arrays: the incoming frames are packed
        #: into one contiguous backing buffer at the RX edge and each
        #: list entry is a writable ``memoryview`` slice of it, so the
        #: per-packet view and the vectorized :meth:`batch` view share
        #: storage — a batched TTL rewrite is immediately visible here.
        #: With ``store_into`` the pack lands in the caller's buffer
        #: (a shared-memory chunk-pool slot) instead of a fresh
        #: bytearray — the RX edge is then the chunk's only byte copy.
        store, offsets, lengths = pack_frames(frames, out=store_into)
        view = memoryview(store)
        self.frames: List[memoryview] = [
            view[offset:offset + length]
            for offset, length in zip(offsets.tolist(), lengths.tolist())
        ]
        self._frame_store = store
        self._offsets = offsets
        self._lengths = lengths
        self._packed = True
        self._batch: Optional[FrameBatch] = None
        #: Shared-memory descriptor when the store is a chunk-pool slot
        #: (:mod:`repro.shard.pool` binds it); None for heap-backed
        #: chunks.
        self._shm = None
        #: RX provenance: which worker fetched it, from which port/queue.
        self.worker_id = worker_id
        self.in_port = in_port
        self.queue_id = queue_id
        #: Per-packet disposition codes, parallel to ``frames`` (SoA).
        self.dispositions = np.full(len(frames), PENDING_CODE, dtype=np.uint8)
        #: Per-packet output ports (``NO_PORT`` where unassigned).
        self.out_ports = np.full(len(frames), NO_PORT, dtype=np.int32)
        #: Application-specific GPU input staging (built in pre-shading).
        self.gpu_input = gpu_input
        #: GPU results placed back by the master (consumed in post-shading).
        self.gpu_output = gpu_output
        #: Application-private per-chunk state surviving from pre- to
        #: post-shading (e.g. the OpenFlow app stashes extracted flow keys).
        self.app_state = app_state
        #: Simulated clock bookkeeping for latency accounting.
        self.arrival_ns = arrival_ns
        #: Modelled service time accumulated across the shading stages
        #: (fed to the overload controller's p99 window on finish).
        self.service_ns = 0.0
        #: Chunks already queued at the master when this one was handed
        #: off — the queue-wait component of the latency estimate.
        self.enqueue_depth = 0
        #: Flight-recorder trace context ``(writer_id, origin_seq)``:
        #: which worker's ring recorded the RX that birthed this chunk,
        #: and that event's seq.  Stamped at the RX edge, carried across
        #: queue (and pickle) boundaries, and echoed into the CHUNK
        #: completion event so a merged cross-process stream can link a
        #: verdict back to its ingress.  ``None`` until stamped.
        self.trace_ctx: Optional[Tuple[int, int]] = None
        if verdicts is not None:
            if len(verdicts) != len(frames):
                raise ValueError("verdicts must parallel frames")
            # Legacy-constructor edge conversion, not a data-plane loop.
            for index, verdict in enumerate(verdicts):  # reprolint: ignore[RL006]
                self.dispositions[index] = _CODES[verdict.disposition]
                self.out_ports[index] = (
                    NO_PORT if verdict.out_port is None else verdict.out_port
                )

    def __len__(self) -> int:
        return len(self.frames)

    # ------------------------------------------------------------------
    # Process-boundary serialization.
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle the chunk for a process-boundary queue handoff.

        Three wire forms, cheapest first:

        * **shm descriptor** — the store is a chunk-pool slot: only the
          :class:`~repro.shard.pool.ChunkShmRef` travels (plus the
          offset/length columns); the frame bytes are never copied.
        * **owned bytes** — heap-backed packed chunks ship the store as
          one ``bytes`` blob (the pre-shard fallback path).
        * **loose frames** — ``replace_frame()`` detached some frames;
          each ships individually and the chunk stays unpacked.
        """
        state = {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot not in ("frames", "_frame_store", "_batch")
        }
        if self._shm is not None and self._packed:
            # Zero-copy: the descriptor already in state["_shm"] names
            # the packed bytes; nothing else to ship.
            state["_store_bytes"] = None
            state["_loose_frames"] = None
        elif self._packed:
            state["_shm"] = None
            state["_store_bytes"] = bytes(self._frame_store)
            state["_loose_frames"] = None
        else:
            # replace_frame() detached some frames from the store; ship
            # each frame individually and stay unpacked on arrival.
            # Serialization boundary, not a data-plane loop.
            state["_shm"] = None
            state["_store_bytes"] = None
            state["_loose_frames"] = [bytes(f) for f in self.frames]  # reprolint: ignore[RL006]
        return state

    def __setstate__(self, state: dict) -> None:
        store_bytes = state.pop("_store_bytes")
        loose = state.pop("_loose_frames")
        for slot, value in state.items():
            setattr(self, slot, value)
        self._batch = None
        if self._shm is not None:
            # Map the descriptor back onto the shared slot: the rebuilt
            # frames alias the sender's bytes (validated by generation
            # and epoch, raising StaleChunkError on a recycled slot).
            from repro.shard.pool import resolve_ref

            view = resolve_ref(self._shm)
            self._frame_store = view
            self.frames = [
                view[offset:offset + length]
                for offset, length in zip(
                    self._offsets.tolist(), self._lengths.tolist()
                )
            ]
        elif store_bytes is not None:
            store = bytearray(store_bytes)
            view = memoryview(store)
            self._frame_store = store
            self.frames = [
                view[offset:offset + length]
                for offset, length in zip(
                    self._offsets.tolist(), self._lengths.tolist()
                )
            ]
        else:
            self._frame_store = bytearray()
            self.frames = [bytearray(f) for f in loose]

    # ------------------------------------------------------------------
    # The structure-of-arrays view.
    # ------------------------------------------------------------------

    def batch(self) -> FrameBatch:
        """The chunk's frames as a :class:`FrameBatch` (cached).

        While the frames are still the original packed slices the batch
        wraps the backing buffer zero-copy and is marked *shared*:
        vectorized header writes land directly in the frames and no
        per-packet write-back is needed.  After :meth:`replace_frame`
        the correspondence is broken, so the batch is rebuilt from the
        live frame list on each call (copy-in, with write-back).
        """
        if self._batch is not None:
            return self._batch
        if self._packed:
            batch = FrameBatch(
                np.frombuffer(self._frame_store, dtype=np.uint8),
                self._offsets,
                self._lengths,
                shared=True,
            )
            self._batch = batch
            return batch
        return FrameBatch.from_frames(self.frames)

    def replace_frame(self, index: int, frame: bytearray) -> None:
        """Substitute packet ``index``'s frame (e.g. ESP encap/decap).

        Rebinding a frame (rather than mutating it in place) detaches it
        from the packed buffer, so the cached batch view is invalidated.
        On a shm-backed chunk the slot's epoch counter is bumped too, so
        any descriptor of the old store still in flight in another
        process fails validation instead of reading a half-true frame
        list (the cross-process invalidation of docs/SHARDING.md).
        Always use this instead of assigning ``chunk.frames[index]``
        directly.
        """
        self.frames[index] = frame
        self._packed = False
        self._batch = None
        if self._shm is not None:
            from repro.shard.pool import note_frame_replaced

            self._shm = note_frame_replaced(self._shm)

    # ------------------------------------------------------------------
    # Shared-memory backing (bound by repro.shard.pool).
    # ------------------------------------------------------------------

    @property
    def shm_ref(self):
        """The chunk-pool descriptor of the store (None if heap-backed)."""
        return self._shm

    @property
    def is_packed(self) -> bool:
        """True while every frame is still a slice of the packed store."""
        return self._packed

    def packed_nbytes(self) -> int:
        """Total packed bytes of the store (valid while packed)."""
        return int(self._lengths.sum()) if len(self._lengths) else 0

    def repack_into(self, buffer: memoryview) -> int:
        """Repack the live frames into ``buffer`` (a fresh pool slot).

        The copy-on-grow escape: after ``replace_frame`` detached
        frames, one packing copy restores the SoA invariants against a
        caller-supplied store.  Offset/length columns are recomputed
        (replacement frames may differ in size); returns the packed
        byte count.  The caller re-binds the shm descriptor.
        """
        store, offsets, lengths = pack_frames(self.frames, out=buffer)
        view = memoryview(store)
        self._frame_store = store
        self._offsets = offsets
        self._lengths = lengths
        self.frames = [
            view[offset:offset + length]
            for offset, length in zip(offsets.tolist(), lengths.tolist())
        ]
        self._packed = True
        self._batch = None
        self._shm = None
        return self.packed_nbytes()

    # ------------------------------------------------------------------
    # The per-packet compatibility view.
    # ------------------------------------------------------------------

    @property
    def verdicts(self) -> VerdictColumn:
        """Per-packet verdict views over the disposition/port columns."""
        return VerdictColumn(self)

    # ------------------------------------------------------------------
    # Vectorized verdict updates (the data-plane fast path).
    # ------------------------------------------------------------------

    def set_forward(self, where: IndexLike, ports) -> None:
        """FORWARD the selected packets to ``ports`` (array or scalar)."""
        self.dispositions[where] = FORWARD_CODE
        self.out_ports[where] = ports

    def set_drop(self, where: IndexLike) -> None:
        """DROP the selected packets (index array or boolean mask)."""
        self.dispositions[where] = DROP_CODE
        self.out_ports[where] = NO_PORT

    def set_slow_path(self, where: IndexLike) -> None:
        """Divert the selected packets to the slow path."""
        self.dispositions[where] = SLOW_PATH_CODE
        self.out_ports[where] = NO_PORT

    def pending_mask(self) -> np.ndarray:
        """Boolean mask of packets still awaiting a verdict."""
        return self.dispositions == PENDING_CODE

    def pending_indices(self) -> List[int]:
        """Packets still awaiting a verdict (the GPU-bound subset)."""
        return np.flatnonzero(self.pending_mask()).tolist()

    def slow_path_indices(self) -> List[int]:
        """Packets diverted to the slow path, in FIFO order."""
        return np.flatnonzero(self.dispositions == SLOW_PATH_CODE).tolist()

    def reopen_forwarded(self) -> List[int]:
        """Reset FORWARD verdicts to PENDING; returns the reopened
        indices (multi-stage composites re-offer forwarded packets)."""
        mask = self.dispositions == FORWARD_CODE
        self.dispositions[mask] = PENDING_CODE
        return np.flatnonzero(mask).tolist()

    def disposition_counts(self) -> Tuple[int, int, int]:
        """``(forwarded, dropped, slow_path)`` in one counting pass."""
        counts = np.bincount(self.dispositions, minlength=4)
        return (
            int(counts[FORWARD_CODE]),
            int(counts[DROP_CODE]),
            int(counts[SLOW_PATH_CODE]),
        )

    def split_by_port(self) -> dict:
        """Post-shading's final step: frames grouped by output port.

        A stable argsort over the forwarded packets' ports groups the
        egress distribution in one vectorized pass; FIFO order within
        each port is preserved (the paper's intra-flow ordering
        guarantee rides on it).
        """
        forwarded = np.flatnonzero(self.dispositions == FORWARD_CODE)
        by_port: dict = {}
        if forwarded.size == 0:
            return by_port
        ports = self.out_ports[forwarded]
        order = np.argsort(ports, kind="stable")
        sorted_ports = ports[order]
        sorted_indices = forwarded[order]
        boundaries = np.flatnonzero(np.diff(sorted_ports)) + 1
        frames = self.frames
        start = 0
        for end in [*boundaries.tolist(), len(sorted_indices)]:
            port = int(sorted_ports[start])
            by_port[port] = [frames[i] for i in sorted_indices[start:end]]
            start = end
        return by_port

    def count(self, disposition: Disposition) -> int:
        """How many packets carry a given disposition."""
        return int(
            np.count_nonzero(self.dispositions == _CODES[disposition])
        )

    def max_frame_len(self, default: int = 64) -> int:
        """Largest frame in the chunk (``default`` when empty)."""
        return max(map(len, self.frames), default=default)
