"""The chunk: PacketShader's unit of batched processing (Section 5.3).

"We define chunk as a group of packets fetched in a batch of packet
reception.  The chunk size is not fixed but only capped."  A chunk is
also the minimum unit of GPU parallelism, and FIFO order within a chunk
is preserved end to end (flow order is guaranteed by RSS + FIFO queues).

Each packet in a chunk carries a verdict: forward (with an output port),
drop (malformed), or slow path (destined to local, TTL expired, bad
checksum — Section 6.2.1's classification).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class Disposition(enum.Enum):
    """What should happen to one packet."""

    PENDING = "pending"
    FORWARD = "forward"
    DROP = "drop"
    SLOW_PATH = "slow_path"


@dataclass
class PacketVerdict:
    """Per-packet processing outcome."""

    disposition: Disposition = Disposition.PENDING
    out_port: Optional[int] = None

    def forward_to(self, port: int) -> None:
        self.disposition = Disposition.FORWARD
        self.out_port = port

    def drop(self) -> None:
        self.disposition = Disposition.DROP
        self.out_port = None

    def slow_path(self) -> None:
        self.disposition = Disposition.SLOW_PATH
        self.out_port = None


@dataclass
class Chunk:
    """A batch of packets moving through the three shading steps."""

    #: Raw frames (mutable: the fast path rewrites TTLs and checksums).
    frames: List[bytearray]
    #: RX provenance: which worker fetched it, from which port/queue.
    worker_id: int = 0
    in_port: int = 0
    queue_id: int = 0
    #: Per-packet verdicts, parallel to ``frames``.
    verdicts: List[PacketVerdict] = field(default_factory=list)
    #: Application-specific GPU input staging (built in pre-shading).
    gpu_input: object = None
    #: GPU results placed back by the master (consumed in post-shading).
    gpu_output: object = None
    #: Application-private per-chunk state surviving from pre- to
    #: post-shading (e.g. the OpenFlow app stashes extracted flow keys).
    app_state: object = None
    #: Simulated clock bookkeeping for latency accounting.
    arrival_ns: float = 0.0

    def __post_init__(self) -> None:
        if not self.verdicts:
            self.verdicts = [PacketVerdict() for _ in self.frames]
        if len(self.verdicts) != len(self.frames):
            raise ValueError("verdicts must parallel frames")

    def __len__(self) -> int:
        return len(self.frames)

    def pending_indices(self) -> List[int]:
        """Packets still awaiting a verdict (the GPU-bound subset)."""
        return [
            i
            for i, verdict in enumerate(self.verdicts)
            if verdict.disposition is Disposition.PENDING
        ]

    def split_by_port(self) -> dict:
        """Post-shading's final step: frames grouped by output port."""
        by_port: dict = {}
        for frame, verdict in zip(self.frames, self.verdicts):
            if verdict.disposition is Disposition.FORWARD:
                by_port.setdefault(verdict.out_port, []).append(frame)
        return by_port

    def count(self, disposition: Disposition) -> int:
        """How many packets carry a given disposition."""
        return sum(1 for v in self.verdicts if v.disposition is disposition)
