"""The application interface: pre-shader, shader, post-shader callbacks.

"A packet processing application runs on top of the framework and is
mainly driven by three callback functions (a pre-shader, a shader, and a
post-shader)" (Section 5.1).  Concrete applications in
:mod:`repro.apps` implement:

* the **functional callbacks** — real per-packet work over real frames:
  ``pre_shade`` classifies packets and builds the GPU input,
  ``gpu_work`` describes (and performs) the kernel, ``post_shade``
  applies results; ``cpu_process`` is the CPU-only mode's whole pipeline;
* the **cost hooks** — per-packet CPU cycles, GPU kernel cost spec, and
  PCIe bytes, which :mod:`repro.core.solver` assembles into the pipeline
  model that yields the Figure 11 curves.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Callable, Optional, Tuple

from repro.core.chunk import Chunk
from repro.hw.gpu import GPUDevice, KernelSpec


@dataclass
class GPUWorkItem:
    """One chunk's shading work: the kernel plus its transfer sizes.

    ``threads`` is the GPU thread count (one per packet for lookups; one
    per 16 B AES block for IPsec).  ``run`` executes the real computation
    and returns the output object the post-shader consumes.
    """

    spec: KernelSpec
    threads: int
    bytes_in: int
    bytes_out: int
    args: tuple = ()

    def launch_on(self, device: GPUDevice):
        """Execute on a device; returns the LaunchResult (with output)."""
        return device.launch(
            self.spec, self.threads, self.bytes_in, self.bytes_out, self.args
        )

    def __getstate__(self) -> dict:
        """Pickle for a process-boundary handoff (docs/SHARDING.md).

        Only the kernel's *description* and its gathered input arrays
        travel — the H2D copy the real router makes.  The callable is
        device-resident state (it closes over the application's tables),
        so it is stripped here and rebound on the master's side by
        :meth:`RouterApplication.bind_kernel`.
        """
        state = dict(self.__dict__)
        if self.spec.fn is not None:
            state["spec"] = replace(self.spec, fn=None)
        return state


class RouterApplication(abc.ABC):
    """Base class for PacketShader applications."""

    #: Short name used in reports ("ipv4", "ipsec", ...).
    name: str = "app"
    #: Whether the GPU-mode shading path uses CUDA streams (the paper
    #: enables concurrent copy & execution only for IPsec).
    use_streams: bool = False
    #: Override for the IOH displacement factor (how strongly this app's
    #: GPU DMA competes with NIC DMA).  None uses the calibrated default
    #: (small gathered arrays); payload-shipping applications displace
    #: NIC budget nearly byte-for-byte and set a higher value.
    gpu_displacement_override: float = None

    # ------------------------------------------------------------------
    # Functional path.
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def pre_shade(self, chunk: Chunk) -> Optional[GPUWorkItem]:
        """Worker step: drop malformed packets, divert slow-path ones,
        mutate headers, and build the GPU input for the rest.

        Returns the chunk's GPU work item, or None if nothing needs the
        GPU (the chunk is then complete after pre-shading).
        """

    @abc.abstractmethod
    def post_shade(self, chunk: Chunk, gpu_output) -> None:
        """Worker step: apply GPU results — set verdicts/ports, rewrite
        or duplicate packets as the results dictate."""

    @abc.abstractmethod
    def cpu_process(self, chunk: Chunk) -> None:
        """CPU-only mode: the whole pipeline on the worker, no GPU."""

    # ------------------------------------------------------------------
    # Cross-process shading (docs/SHARDING.md).
    # ------------------------------------------------------------------

    def kernel_fn(self, name: str) -> Optional[Callable]:
        """The device-resident implementation of a kernel, by name.

        The sharded plane's master rebinds stripped work items against
        *its* application instance — the analogue of kernel code and
        lookup tables living in GPU memory rather than travelling with
        every chunk.  Applications whose kernels may run in a remote
        master override this; the default None means the app's work
        items cannot cross a process boundary.
        """
        return None

    def bind_kernel(self, work: GPUWorkItem) -> GPUWorkItem:
        """Master-side rehydration of a work item's stripped callable."""
        if work.spec.fn is None:
            fn = self.kernel_fn(work.spec.name)
            if fn is None:
                raise KeyError(
                    f"app {self.name!r} has no kernel {work.spec.name!r} "
                    f"to rebind"
                )
            work.spec = replace(work.spec, fn=fn)
        return work

    # ------------------------------------------------------------------
    # Cost hooks (consumed by repro.core.solver).
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def cpu_cycles_per_packet(self, frame_len: int) -> float:
        """Application CPU cycles per packet in CPU-only mode
        (excluding packet I/O, which the solver adds)."""

    @abc.abstractmethod
    def worker_cycles_per_packet(self, frame_len: int) -> float:
        """Worker-side application cycles per packet in CPU+GPU mode:
        the pre-/post-shading work that stays on the CPU."""

    @abc.abstractmethod
    def kernel_cost(self, frame_len: int) -> Tuple[KernelSpec, float]:
        """(kernel spec, GPU threads per packet) for the cost model."""

    @abc.abstractmethod
    def gpu_bytes_per_packet(self, frame_len: int) -> Tuple[float, float]:
        """(host-to-device, device-to-host) PCIe bytes per packet."""
