"""Horizontal scaling with Valiant Load Balancing (paper Section 7).

"In case more capacity or a larger number of ports are needed, we can
take a similar approach as suggested by RouteBricks and use Valiant
Load Balancing (VLB) or direct VLB."

This module models the RouteBricks-style cluster: N PacketShader boxes
in a full mesh, external traffic entering any node and leaving any
node.  Classic VLB routes every packet through a random intermediate
node (two internal hops), so each node's internal capacity must be 2x
its external rate; direct VLB sends the uniform component directly (one
hop) and falls back to two hops only for skewed traffic, cutting the
internal overhead toward 1x.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VLBCluster:
    """An N-node cluster of identical routers.

    ``node_capacity_gbps`` is one box's total packet-processing
    capacity (external + internal traffic); ``mesh_link_gbps`` the
    capacity of each internal mesh link; ``direct`` selects direct VLB.
    """

    num_nodes: int
    node_capacity_gbps: float = 40.0
    mesh_link_gbps: float = 10.0
    direct: bool = True

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("cluster needs at least one node")
        if self.node_capacity_gbps <= 0 or self.mesh_link_gbps <= 0:
            raise ValueError("capacities must be positive")

    @property
    def internal_overhead(self) -> float:
        """Internal traffic per unit of external traffic.

        Classic VLB forwards every packet twice inside the cluster
        (ingress -> intermediate -> egress): overhead 2.  Direct VLB
        delivers the balanced component in one hop: overhead 1 for
        uniform traffic, approaching 2 only under full skew; we model
        the uniform case the paper's workloads correspond to.
        A single node needs no internal hops at all.
        """
        if self.num_nodes == 1:
            return 0.0
        return 1.0 if self.direct else 2.0

    def external_capacity_gbps(self) -> float:
        """Aggregate external traffic the cluster sustains.

        Each node splits its processing capacity between external I/O
        and internal relaying: an external rate ``e`` per node costs
        ``e x (1 + overhead)`` of node capacity.  The mesh links bound
        the per-pair internal rate as a second constraint.
        """
        overhead = self.internal_overhead
        per_node_external = self.node_capacity_gbps / (1.0 + overhead)
        if self.num_nodes > 1 and overhead:
            # Internal traffic from one node spreads over N-1 links.
            link_bound = self.mesh_link_gbps * (self.num_nodes - 1) / overhead
            per_node_external = min(per_node_external, link_bound)
        return per_node_external * self.num_nodes

    def nodes_for(self, target_external_gbps: float) -> int:
        """Smallest cluster sustaining a target external rate."""
        if target_external_gbps <= 0:
            raise ValueError("target must be positive")
        nodes = 1
        while True:
            cluster = VLBCluster(
                num_nodes=nodes,
                node_capacity_gbps=self.node_capacity_gbps,
                mesh_link_gbps=self.mesh_link_gbps,
                direct=self.direct,
            )
            if cluster.external_capacity_gbps() >= target_external_gbps:
                return nodes
            nodes += 1
            if nodes > 10_000:
                raise RuntimeError("target unreachable with this node type")


def packetshader_vs_rb4() -> dict:
    """The paper's closing comparison: "PacketShader could replace RB4,
    a cluster of four RouteBricks machines, with a single machine with
    better performance."

    Returns the two configurations' external capacities.
    """
    packetshader = VLBCluster(num_nodes=1, node_capacity_gbps=40.0)
    # RB4: four RouteBricks nodes at 13.3 Gbps (64B) each, classic VLB
    # over the mesh as the RouteBricks paper describes.
    rb4 = VLBCluster(
        num_nodes=4, node_capacity_gbps=13.3, mesh_link_gbps=10.0, direct=True
    )
    return {
        "packetshader_single_box": packetshader.external_capacity_gbps(),
        "routebricks_rb4": rb4.external_capacity_gbps(),
    }
