"""The overload controller: SLO-aware graceful degradation under flood.

PacketShader's chunk knob trades latency for throughput (the NaNet
observation: bigger batches amortize per-launch cost but every packet in
the batch waits for the whole batch).  Today the router exploits only
one end of that trade-off; under offered load beyond capacity it
backpressure-drops indiscriminately and lets reactive flow installation
grow without bound.  This module closes the loop with three mechanisms,
all deterministic and clockless (pressure and latency are modelled
quantities, so chaos runs replay exactly):

* **priority-aware RX shedding** — a ladder at the ring boundary.
  Frames are classified ``established`` (5-tuple in the bounded
  established-flow cache), ``new_flow`` (first sighting), or ``attack``
  (TCP SYN without an established flow, or any new flow during a
  new-flow storm).  As RX pressure rises, attack-classified traffic is
  shed first, then new flows; established flows are never shed at the
  ring — their loss, if any, comes from ordinary bounded backpressure.
* **SLO-aware adaptive chunk sizing** — grow the chunk capacity
  (multiplicatively, up to a cap) while pressure is high and the p99 of
  modelled chunk latency sits under the budget; shrink it the moment
  p99 exceeds the budget.  AIMD in spirit: throughput when latency
  allows, latency when it does not.
* **admission freeze** — above a pressure watermark the established
  cache stops learning, so a flood cannot thrash out the flows it is
  trying to starve (the state-protection analogue of SYN cookies).

Every shed is attributed: ``overload.shed_packets`` counters per class,
one ``RX_SHED`` flight-recorder event per (fetch, class), and the chaos
report's ingress identity ``injected == rx_dropped + rx_shed +
received``.  The bounded flow table (``openflow/flowtable.py``) emits
the matching ``overload.flow_*`` counters and ``FLOW_EVICT`` events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs import Events, get_flightrec, get_registry, names

#: Traffic classes, in shedding order (attack goes first).
CLASS_ATTACK = "attack"
CLASS_NEW_FLOW = "new_flow"
CLASS_ESTABLISHED = "established"

_ETHERTYPE_IPV4 = 0x0800
_PROTO_TCP = 6
_FLAG_SYN = 0x02
_FLAG_ACK = 0x10


@dataclass(frozen=True)
class SLOConfig:
    """The operator-facing knobs (docs/RESILIENCE.md, "Overload control").

    The latency budget applies to the modelled per-chunk latency
    (queue-wait estimate plus accumulated service time) — the same
    nanoseconds the span tracer charges, so ``p99_budget_ns`` means the
    same thing in ``repro trace`` output and here.
    """

    #: p99 modelled chunk latency the adaptive sizing must respect.
    p99_budget_ns: float = 400_000.0
    #: Chunk capacity bounds for the adaptive resizer.
    min_chunk_capacity: int = 16
    max_chunk_capacity: int = 256
    #: Chunk observations between resize decisions.
    latency_window: int = 32
    #: Pressure at which attack-classified traffic is shed (and new
    #: flows too, during a new-flow storm).
    shed_watermark: float = 0.25
    #: Pressure at which new-flow traffic is shed unconditionally.
    new_flow_watermark: float = 0.55
    #: Pressure above which the established cache stops learning.
    admit_watermark: float = 0.25
    #: Bound on the established-flow cache (FIFO eviction past it).
    established_cache: int = 4096
    #: Fraction of never-seen flows in recent traffic that declares a
    #: new-flow storm (spoofed-source floods sit near 1.0).
    storm_threshold: float = 0.6

    def __post_init__(self) -> None:
        if self.p99_budget_ns <= 0:
            raise ValueError("p99_budget_ns must be positive")
        if not 1 <= self.min_chunk_capacity <= self.max_chunk_capacity:
            raise ValueError("need 1 <= min_chunk_capacity <= max")
        if self.latency_window < 1:
            raise ValueError("latency_window must be >= 1")
        for mark in (self.shed_watermark, self.new_flow_watermark,
                     self.admit_watermark, self.storm_threshold):
            if not 0.0 <= mark <= 1.0:
                raise ValueError("watermarks must be in [0, 1]")
        if self.established_cache < 1:
            raise ValueError("established_cache must be >= 1")


class OverloadController:
    """Shared overload state wired through engine, framework, and tables.

    One instance serves one router stack: the I/O engine calls
    :meth:`admit` at every RX fetch, the framework calls
    :meth:`observe_chunk` as chunks finish and :meth:`note_reject` when
    the master queue refuses a hand-off, and everyone reads
    :meth:`chunk_capacity` / :meth:`pressure`.
    """

    def __init__(self, config: Optional[SLOConfig] = None,
                 initial_capacity: int = 0) -> None:
        self.config = config or SLOConfig()
        cap = initial_capacity or self.config.max_chunk_capacity // 4
        self._capacity = max(
            self.config.min_chunk_capacity,
            min(self.config.max_chunk_capacity, cap),
        )
        self._pressure = 0.0
        self._novelty = 0.0
        self._latencies: List[float] = []
        self._service_ewma = 0.0
        self._last_p99 = 0.0
        #: Insertion-ordered established cache (dict order is FIFO).
        self._established: Dict[Tuple, bool] = {}
        self.shed_by_class: Dict[str, int] = {}
        self.admitted = 0
        self.resizes = 0
        self._recorder = get_flightrec()
        registry = get_registry()
        self._m_shed = {
            cls: registry.counter(
                names.OVERLOAD_SHED_PACKETS,
                help="packets shed at the RX ring by the overload ladder",
                traffic_class=cls,
            )
            for cls in (CLASS_ATTACK, CLASS_NEW_FLOW, CLASS_ESTABLISHED)
        }
        self._g_capacity = registry.gauge(
            names.OVERLOAD_CHUNK_CAPACITY,
            help="current adaptive chunk capacity",
        )
        self._g_capacity.set(self._capacity)
        self._m_resizes = {
            direction: registry.counter(
                names.OVERLOAD_RESIZES,
                help="adaptive chunk capacity changes",
                direction=direction,
            )
            for direction in ("grow", "shrink")
        }
        self._g_p99 = registry.gauge(
            names.OVERLOAD_P99_NS,
            help="latest windowed p99 of modelled chunk latency",
        )
        self._g_pressure = registry.gauge(
            names.OVERLOAD_PRESSURE,
            help="RX pressure level in [0, 1]",
        )

    # ------------------------------------------------------------------
    # Signals in.
    # ------------------------------------------------------------------

    def note_reject(self) -> None:
        """The master input queue refused a hand-off (backpressure)."""
        self._set_pressure(min(1.0, self._pressure + 0.1))

    def _set_pressure(self, value: float) -> None:
        self._pressure = value
        self._g_pressure.set(round(value, 6))

    @property
    def pressure(self) -> float:
        return self._pressure

    @property
    def p99_ns(self) -> float:
        """Latest windowed p99 (0.0 before the first full window)."""
        return self._last_p99

    @property
    def established_flows(self) -> int:
        return len(self._established)

    @property
    def rx_shed(self) -> int:
        """Total packets shed at the RX ring, all classes."""
        return sum(self.shed_by_class.values())

    def rx_keep_polling(self) -> bool:
        """Should RX loops stay in polling mode (skip interrupt re-arm)?

        Under pressure an interrupt per wakeup is livelock fuel; the
        paper's scheme already polls while packets are pending, and the
        controller extends that through short empty windows of a flood.
        """
        return self._pressure >= self.config.shed_watermark

    # ------------------------------------------------------------------
    # RX admission (the shedding ladder).
    # ------------------------------------------------------------------

    @staticmethod
    def _classify_frame(frame: bytes) -> Tuple[Optional[Tuple], bool]:
        """(flow key or None, is_syn) from raw bytes — no full parse.

        The RX ring boundary sees every packet of a flood; this reads
        exactly the five header fields the ladder needs.
        """
        if len(frame) < 34 or frame[12] != 0x08 or frame[13] != 0x00:
            return None, False
        ihl = (frame[14] & 0x0F) * 4
        proto = frame[23]
        l4 = 14 + ihl
        if len(frame) < l4 + 4:
            return None, False
        key = (
            bytes(frame[26:30]), bytes(frame[30:34]),
            bytes(frame[l4:l4 + 4]), proto,
        )
        is_syn = (
            proto == _PROTO_TCP
            and len(frame) > l4 + 13
            and bool(frame[l4 + 13] & _FLAG_SYN)
            and not frame[l4 + 13] & _FLAG_ACK
        )
        return key, is_syn

    def classify(self, frame: bytes) -> str:
        """The ladder's traffic class for one frame (no learning)."""
        key, is_syn = self._classify_frame(frame)
        if key is not None and key in self._established:
            return CLASS_ESTABLISHED
        if is_syn:
            return CLASS_ATTACK
        return CLASS_NEW_FLOW

    def admit(self, frames: List[bytes], backlog: int,
              ring_size: int) -> List[bytes]:
        """Run one RX fetch through the shedding ladder.

        ``backlog`` is the ring occupancy left after the fetch — the
        pressure signal.  Returns the admitted frames in arrival order;
        everything shed is attributed (per-class counters plus one
        ``RX_SHED`` event per class) before this returns, so the drop
        accounting identity closes at the boundary where the loss
        happened.
        """
        cfg = self.config
        occupancy = min(1.0, backlog / ring_size) if ring_size else 0.0
        self._set_pressure(max(occupancy, self._pressure * 0.85))
        shed_attack = self._pressure >= cfg.shed_watermark
        shed_new = self._pressure >= cfg.new_flow_watermark or (
            shed_attack and self._novelty >= cfg.storm_threshold
        )
        learn = self._pressure < cfg.admit_watermark
        kept: List[bytes] = []
        shed: Dict[str, int] = {}
        fresh = 0
        # Per-packet by design: admission is the one place every frame
        # of a flood must be looked at, and it reads five fields.
        for frame in frames:  # reprolint: ignore[RL006]
            key, is_syn = self._classify_frame(frame)
            established = key is not None and key in self._established
            if established:
                cls = CLASS_ESTABLISHED
            elif is_syn:
                cls = CLASS_ATTACK
            else:
                cls = CLASS_NEW_FLOW
            if not established:
                fresh += 1
            if (cls == CLASS_ATTACK and shed_attack) or (
                cls == CLASS_NEW_FLOW and shed_new
            ):
                shed[cls] = shed.get(cls, 0) + 1
                continue
            if cls == CLASS_NEW_FLOW and learn and key is not None:
                if len(self._established) >= cfg.established_cache:
                    self._established.pop(next(iter(self._established)))
                self._established[key] = True
            kept.append(frame)
        if frames:
            self._novelty = 0.7 * self._novelty + 0.3 * (
                fresh / len(frames)
            )
        for cls in sorted(shed):
            count = shed[cls]
            self.shed_by_class[cls] = self.shed_by_class.get(cls, 0) + count
            self._m_shed[cls].inc(count)
            self._recorder.note(Events.RX_SHED, cls, count)
        self.admitted += len(kept)
        return kept

    # ------------------------------------------------------------------
    # Adaptive chunk sizing.
    # ------------------------------------------------------------------

    @property
    def chunk_capacity(self) -> int:
        """The capacity the framework and testbed should chunk with."""
        return self._capacity

    def observe_chunk(self, packets: int, service_ns: float,
                      enqueue_depth: int) -> None:
        """Feed one finished chunk's modelled latency into the window.

        Latency = the chunk's own accumulated service time plus a
        queue-wait estimate (chunks ahead at enqueue x the EWMA of
        recent service times).  Every ``latency_window`` observations
        the windowed p99 drives one AIMD decision.
        """
        if packets < 1:
            return
        if self._service_ewma:
            self._service_ewma = (
                0.8 * self._service_ewma + 0.2 * service_ns
            )
        else:
            self._service_ewma = service_ns
        latency = service_ns + enqueue_depth * self._service_ewma
        self._latencies.append(latency)
        if len(self._latencies) < self.config.latency_window:
            return
        window = sorted(self._latencies)
        self._latencies.clear()
        rank = max(0, -(-len(window) * 99 // 100) - 1)
        p99 = window[rank]
        self._last_p99 = p99
        self._g_p99.set(round(p99, 3))
        cfg = self.config
        if p99 > cfg.p99_budget_ns:
            self._resize(max(cfg.min_chunk_capacity, self._capacity // 2),
                         "shrink")
        elif (
            self._pressure >= cfg.shed_watermark
            and p99 <= 0.7 * cfg.p99_budget_ns
        ):
            self._resize(min(cfg.max_chunk_capacity, self._capacity * 2),
                         "grow")

    def _resize(self, new_capacity: int, direction: str) -> None:
        if new_capacity == self._capacity:
            return
        self._capacity = new_capacity
        self.resizes += 1
        self._g_capacity.set(new_capacity)
        self._m_resizes[direction].inc()
        self._recorder.note(Events.CHUNK_RESIZE, direction, new_capacity)
