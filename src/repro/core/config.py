"""Router configuration: thread layout, chunk policy, optimizations.

Encodes the two evaluated modes (Section 6.1): CPU-only runs eight worker
threads (no shading step, so no masters); CPU+GPU runs three workers plus
one master per quad-core node, every thread hard-affinitized to its core.
The optimization toggles correspond to Section 5.4 and exist so the
ablation benchmarks can turn each off.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.calib.constants import FRAMEWORK, SYSTEM, FrameworkCosts, SystemSpec


class ThreadRole(enum.Enum):
    WORKER = "worker"
    MASTER = "master"


@dataclass(frozen=True)
class RouterConfig:
    """One router deployment's knobs."""

    #: Use the GPUs (CPU+GPU mode) or run everything on workers (CPU-only).
    use_gpu: bool = True
    #: Maximum packets per chunk (Section 5.3: capped, never waited for).
    chunk_capacity: int = FRAMEWORK.chunk_capacity
    #: Section 5.4 optimizations.
    chunk_pipelining: bool = True
    gather_scatter: bool = True
    #: Concurrent copy and execution (streams); the paper enables it only
    #: for IPsec ("using multiple streams significantly degrades the
    #: performance of lightweight kernels").
    concurrent_copy: bool = False
    #: Maximum chunks gathered per GPU launch when gather_scatter is on.
    max_gather_chunks: int = FRAMEWORK.max_gather_chunks
    #: NUMA-aware data placement and RSS steering (Section 4.5).
    numa_aware: bool = True
    system: SystemSpec = field(default_factory=lambda: SYSTEM)
    framework_costs: FrameworkCosts = field(default_factory=lambda: FRAMEWORK)

    def __post_init__(self) -> None:
        if self.chunk_capacity < 1:
            raise ValueError("chunk_capacity must be >= 1")
        if self.max_gather_chunks < 1:
            raise ValueError("max_gather_chunks must be >= 1")

    @property
    def workers_per_node(self) -> int:
        """Worker threads per node: 3 in GPU mode, 4 in CPU-only mode."""
        if self.use_gpu:
            return self.system.workers_per_node_gpu_mode
        return self.system.workers_per_node_cpu_mode

    @property
    def masters_per_node(self) -> int:
        return self.system.masters_per_node if self.use_gpu else 0

    @property
    def total_workers(self) -> int:
        return self.workers_per_node * self.system.num_nodes

    @property
    def total_masters(self) -> int:
        return self.masters_per_node * self.system.num_nodes

    def core_assignment(self) -> List[Tuple[int, int, ThreadRole]]:
        """(node, core, role) for every thread — the hard affinity map.

        Each thread maps one-to-one onto a core (Section 5.1); masters
        take the last core of their node's socket.
        """
        assignment = []
        cores_per_node = self.workers_per_node + self.masters_per_node
        for node in range(self.system.num_nodes):
            for core in range(self.workers_per_node):
                assignment.append((node, core, ThreadRole.WORKER))
            for core in range(self.workers_per_node, cores_per_node):
                assignment.append((node, core, ThreadRole.MASTER))
        return assignment

    def effective_gather_chunks(self) -> int:
        """Chunks per GPU launch given the gather/scatter setting."""
        return self.max_gather_chunks if self.gather_scatter else 1
