"""The PacketShader framework (paper Section 5).

The paper's architecture: a multithreaded user-mode program where
*worker* threads own packet I/O and the pre-/post-shading steps, and one
*master* thread per NUMA node owns the node's GPU, acting as the workers'
proxy (to avoid the CUDA multi-thread context-switch pathology).  Packets
move in *chunks*; processing is pre-shading (fetch, classify, build GPU
input) -> shading (h2d, kernel, d2h) -> post-shading (apply results,
split to ports).

Modules:

* :mod:`repro.core.config` — router configuration (CPU-only vs CPU+GPU
  thread layouts, chunk cap, optimization toggles);
* :mod:`repro.core.chunk` — the chunk: packets + per-packet metadata;
* :mod:`repro.core.queues` — the master's input queue (shared, FIFO for
  fairness) and per-worker output queues (1-to-1 to avoid cache bouncing);
* :mod:`repro.core.application` — the three-callback application
  interface (pre-shader, shader, post-shader) with its cost-model hooks;
* :mod:`repro.core.framework` — the router: functional packet flow
  through workers and masters, deterministic round-robin scheduling;
* :mod:`repro.core.solver` — assembles per-application pipeline models
  and produces the Figure 11 throughput/latency numbers.
"""

from repro.core.config import RouterConfig, ThreadRole
from repro.core.chunk import Chunk, PacketVerdict, Disposition
from repro.core.queues import MasterInputQueue, WorkerOutputQueue
from repro.core.application import RouterApplication, GPUWorkItem
from repro.core.framework import PacketShader, RouterStats
from repro.core.solver import (
    app_throughput_report,
    app_latency_ns,
    degraded_throughput_report,
)
from repro.core.composite import CompositeApplication
from repro.core.scaling import VLBCluster

__all__ = [
    "Chunk",
    "CompositeApplication",
    "VLBCluster",
    "Disposition",
    "GPUWorkItem",
    "MasterInputQueue",
    "PacketShader",
    "PacketVerdict",
    "RouterApplication",
    "RouterConfig",
    "RouterStats",
    "ThreadRole",
    "WorkerOutputQueue",
    "app_latency_ns",
    "app_throughput_report",
    "degraded_throughput_report",
]
