"""The managed shared-memory chunk pool (docs/SHARDING.md).

Frame bytes of a sharded run live here: each worker process owns one
pool — a fixed number of fixed-size slots in a single
``multiprocessing.shared_memory`` segment — and packs every chunk's
frames into a slot at the RX edge.  A chunk then crosses process
boundaries as a :class:`ChunkShmRef` descriptor (segment name, slot,
generation, epoch, byte length); the receiver re-maps the same slot
memory instead of copying the bytes (the PR 5 zero-copy design
surviving the fork).

Lifecycle invariants:

* **single allocator** — only the owning worker acquires and releases
  slots, so the free list needs no locks; the master (or any reader)
  only maps slots it was handed descriptors for;
* **generation tags** — every slot carries a generation counter bumped
  on release; a descriptor whose generation no longer matches names a
  recycled slot and raises :class:`StaleChunkError` instead of silently
  aliasing a newer chunk;
* **epoch counters** — ``Chunk.replace_frame()`` (ipsec encap/decap
  growing a frame) detaches frames from the packed store; the chunk
  bumps its slot's epoch so any descriptor still in flight is
  invalidated, and the next boundary crossing goes through the
  copy-on-grow escape: :meth:`ShmChunkPool.ensure_packed` repacks the
  live frames into a fresh slot.

This module and :mod:`repro.obs.shm` are the only places allowed to
call ``SharedMemory(...)`` directly — reprolint RL012 enforces that
every other segment user goes through a managed helper with paired
``close()``/``unlink()``.
"""

from __future__ import annotations

import gc
from typing import Dict, List, NamedTuple, Optional

import numpy as np
from multiprocessing import shared_memory

from repro.core.chunk import Chunk
from repro.obs import get_registry, names
from repro.obs.shm import _tracker_token, _untrack

MAGIC = 0x5053_4348_504C  # "PSCHPL" as the low 6 bytes
VERSION = 1

_HEADER_WORDS = 8
_HEADER_BYTES = _HEADER_WORDS * 8
(_H_MAGIC, _H_VERSION, _H_NSLOTS, _H_SLOT_BYTES, _H_TRACKER) = range(5)

_SLOT_HDR_WORDS = 4
_SLOT_HDR_BYTES = _SLOT_HDR_WORDS * 8
(_S_GENERATION, _S_EPOCH, _S_USED) = range(3)

#: Default pool geometry: enough slots to keep a worker's whole
#: in-flight window (master queue depth) shm-backed, each slot sized
#: for a full chunk of MTU frames.
DEFAULT_SLOTS = 32
DEFAULT_SLOT_BYTES = 512 * 1024


class StaleChunkError(RuntimeError):
    """A descriptor named a slot that was recycled or invalidated."""


class ChunkShmRef(NamedTuple):
    """The boundary-crossing descriptor of one shm-backed chunk store.

    Offsets/lengths travel in the chunk's own pickled state; the ref
    pins *where* the packed bytes live and *which incarnation* of the
    slot they belong to.
    """

    segment: str
    slot: int
    generation: int
    epoch: int
    length: int


def pool_name(session: str, worker_id: int) -> str:
    """The canonical chunk-pool segment name for one worker."""
    return f"{session}-pool{worker_id}"


class ShmChunkPool:
    """One worker's fixed-slot chunk store (see module docstring)."""

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool,
                 allocator: bool) -> None:
        self._shm = shm
        self.owner = owner
        self.allocator = allocator
        self.name = shm.name
        self._header = np.ndarray((_HEADER_WORDS,), dtype="<i8",
                                  buffer=shm.buf)
        if int(self._header[_H_MAGIC]) != MAGIC:
            raise ValueError(f"segment {shm.name!r} is not a chunk pool")
        if int(self._header[_H_VERSION]) != VERSION:
            raise ValueError(
                f"pool {shm.name!r}: layout version "
                f"{int(self._header[_H_VERSION])} != {VERSION}"
            )
        self.nslots = int(self._header[_H_NSLOTS])
        self.slot_bytes = int(self._header[_H_SLOT_BYTES])
        self._slot_headers = np.ndarray(
            (self.nslots, _SLOT_HDR_WORDS), dtype="<i8", buffer=shm.buf,
            offset=_HEADER_BYTES,
        )
        self._data_off = _HEADER_BYTES + self.nslots * _SLOT_HDR_BYTES
        #: Allocator-side free list (slot indices); meaningless in
        #: reader attachments.
        self._free: List[int] = list(range(self.nslots)) if allocator else []
        registry = get_registry()
        self._g_slots_used = registry.gauge(
            names.SHARD_POOL_SLOTS_USED,
            help="chunk-pool slots currently holding a live chunk",
        )
        self._m_fallbacks = registry.counter(
            names.SHARD_POOL_FALLBACKS,
            help="chunks that crossed a process boundary as byte copies "
            "(pool exhausted or frames larger than a slot)",
        )
        self._m_repacks = registry.counter(
            names.SHARD_POOL_REPACKS,
            help="copy-on-grow escapes: chunks repacked into a fresh slot "
            "after replace_frame() detached their store",
        )

    # -- segment lifecycle ---------------------------------------------

    @classmethod
    def create(cls, name: str, slots: int = DEFAULT_SLOTS,
               slot_bytes: int = DEFAULT_SLOT_BYTES,
               allocator: bool = False) -> "ShmChunkPool":
        """Allocate and initialise a pool segment.

        The sharded plane's parent creates pools with
        ``allocator=False`` (it only owns the segment lifecycle); the
        worker that packs chunks re-attaches with ``allocator=True``.
        Single-process users (tests, the in-process differential mode)
        create with ``allocator=True`` directly.
        """
        if slots < 1 or slot_bytes < 64:
            raise ValueError("pool needs >= 1 slot of >= 64 bytes")
        nbytes = _HEADER_BYTES + slots * _SLOT_HDR_BYTES + slots * slot_bytes
        shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        header = np.ndarray((_HEADER_WORDS,), dtype="<i8", buffer=shm.buf)
        header[:] = 0
        header[_H_VERSION] = VERSION
        header[_H_NSLOTS] = slots
        header[_H_SLOT_BYTES] = slot_bytes
        header[_H_TRACKER] = _tracker_token()
        slot_headers = np.ndarray((slots, _SLOT_HDR_WORDS), dtype="<i8",
                                  buffer=shm.buf, offset=_HEADER_BYTES)
        slot_headers[:] = 0
        slot_headers[:, _S_GENERATION] = 1
        # Magic last: an attacher racing create sees not-a-pool, never a
        # half-initialised header (same publish order as MetricSlab).
        header[_H_MAGIC] = MAGIC
        del header
        pool = cls(shm, owner=True, allocator=allocator)
        _ATTACHED[name] = pool
        return pool

    @classmethod
    def attach(cls, name: str, allocator: bool = False) -> "ShmChunkPool":
        """Map an existing pool; ``allocator=True`` in the owning worker."""
        shm = shared_memory.SharedMemory(name=name)
        pool = cls(shm, owner=False, allocator=allocator)
        if _tracker_token() != int(pool._header[_H_TRACKER]):
            _untrack(shm)
        _ATTACHED[name] = pool
        return pool

    def close(self) -> None:
        """Drop this process's mapping (the segment survives)."""
        _ATTACHED.pop(self.name, None)
        # Release numpy views into the buffer before closing the map,
        # and collect dead chunks so their frame views release too
        # (finished chunks are garbage by now, but not yet collected).
        self._header = None
        self._slot_headers = None
        gc.collect()
        try:
            self._shm.close()
        except BufferError:
            # A chunk still holds a memoryview into the segment; leave
            # the mapping to process exit rather than crash the drain.
            pass

    def unlink(self) -> None:
        """Destroy the segment (creator-side, after every close)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    # -- slot allocation (allocator side only) -------------------------

    @property
    def free_slots(self) -> int:
        return len(self._free)

    @property
    def fallback_count(self) -> int:
        """Fallbacks this pool has counted: RX-edge heap builds plus
        :meth:`ensure_packed` escapes (the boundary byte-copy tally)."""
        return int(self._m_fallbacks.value)

    def _require_allocator(self) -> None:
        if not self.allocator:
            raise RuntimeError(
                f"pool {self.name!r}: only the owning worker allocates slots"
            )

    def acquire(self) -> Optional[int]:
        """Claim a free slot (None when exhausted)."""
        self._require_allocator()
        if not self._free:
            return None
        slot = self._free.pop()
        self._g_slots_used.set(self.nslots - len(self._free))
        return slot

    def release(self, ref: ChunkShmRef) -> None:
        """Recycle a slot: bump its generation, return it to the pool.

        The generation bump is what makes recycling safe — any
        descriptor still naming the old incarnation now fails
        validation instead of aliasing the next chunk's bytes.
        """
        self._require_allocator()
        header = self._slot_headers[ref.slot]
        if int(header[_S_GENERATION]) != ref.generation:
            raise StaleChunkError(
                f"pool {self.name!r} slot {ref.slot}: release of "
                f"generation {ref.generation}, live generation "
                f"{int(header[_S_GENERATION])}"
            )
        header[_S_GENERATION] = ref.generation + 1
        header[_S_USED] = 0
        self._give_back(ref.slot)

    def _give_back(self, slot: int) -> None:
        """Return a slot to the free list, keeping the gauge honest."""
        self._free.append(slot)
        self._g_slots_used.set(self.nslots - len(self._free))

    # -- chunk binding --------------------------------------------------

    def slot_view(self, slot: int) -> memoryview:
        """Writable view of one slot's full data region."""
        start = self._data_off + slot * self.slot_bytes
        return self._shm.buf[start:start + self.slot_bytes]

    def view(self, ref: ChunkShmRef) -> memoryview:
        """Validated, writable view of a descriptor's packed bytes."""
        if not 0 <= ref.slot < self.nslots:
            raise StaleChunkError(
                f"pool {self.name!r}: slot {ref.slot} out of range"
            )
        header = self._slot_headers[ref.slot]
        if int(header[_S_GENERATION]) != ref.generation:
            raise StaleChunkError(
                f"pool {self.name!r} slot {ref.slot}: descriptor "
                f"generation {ref.generation} != live "
                f"{int(header[_S_GENERATION])} (slot recycled)"
            )
        if int(header[_S_EPOCH]) != ref.epoch:
            raise StaleChunkError(
                f"pool {self.name!r} slot {ref.slot}: descriptor epoch "
                f"{ref.epoch} != live {int(header[_S_EPOCH])} "
                f"(replace_frame invalidated the store)"
            )
        return self.slot_view(ref.slot)[:ref.length]

    def _bind(self, chunk: Chunk, slot: int, length: int) -> ChunkShmRef:
        header = self._slot_headers[slot]
        header[_S_USED] = length
        ref = ChunkShmRef(
            segment=self.name,
            slot=slot,
            generation=int(header[_S_GENERATION]),
            epoch=int(header[_S_EPOCH]),
            length=length,
        )
        chunk._shm = ref
        return ref

    def build_chunk(self, frames, **kwargs) -> Chunk:
        """Build a chunk whose backing store is a pool slot.

        The RX-edge pack lands the frames directly in shared memory —
        the only byte copy of the chunk's life.  Falls back to a plain
        heap-backed chunk (counted) when the pool is exhausted or the
        frames outgrow a slot.
        """
        slot = self.acquire() if self.allocator else None
        if slot is None:
            self._m_fallbacks.inc()
            return Chunk(frames, **kwargs)
        try:
            chunk = Chunk(frames, store_into=self.slot_view(slot), **kwargs)
        except ValueError:
            self._give_back(slot)
            self._m_fallbacks.inc()
            return Chunk(frames, **kwargs)
        self._bind(chunk, slot, chunk.packed_nbytes())
        return chunk

    def ensure_packed(self, chunk: Chunk) -> bool:
        """Make a chunk boundary-ready: shm-backed and packed.

        Three cases:

        * already shm-backed and packed — nothing to do;
        * heap-backed — adopt: pack the frames into a fresh slot;
        * shm-backed but detached (``replace_frame`` ran) — the
          copy-on-grow escape: repack into a fresh slot and recycle the
          invalidated one.

        Returns False (and counts a fallback) when no slot fits; the
        chunk then pickles through the owned-bytes path.
        """
        ref = chunk.shm_ref
        if ref is not None and chunk.is_packed:
            return True
        total = sum(map(len, chunk.frames))
        slot = self.acquire() if self.allocator else None
        if slot is None or total > self.slot_bytes:
            if slot is not None:
                self._give_back(slot)
            if ref is not None and ref.segment == self.name and self.allocator:
                # The chunk now pickles through the loose-frames path
                # with _shm=None, so the clone that comes back makes
                # recycle() a no-op — free the detached store's slot
                # here or it leaks for the rest of the run.
                self.release(ref)
                chunk._shm = None
            self._m_fallbacks.inc()
            return False
        if ref is not None:
            # Copy-on-grow: the old slot's epoch was already bumped by
            # replace_frame(); recycle it under the bumped descriptor.
            self._m_repacks.inc()
            self.release(ref._replace(epoch=ref.epoch))
        chunk.repack_into(self.slot_view(slot))
        self._bind(chunk, slot, chunk.packed_nbytes())
        return True

    def recycle(self, chunk: Chunk) -> None:
        """Release a finished chunk's slot (post-shade, after egress)."""
        ref = chunk.shm_ref
        if ref is None or ref.segment != self.name:
            return
        self.release(ref)
        chunk._shm = None


#: Process-local attach cache: segment name -> mapped pool.  Fed by
#: create/attach; consulted (and lazily extended) by descriptor
#: resolution so ``pickle.loads`` on the far side of a queue finds the
#: mapping without threading a pool handle through every call site.
# Per-process divergence is the point: each process maps its own view
# of the segment, and fork children re-attach over inherited entries.
_ATTACHED: Dict[str, ShmChunkPool] = {}  # reprolint: ignore[RL008]


def resolve_ref(ref: ChunkShmRef) -> memoryview:
    """Map a descriptor to its packed bytes (attaching if needed)."""
    pool = _ATTACHED.get(ref.segment)
    if pool is None:
        pool = ShmChunkPool.attach(ref.segment)
    return pool.view(ref)


def attached_pool(segment: str) -> Optional[ShmChunkPool]:
    """The process-local mapping of a segment, if one exists."""
    return _ATTACHED.get(segment)


def note_frame_replaced(ref: ChunkShmRef) -> ChunkShmRef:
    """Bump a slot's epoch after ``replace_frame`` detached its store.

    Called by :meth:`repro.core.chunk.Chunk.replace_frame` through a
    lazy import.  The bump invalidates every descriptor of the old
    incarnation still in flight; the returned ref carries the new epoch
    so the local holder can still release the slot.
    """
    pool = _ATTACHED.get(ref.segment)
    if pool is None:
        # Segment already unmapped in this process (teardown order);
        # nothing to invalidate locally.
        return ref
    header = pool._slot_headers[ref.slot]
    if int(header[_S_GENERATION]) != ref.generation:
        # Slot already recycled; the descriptor is stale either way.
        return ref
    header[_S_EPOCH] = ref.epoch + 1
    return ref._replace(epoch=ref.epoch + 1)
