"""``python -m repro run``: drive the sharded data plane from the CLI.

The operational entry point of docs/SHARDING.md: runs a forwarding
workload across N real worker processes (plus the master in this
process), prints the merged report, and exits nonzero when any worker
fails or the merged ingress identity is violated — the CI sharded
smoke job asserts on the exit status alone.

``--workers 1`` still exercises the full cross-process machinery (one
worker, one master, descriptors over queues); ``--inprocess`` runs the
sequential reference decomposition instead, for quick differential
checks without forking.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.shard.plane import PlaneSpec, run_plane, run_plane_inprocess


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro run",
        description="run a forwarding workload on the sharded data plane",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker processes (default 2)",
    )
    parser.add_argument(
        "--app", default="ipv4", choices=("ipv4", "ipv6", "openflow"),
        help="application to run (default ipv4)",
    )
    parser.add_argument(
        "--packets", type=int, default=2048, metavar="N",
        help="frames per ingress burst, pre-partition (default 2048)",
    )
    parser.add_argument(
        "--bursts", type=int, default=4, metavar="N",
        help="ingress bursts (default 4)",
    )
    parser.add_argument("--seed", type=int, default=1, help="workload seed")
    parser.add_argument(
        "--num-routes", type=int, default=5_000, metavar="N",
        help="routing-table size (default 5000)",
    )
    parser.add_argument(
        "--dump-dir", default=None, metavar="DIR",
        help="write per-worker flight-recorder dumps here",
    )
    parser.add_argument(
        "--inprocess", action="store_true",
        help="run the sequential reference decomposition (no forking)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    return parser


def run_main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.workers < 1:
        print("run: --workers must be >= 1", file=sys.stderr)
        return 2
    spec = PlaneSpec(
        app=args.app,
        workers=args.workers,
        packets=args.packets,
        bursts=args.bursts,
        seed=args.seed,
        num_routes=args.num_routes,
        dump_dir=args.dump_dir,
    )
    report = (
        run_plane_inprocess(spec) if args.inprocess else run_plane(spec)
    )
    failed = [
        w.worker_id for w in report.workers if w.exitcode not in (0, None)
    ] + [
        w.worker_id for w in report.workers if w.exitcode is None
    ]
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        mode = "in-process" if args.inprocess else "multi-process"
        print(f"repro run — {args.app} on {args.workers} shards ({mode})")
        print(
            f"  injected {report.injected}  received {report.received}  "
            f"forwarded {report.forwarded}  dropped {report.dropped}  "
            f"slow-path {report.slow_path}"
        )
        for worker in report.workers:
            print(
                f"  worker {worker.worker_id}: received {worker.received}  "
                f"forwarded {worker.forwarded}  chunks {worker.chunks}  "
                f"exit {worker.exitcode}"
            )
        print(
            f"  master batches {report.master_batches}  "
            f"chunks {report.master_chunks}  "
            f"shm fallbacks {report.shm_fallbacks}"
        )
        print(
            "  conservation "
            + ("OK" if report.conservation_ok else "VIOLATED")
        )
    if failed:
        print(f"run: workers failed: {sorted(set(failed))}", file=sys.stderr)
        return 1
    if not report.conservation_ok:
        print("run: merged ingress identity violated", file=sys.stderr)
        return 1
    return 0
