"""The sharded data plane: real OS processes over shared-memory chunks.

PacketShader scales by splitting each NUMA node into worker threads
(own the RX/TX queues, run pre-/post-shading) and one master thread
(batches GPU offload) — Figure 8/9.  Earlier PRs reproduced that split
*inside* one Python process; this package makes it real: one worker
**process** per shard running the io_engine + shading pipeline over its
RSS-assigned flows, and a master process that gathers chunks, batches
GPU work, and scatters results.

Chunks cross the process boundary as small ``(segment, slot,
generation, epoch, offsets)`` descriptors over ``multiprocessing``
queues — the frame bytes live in a :class:`~repro.shard.pool.ShmChunkPool`
slot and are never copied through the queue (docs/SHARDING.md).

Public surface:

* :class:`repro.shard.pool.ShmChunkPool` — fixed-slot shm chunk store
  with generation-tagged recycling and per-slot epoch counters;
* :class:`repro.shard.plane.ShardedDataPlane` — the worker/master
  process topology (``python -m repro run --workers N``);
* :func:`repro.shard.plane.run_plane` — one-call forwarding run
  returning the merged summary.
"""

from repro.shard.pool import ChunkShmRef, ShmChunkPool, StaleChunkError

__all__ = [
    "ChunkShmRef",
    "ShmChunkPool",
    "StaleChunkError",
]
