"""The sharded data plane: N worker processes + one master process.

The paper's Figure 9 collaboration lifted onto real OS processes
(docs/SHARDING.md): each worker process runs the full worker side of
the pipeline — RX chunking, pre-shading, post-shading — over the flows
RSS assigns to its shard (:class:`repro.io_engine.rss.ShardMap`), and
the master process (the parent) gathers pre-shaded chunks from all
workers, batches the GPU launches, and scatters results back to each
worker's private result queue.

Chunks cross the process boundaries as shared-memory descriptors, not
byte copies: every worker packs its RX frames straight into its
:class:`~repro.shard.pool.ShmChunkPool` slots, so a queue handoff
pickles to a :class:`~repro.shard.pool.ChunkShmRef` plus the SoA
verdict columns.  The only payload bytes that travel by value are the
GPU input/output arrays — exactly the gather/scatter copies the real
router makes over PCIe.

Topology and protocol:

* the parent creates every shared segment up front (metric slabs,
  chunk pools) and owns their unlink — the PR 9 fleet lifecycle;
* one shared ``submit_queue`` carries chunks worker -> master (the
  paper's fairness FIFO), per-worker ``result_queues`` carry them back
  (the scatter side's 1-to-1 queues);
* each worker regenerates the *full* deterministic ingress stream from
  the spec's seed and keeps only its shard's frames — the software
  analogue of every RSS engine hashing every arriving packet;
* a worker signals completion with a ``("done", worker_id)`` sentinel
  after a blocking transport flush, then reports its totals on the
  report queue; the master exits once every worker is done and the
  submit queue is drained.

:func:`run_plane_inprocess` runs the identical shard decomposition
sequentially in one process — the reference the differential suite
compares the multi-process plane against, packet for packet.
"""

from __future__ import annotations

import multiprocessing
import queue as _stdlib_queue
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional

from repro.calib.constants import SYSTEM
from repro.core.config import RouterConfig
from repro.obs import get_registry, names
from repro.obs.registry import MetricsRegistry
from repro.obs.shm import MetricSlab, aggregate_slabs, slab_name
from repro.shard.pool import DEFAULT_SLOT_BYTES, ShmChunkPool, pool_name


@dataclass
class PlaneSpec:
    """One sharded run — plain data, picklable across spawn (RL010)."""

    app: str = "ipv4"
    workers: int = 2
    #: Frames per ingress burst (the full stream, pre-partition).
    packets: int = 2048
    bursts: int = 4
    seed: int = 1
    num_routes: int = 5_000
    frame_len: int = 0  # 0 = the app's natural default (64 / 78)
    pool_slots: int = 32
    pool_slot_bytes: int = DEFAULT_SLOT_BYTES
    dump_dir: Optional[str] = None


@dataclass
class WorkerReport:
    """One worker's end-of-run totals (plain data over the report queue)."""

    worker_id: int
    received: int = 0
    forwarded: int = 0
    dropped: int = 0
    slow_path: int = 0
    chunks: int = 0
    gpu_launches: int = 0
    #: port -> egress frame count (the observable output of the shard).
    egress: Dict[int, int] = field(default_factory=dict)
    #: Chunks that crossed the boundary as byte copies (pool fallback).
    shm_fallbacks: int = 0
    exitcode: Optional[int] = None


@dataclass
class PlaneReport:
    """The merged view of one sharded run."""

    spec: PlaneSpec
    workers: List[WorkerReport]
    injected: int = 0
    master_batches: int = 0
    master_chunks: int = 0

    @property
    def received(self) -> int:
        return sum(w.received for w in self.workers)

    @property
    def forwarded(self) -> int:
        return sum(w.forwarded for w in self.workers)

    @property
    def dropped(self) -> int:
        return sum(w.dropped for w in self.workers)

    @property
    def slow_path(self) -> int:
        return sum(w.slow_path for w in self.workers)

    @property
    def shm_fallbacks(self) -> int:
        return sum(w.shm_fallbacks for w in self.workers)

    @property
    def conservation_ok(self) -> bool:
        """The merged ingress identity: every injected frame is
        accounted exactly once across every shard."""
        return (
            self.injected == self.received
            and self.received
            == self.forwarded + self.dropped + self.slow_path
        )

    def egress_totals(self) -> Dict[int, int]:
        totals: Dict[int, int] = {}
        for report in self.workers:
            for port, count in report.egress.items():
                totals[port] = totals.get(port, 0) + count
        return totals

    def verdict_totals(self) -> Dict[str, int]:
        return {
            "received": self.received,
            "forwarded": self.forwarded,
            "dropped": self.dropped,
            "slow_path": self.slow_path,
        }

    def to_dict(self) -> dict:
        return {
            "spec": asdict(self.spec),
            "injected": self.injected,
            "totals": self.verdict_totals(),
            "egress": {str(p): c for p, c in sorted(self.egress_totals().items())},
            "conservation_ok": self.conservation_ok,
            "master_batches": self.master_batches,
            "master_chunks": self.master_chunks,
            "shm_fallbacks": self.shm_fallbacks,
            "workers": [asdict(w) for w in self.workers],
        }


def scatter_chunk(result_queue, chunk) -> None:
    """Scatter one shaded chunk back to its worker's result queue.

    ``multiprocessing.Queue.put`` serializes in a background feeder
    thread, so the chunk must not be mutated after ``put()`` unless
    its pickle form is independent of the mutated fields.  Shm-backed
    packed chunks pickle as descriptors — for those (and only those)
    the master drops its aliasing views into the shared slot, so the
    worker can recycle the slot and the master's pool mapping can
    close without a ``BufferError``.  Heap and loose-frame chunks are
    serialized *from* ``frames``/``_frame_store``; clearing them here
    would race the pickle and silently ship empty frames.
    """
    result_queue.put(chunk)
    if chunk.shm_ref is not None and chunk.is_packed:
        chunk.frames = []
        chunk._frame_store = b""


def _worker_config() -> RouterConfig:
    """Each worker process is exactly one logical worker of one node.

    The process *is* the paper's worker thread; parallelism comes from
    the OS scheduler, not from the in-process cooperative stepping, so
    the embedded framework is told it owns a single worker core.
    """
    return RouterConfig(
        use_gpu=True,
        system=replace(
            SYSTEM, num_nodes=1, workers_per_node_gpu_mode=1,
            masters_per_node=1,
        ),
    )


def _build_app(spec: PlaneSpec):
    """(application, burst function) for a spec — deterministic in seed.

    Every worker calls this with the *same* seed: identical tables,
    identical full frame stream.  Per-shard traffic comes from the
    ShardMap partition, never from per-worker seeds, so the union of
    all shards is exactly the unsharded stream.
    """
    if spec.app == "ipv6":
        from repro.apps.ipv6 import IPv6Forwarder
        from repro.gen.workloads import ipv6_workload

        workload = ipv6_workload(num_routes=spec.num_routes, seed=spec.seed)
        frame_len = spec.frame_len or 78
        return (
            IPv6Forwarder(workload.table),
            lambda: workload.generator.ipv6_burst(spec.packets, frame_len),
        )
    if spec.app == "openflow":
        from repro.apps.openflow import OpenFlowApp
        from repro.gen.workloads import openflow_workload

        workload = openflow_workload(
            num_exact=2048, num_wildcard=32, seed=spec.seed
        )
        frame_len = spec.frame_len or 64
        return (
            OpenFlowApp(workload.switch),
            lambda: workload.generator.ipv4_burst(spec.packets, frame_len),
        )
    if spec.app == "ipv4":
        from repro.apps.ipv4 import IPv4Forwarder
        from repro.gen.workloads import ipv4_workload

        workload = ipv4_workload(num_routes=spec.num_routes, seed=spec.seed)
        frame_len = spec.frame_len or 64
        return (
            IPv4Forwarder(workload.table),
            lambda: workload.generator.ipv4_burst(spec.packets, frame_len),
        )
    raise ValueError(f"unknown app {spec.app!r}")


def shard_bursts(spec: PlaneSpec, shard: int) -> List[List[bytearray]]:
    """One shard's sub-stream: the full stream, RSS-partitioned.

    A single :class:`ShardMap` persists across bursts so the
    round-robin fallback for unhashable frames stays globally
    deterministic — re-partitioning the same stream always lands every
    frame on the same shard.
    """
    from repro.io_engine.rss import ShardMap

    _, burst_fn = _build_app(spec)
    shard_map = ShardMap(spec.workers)
    own: List[List[bytearray]] = []
    for _ in range(spec.bursts):
        own.append(shard_map.partition(burst_fn())[shard])
    return own


def _pool_chunks(router, pool: ShmChunkPool, frames, worker_id: int):
    """RX edge of one burst: pack frames straight into pool slots."""
    cap = router.effective_chunk_capacity()
    return [
        pool.build_chunk(frames[start:start + cap], worker_id=worker_id)
        for start in range(0, len(frames), cap)
    ]


def _plane_worker_main(session: str, worker_id: int, spec: PlaneSpec,
                       submit_queue, result_queue, report_queue) -> None:
    """One worker process: obs stack, pool, router, bursts, report."""
    from repro.core.framework import PacketShader
    from repro.core.queues import RemoteMasterClient
    from repro.obs import reset_profiler, reset_tracer, set_registry
    from repro.obs.flightrec import FlightRecorder, set_flightrec
    from repro.obs.shm import ShmMetricsRegistry

    slab = MetricSlab.attach(slab_name(session, worker_id))
    set_registry(ShmMetricsRegistry(slab))
    reset_tracer()
    recorder = FlightRecorder(writer_id=worker_id)
    set_flightrec(recorder)
    reset_profiler()
    pool = ShmChunkPool.attach(pool_name(session, worker_id), allocator=True)
    app, _ = _build_app(spec)
    transport = RemoteMasterClient(
        submit_queue, result_queue, worker_id,
        max_in_flight=pool.nslots, pool=pool,
    )
    router = PacketShader(app, config=_worker_config(), transport=transport)
    egress_counts: Dict[int, int] = {}
    for burst in shard_bursts(spec, worker_id):
        chunks = _pool_chunks(router, pool, burst, worker_id)
        for port, frames in router.process_chunks(chunks).items():
            egress_counts[port] = egress_counts.get(port, 0) + len(frames)
        # Release this burst's slot views before the next pack round
        # (the submitted originals are dead; their clones came back).
        chunks = None
    tail: Dict[int, List[bytearray]] = {}
    router.flush_transport(tail)
    for port, frames in tail.items():
        egress_counts[port] = egress_counts.get(port, 0) + len(frames)
    transport.finish()
    report_queue.put(WorkerReport(
        worker_id=worker_id,
        received=router.stats.received,
        forwarded=router.stats.forwarded,
        dropped=router.stats.dropped,
        slow_path=router.stats.slow_path,
        chunks=router.stats.chunks,
        gpu_launches=router.stats.gpu_launches,
        egress=egress_counts,
        # The pool's own tally, so RX-edge heap builds and later
        # ensure_packed escapes in submit() both count — the report
        # agrees with the SHARD_POOL_FALLBACKS metric exactly.
        shm_fallbacks=pool.fallback_count,
    ))
    if spec.dump_dir:
        recorder.dump(
            Path(spec.dump_dir) / f"flightrec-w{worker_id}.jsonl",
            reason=f"shard-worker-{worker_id}",
        )
    pool.close()
    slab.close()


class ShardedDataPlane:
    """Supervises one sharded run: segments, workers, the master loop.

    Usable as a context manager; exit joins workers and unlinks every
    shared segment.  :meth:`run` is the whole lifecycle in one call.
    """

    #: Seconds of master-side silence that mean a worker died.
    MASTER_TIMEOUT = 60.0

    def __init__(self, spec: PlaneSpec,
                 session: Optional[str] = None,
                 start_method: Optional[str] = None) -> None:
        if spec.workers < 1:
            raise ValueError("workers must be >= 1")
        self.spec = spec
        from repro.obs.multiproc import worker_session

        self.session = session or worker_session("repro-shard")
        methods = multiprocessing.get_all_start_methods()
        method = start_method or ("fork" if "fork" in methods else "spawn")
        self._ctx = multiprocessing.get_context(method)
        # The parent creates (and so owns) every segment up front.
        self.slabs: List[MetricSlab] = [
            MetricSlab.create(slab_name(self.session, wid), writer_id=wid)
            for wid in range(spec.workers)
        ]
        self.pools: List[ShmChunkPool] = [
            ShmChunkPool.create(
                pool_name(self.session, wid),
                slots=spec.pool_slots, slot_bytes=spec.pool_slot_bytes,
            )
            for wid in range(spec.workers)
        ]
        self.submit_queue = self._ctx.Queue()
        self.result_queues = [self._ctx.Queue() for _ in range(spec.workers)]
        self.report_queue = self._ctx.Queue()
        self.procs: List = []
        registry = get_registry()
        self._m_batches = registry.counter(
            names.SHARD_MASTER_BATCHES,
            help="gather batches the master launched",
        )
        self._m_chunks = registry.counter(
            names.SHARD_MASTER_CHUNKS,
            help="chunks the master gathered across all workers",
        )

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        if self.procs:
            raise RuntimeError("plane already started")
        if self.spec.dump_dir:
            Path(self.spec.dump_dir).mkdir(parents=True, exist_ok=True)
        for wid in range(self.spec.workers):
            proc = self._ctx.Process(
                target=_plane_worker_main,
                args=(self.session, wid, self.spec, self.submit_queue,
                      self.result_queues[wid], self.report_queue),
                name=f"repro-shard-{wid}",
                daemon=True,
            )
            proc.start()
            self.procs.append(proc)

    def serve_master(self) -> None:
        """The master loop: gather, launch, scatter, until all done.

        Runs in the parent.  Gathering is opportunistic — one blocking
        get, then whatever else is already queued up to the configured
        gather width — so GPU batching adapts to load exactly like the
        in-process master's ``get_batch``.
        """
        from repro.hw.gpu import GPUDevice

        device = GPUDevice(device_id=0, node=0)
        # The master's own application instance plays the role of GPU
        # device memory: kernels arrive stripped of their callables
        # (GPUWorkItem.__getstate__) and rebind against the tables held
        # here — identical copies, built from the same seed.
        app, _ = _build_app(self.spec)
        gather = _worker_config().effective_gather_chunks()
        done: set = set()
        while len(done) < self.spec.workers:
            batch = []
            try:
                item = self.submit_queue.get(timeout=self.MASTER_TIMEOUT)
            except _stdlib_queue.Empty:
                dead = [
                    f"{proc.name} (exitcode {proc.exitcode})"
                    for proc in self.procs
                    if proc.exitcode is not None
                ]
                detail = (
                    f"dead worker(s): {', '.join(dead)}"
                    if dead else "all workers still alive but silent"
                )
                raise RuntimeError(
                    f"master: no chunk or done sentinel for "
                    f"{self.MASTER_TIMEOUT:.0f}s with {len(done)}/"
                    f"{self.spec.workers} workers done; {detail}"
                ) from None
            while True:
                if isinstance(item, tuple) and item and item[0] == "done":
                    done.add(item[1])
                else:
                    batch.append(item)
                if len(batch) >= gather or len(done) >= self.spec.workers:
                    break
                try:
                    item = self.submit_queue.get_nowait()
                except _stdlib_queue.Empty:
                    break
            if not batch:
                continue
            self._m_batches.inc()
            self._m_chunks.inc(len(batch))
            for chunk in batch:
                work = chunk.gpu_input
                if work is None:
                    chunk.gpu_output = None
                else:
                    app.bind_kernel(work)
                    result = work.launch_on(device)
                    chunk.gpu_output = result.output
                    chunk.service_ns += result.total_ns
                scatter_chunk(self.result_queues[chunk.worker_id], chunk)

    def collect(self) -> PlaneReport:
        """Join workers and assemble the merged report."""
        reports: Dict[int, WorkerReport] = {}
        for _ in range(self.spec.workers):
            try:
                report = self.report_queue.get(timeout=self.MASTER_TIMEOUT)
            except _stdlib_queue.Empty:
                break
            reports[report.worker_id] = report
        for proc in self.procs:
            proc.join(timeout=10.0)
        for wid, proc in enumerate(self.procs):
            report = reports.setdefault(wid, WorkerReport(worker_id=wid))
            report.exitcode = proc.exitcode
        return PlaneReport(
            spec=self.spec,
            workers=[reports[wid] for wid in sorted(reports)],
            injected=self.spec.bursts * self.spec.packets,
            master_batches=int(self._m_batches.value),
            master_chunks=int(self._m_chunks.value),
        )

    def aggregate(self, into: Optional[MetricsRegistry] = None) -> MetricsRegistry:
        """All worker slabs merged into one registry snapshot."""
        return aggregate_slabs(self.slabs, into=into)

    def close(self) -> None:
        """Destroy every shared segment (parent owns them all)."""
        for pool in self.pools:
            pool.close()
            pool.unlink()
        for slab in self.slabs:
            slab.unlink()
            slab.close()

    def __enter__(self) -> "ShardedDataPlane":
        return self

    def __exit__(self, *exc) -> None:
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self.procs:
            proc.join(timeout=5.0)
        self.close()

    def run(self) -> PlaneReport:
        """start -> serve the master -> collect, as one call."""
        self.start()
        self.serve_master()
        return self.collect()


def run_plane(spec: PlaneSpec, **kwargs) -> PlaneReport:
    """Run one sharded plane end to end (segments cleaned up)."""
    with ShardedDataPlane(spec, **kwargs) as plane:
        return plane.run()


def run_plane_inprocess(spec: PlaneSpec) -> PlaneReport:
    """The sequential reference: same shards, one process, no queues.

    Runs each shard's exact sub-stream through its own single-worker
    router, one shard after another.  The differential suite asserts
    the multi-process plane matches this packet for packet — same
    verdict totals, same per-port egress counts.
    """
    from repro.core.framework import PacketShader

    reports: List[WorkerReport] = []
    for wid in range(spec.workers):
        app, _ = _build_app(spec)
        router = PacketShader(app, config=_worker_config())
        egress_counts: Dict[int, int] = {}
        for burst in shard_bursts(spec, wid):
            for port, frames in router.process_frames(burst).items():
                egress_counts[port] = egress_counts.get(port, 0) + len(frames)
        reports.append(WorkerReport(
            worker_id=wid,
            received=router.stats.received,
            forwarded=router.stats.forwarded,
            dropped=router.stats.dropped,
            slow_path=router.stats.slow_path,
            chunks=router.stats.chunks,
            gpu_launches=router.stats.gpu_launches,
            egress=egress_counts,
            exitcode=0,
        ))
    return PlaneReport(
        spec=spec,
        workers=reports,
        injected=spec.bursts * spec.packets,
    )
