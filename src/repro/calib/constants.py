"""Fitted constants of the performance model.

Organisation: one frozen dataclass per hardware/software subsystem, plus the
module-level default instances the rest of the library imports.  Each field
cites the paper anchor it reproduces.  The defaults model the paper's test
system (Table 2): 2x Intel Xeon X5550 (Nehalem, 4 cores, 2.66 GHz), 12 GB
DDR3-1333, 2x NVIDIA GTX480, 4x Intel 82599 dual-port 10 GbE, dual Intel
5520 IOH motherboard.

Units: times in nanoseconds, rates in bytes/second unless stated otherwise.
Throughputs follow the paper's convention of charging 24 B Ethernet overhead
per frame (paper footnote 1).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CPUModel:
    """An Intel Xeon X5550 socket (paper Table 2 and Section 2.4)."""

    #: Core clock, Hz.  Table 2: 2.66 GHz.
    clock_hz: float = 2.66e9
    #: Cores per socket.  Table 2: quad-core.
    cores: int = 4
    #: DRAM access latency from a core to its local node, ns.  Typical
    #: Nehalem local-node latency; consistent with the paper's observation
    #: that 7 dependent accesses dominate IPv6 lookup.
    dram_latency_ns: float = 60.0
    #: Node-crossing latency penalty.  Section 4.5: "40-50% increased
    #: access time" — we use the midpoint.
    remote_latency_factor: float = 1.45
    #: Node-crossing bandwidth penalty.  Section 4.5: "20-30% lower
    #: bandwidth" — midpoint.
    remote_bandwidth_factor: float = 0.75
    #: Peak memory bandwidth per socket, B/s.  Section 2.4: 32 GB/s.
    mem_bandwidth: float = 32e9
    #: Maximum outstanding cache misses for a single busy core.
    #: Section 2.4: "about 6 outstanding cache misses in the optimal case".
    mshr_single_core: int = 6
    #: Outstanding misses per core when all four cores burst references.
    #: Section 2.4: "only 4 misses when all four cores burst".
    mshr_all_cores: int = 4
    #: Cache line size, bytes (x86; Sections 2.4 and 4.4).
    cache_line: int = 64

    @property
    def cycle_ns(self) -> float:
        """Duration of one core cycle in ns."""
        return 1e9 / self.clock_hz

    def cycles(self, ns: float) -> float:
        """Convert a duration in ns to core cycles."""
        return ns * self.clock_hz / 1e9


@dataclass(frozen=True)
class GPUModel:
    """An NVIDIA GTX480 (paper Section 2.1, Figure 1)."""

    #: Streaming multiprocessors.  Figure 1: 15 SMs.
    num_sms: int = 15
    #: Stream processors per SM.  Figure 1: 32 SPs -> 480 cores total.
    sps_per_sm: int = 32
    #: Shader clock, Hz.  Table 2: 1.4 GHz.
    clock_hz: float = 1.4e9
    #: Threads per warp (Section 2.1).
    warp_size: int = 32
    #: Resident warps an SM scheduler holds (Section 2.1: "up to 32 warps").
    max_warps_per_sm: int = 32
    #: Device memory size, bytes.  Table 2: 1.5 GB.
    device_memory: int = 1536 * 1024 * 1024
    #: Device memory bandwidth, B/s.  Section 2.4: 177.4 GB/s.
    mem_bandwidth: float = 177.4e9
    #: Device memory access latency, in shader cycles.  Fermi global-memory
    #: latency is ~400-800 cycles; 600 is the conventional midpoint.
    mem_latency_cycles: float = 600.0
    #: Memory transaction granularity, bytes (Fermi L1 line / coalescing
    #: unit).  Random per-thread accesses each move one such transaction.
    transaction_bytes: int = 128
    #: Kernel launch latency for one thread, ns.  Section 2.2: 3.8 us.
    launch_latency_ns: float = 3800.0
    #: Incremental launch latency per thread, ns.  Section 2.2: 4.1 us at
    #: 4096 threads -> (4100 - 3800) / 4096 = 0.073 ns/thread.
    launch_latency_per_thread_ns: float = 0.073
    #: Per-batch host-side synchronisation / driver / master-thread proxy
    #: overhead, ns.  Fitted so that the Figure 2 IPv6-lookup crossovers
    #: land at ~320 packets (vs. one X5550) and ~640 (vs. two): the region
    #: where per-batch fixed costs dominate GPU throughput.
    sync_overhead_ns: float = 40000.0
    #: Fraction of peak memory bandwidth achievable with scattered
    #: (table-lookup) access patterns.  Fitted so that GPU IPv6 lookup
    #: saturates near 10x one X5550 (Figure 2, "comparable to about ten
    #: X5550 processors").
    scattered_bw_efficiency: float = 0.45

    @property
    def total_cores(self) -> int:
        """Total stream processors (480 for GTX480)."""
        return self.num_sms * self.sps_per_sm

    @property
    def cycle_ns(self) -> float:
        """Duration of one shader cycle in ns."""
        return 1e9 / self.clock_hz


@dataclass(frozen=True)
class PCIeModel:
    """PCIe 2.0 x16 transfer times on the dual-IOH board (paper Table 1).

    The model is ``t(bytes) = fixed_ns + bytes / bandwidth``; the two
    directions differ because of the dual-IOH asymmetry (Section 3.2).
    Fitted to all seven Table 1 columns (within ~12%; see
    benchmarks/test_table1_pcie.py for the side-by-side).
    """

    #: Host-to-device fixed cost per transfer, ns (fits 256 B @ 55 MB/s).
    h2d_fixed_ns: float = 4600.0
    #: Host-to-device streaming bandwidth, B/s (fits 1 MB @ 5577 MB/s).
    h2d_bandwidth: float = 5.8e9
    #: Device-to-host fixed cost per transfer, ns (fits 256 B @ 63 MB/s).
    d2h_fixed_ns: float = 4060.0
    #: Device-to-host streaming bandwidth, B/s (fits 1 MB @ 3394 MB/s;
    #: lower than h2d — this asymmetry *is* the dual-IOH problem).
    d2h_bandwidth: float = 3.6e9


@dataclass(frozen=True)
class IOHModel:
    """Aggregate I/O ceilings of one Intel 5520 IOH (paper Sections 3.2, 4.6).

    The paper concludes the ~40 Gbps forwarding plateau "lies in I/O" and
    blames the dual-IOH board.  We encode the empirically measured ceilings
    per IOH; the system has two.
    """

    #: Device-to-host (NIC RX DMA) ceiling per IOH, wire-Gbps equivalent.
    #: Figure 6: RX-only peaks at 59.9 Gbps over two IOHs.
    rx_ceiling_gbps: float = 30.0
    #: Host-to-device (NIC TX DMA) ceiling per IOH.  Figure 6: TX reaches
    #: 80.0 Gbps over two IOHs (line rate; the IOH is not the TX binding
    #: constraint at large sizes but caps 64 B TX at 79.3).
    tx_ceiling_gbps: float = 40.0
    #: Bidirectional (simultaneous RX+TX) ceiling per IOH.  Figure 6:
    #: minimal forwarding plateaus at 41.1 Gbps @64 B over two IOHs.
    bidir_ceiling_gbps: float = 20.0
    #: Extra 64 B headroom: small frames see slightly *higher* forwarding
    #: (41.1) than large (40.0) in Figure 6; modelled as a small per-frame
    #: bonus that vanishes with size.
    bidir_small_frame_bonus_gbps: float = 0.55
    #: Per-packet DMA descriptor/completion overhead, expressed as
    #: equivalent wire bytes.  Makes RX efficiency size-dependent:
    #: 53.1 Gbps @64 B vs 59.9 @1514 B (Figure 6).
    rx_per_packet_overhead_bytes: float = 11.0
    #: Same for TX; TX descriptors are cheaper (79.3 vs 80.0 Gbps).
    tx_per_packet_overhead_bytes: float = 0.8
    #: Fraction of a GPU PCIe byte that displaces NIC DMA budget on the
    #: shared IOH.  Fitted so IPv4 forwarding drops from 41 to 39 Gbps and
    #: IPv6 to 38.2 when GPU transfers join (Figure 11a/b vs Figure 6).
    gpu_displacement_factor: float = 0.35
    #: Throughput factor for NUMA-blind I/O.  Section 4.5: NUMA-blind
    #: placement limits forwarding below 25 Gbps vs ~40 NUMA-aware (+60%).
    numa_blind_factor: float = 0.61
    #: Throughput factor when all packets cross to the other node's ports.
    #: Figure 6 "node-crossing" bars: still above 40 Gbps, slightly below
    #: the in-node case.
    node_crossing_factor: float = 0.995


@dataclass(frozen=True)
class NICModel:
    """An Intel 82599 10 GbE port (paper Table 2, Section 4)."""

    #: Line rate per port, bits/s.
    line_rate_bps: float = 10e9
    #: RX descriptor ring size (ixgbe default).
    rx_ring_size: int = 1024
    #: TX descriptor ring size.
    tx_ring_size: int = 1024
    #: Maximum interrupt moderation interval, ns.  Causes the elevated
    #: round-trip latency at low offered load in Figure 12 ("interrupt
    #: moderation in NICs [28]"); ixgbe-era bulk ITR of ~125 us.
    interrupt_moderation_ns: float = 125_000.0
    #: Dynamic ITR: the driver retunes the timer toward a target number
    #: of packets per interrupt, so the effective window shrinks as the
    #: per-queue rate grows (ixgbe's adaptive low-latency modes).
    itr_target_packets: float = 16.0
    #: Shortest effective moderation window, ns.
    itr_min_ns: float = 4_000.0
    #: Huge-packet-buffer cell size, bytes.  Section 4.2: 2048 B cells.
    buffer_cell_size: int = 2048
    #: Compact metadata cell size, bytes.  Section 4.2: 8 B (vs 208 B skb).
    metadata_cell_size: int = 8


@dataclass(frozen=True)
class IOEngineCosts:
    """CPU cycle costs of the optimized packet I/O engine (Sections 4.3, 4.6).

    The two anchors are Figure 5's endpoints with one core and two ports:
    batch=1 forwards 0.78 Gbps of 64 B frames (1.108 Mpps -> 2401
    cycles/pkt at 2.66 GHz) and batch=64 forwards 10.5 Gbps (14.91 Mpps ->
    178 cycles/pkt).  A two-term model ``cycles/pkt = per_batch/batch +
    per_packet`` through those anchors gives the constants below.
    """

    #: Cycles charged once per batch: the system call, PCIe register I/O
    #: (doorbell), interrupt handling, and batch bookkeeping.
    per_batch_cycles: float = 2258.0
    #: Cycles charged per packet with all Section 4 optimizations on:
    #: huge-buffer cell recycling, prefetched descriptors+data, the
    #: kernel-to-user copy (paper: copy takes <20% of packet I/O cycles).
    per_packet_cycles: float = 143.0
    #: Per-packet cycles for RX only (receive and drop).  Roughly the
    #: receive half of forwarding.
    rx_only_per_packet_cycles: float = 75.0
    #: Per-packet cycles for TX only.
    tx_only_per_packet_cycles: float = 60.0
    #: Fraction of per-packet cycles spent on the kernel/user copy
    #: (Section 4.3: "less than 20% of CPU cycles out of total packet I/O").
    copy_fraction: float = 0.18
    #: Penalty factor on per-packet cycles without software prefetch
    #: (compulsory cache miss per packet returns: Table 3 shows misses are
    #: 13.8% of the *unoptimized* budget; against the optimized 143-cycle
    #: budget one ~160-cycle miss more than doubles the cost).
    no_prefetch_extra_cycles: float = 160.0
    #: Multi-queue scaling imperfection before the false-sharing and
    #: per-queue-counter fixes of Section 4.4: per-packet cycles grow ~20%
    #: from 1 to 8 cores.  After the fixes scaling is linear (factor 0).
    unaligned_scaling_penalty: float = 0.20


@dataclass(frozen=True)
class LinuxStackCosts:
    """Per-packet cycle costs of the unmodified Linux RX path (Table 3).

    Table 3 gives the *shares*; the absolute scale is set so that an
    unmodified driver is roughly an order of magnitude costlier per packet
    than the optimized engine, consistent with RouteBricks-era numbers
    (~2000+ cycles per packet for kernel-stack RX).
    """

    #: Total per-packet RX cycles for receive-and-drop with skb allocation.
    total_cycles: float = 1200.0
    #: Table 3 shares, by functional bin.
    share_skb_init: float = 0.049
    share_skb_alloc: float = 0.080
    share_memory_subsystem: float = 0.502
    share_nic_driver: float = 0.133
    share_others: float = 0.098
    share_cache_miss: float = 0.138


@dataclass(frozen=True)
class AppCosts:
    """Per-packet CPU cycle costs of the four applications (Section 6.2).

    Lookup costs follow the paper's own accounting: DIR-24-8 is one
    dependent DRAM access (plus TLB pressure on the 32 MB table) for ~97%
    of RouteViews-distributed prefixes; the IPv6 binary search is seven
    dependent probes, each a hash computation plus a likely miss.  Crypto
    costs use SSE-optimized cycles/byte figures of the 2010 era.  The
    CPU-only anchors: IPv4 ~28 Gbps, IPv6 ~8 Gbps, IPsec ~2.9 Gbps at
    64 B with eight workers (Figure 11); the CPU+GPU worker-side anchors:
    39 / 38.2 Gbps with six workers (the pre-/post-shading budget).
    """

    #: Fast-path header work every forwarded packet pays in the worker:
    #: sanity checks, slow-path classification, TTL + checksum update.
    fast_path_header_cycles: float = 45.0
    #: Routing decision / port split after the lookup (CPU-only mode).
    routing_decision_cycles: float = 30.0
    #: One DIR-24-8 lookup on the CPU: a dependent DRAM access over a
    #: 32 MB table, including the TLB miss such a table incurs.
    ipv4_cpu_lookup_cycles: float = 330.0
    #: One IPv6 binary-search probe on the CPU: hash computation plus the
    #: hash-table access (Section 6.2.2: seven per lookup).
    ipv6_cpu_probe_cycles: float = 240.0
    #: Probes per IPv6 lookup (ceil(log2 128)).
    ipv6_probes: int = 7
    #: Extra worker gather cost for 16 B IPv6 addresses vs 4 B IPv4 ones.
    ipv6_gather_extra_cycles: float = 5.0
    #: OpenFlow: extract the 10-field flow key from headers.
    of_extract_cycles: float = 60.0
    #: OpenFlow: hash-value computation over the flow key (CPU-only mode;
    #: offloaded to the GPU in CPU+GPU mode).
    of_hash_cycles: float = 180.0
    #: OpenFlow: exact-match bucket probe, CPU-only mode (a serialized
    #: cache miss).
    of_exact_probe_cpu_cycles: float = 160.0
    #: Same probe in CPU+GPU mode: with the hash precomputed by the GPU
    #: the worker batch-prefetches buckets, overlapping the misses.
    of_exact_probe_gpu_mode_cycles: float = 40.0
    #: OpenFlow: apply the matched action list.
    of_action_cycles: float = 10.0
    #: OpenFlow: compare the key against one wildcard entry (linear
    #: search, CPU-only mode).
    of_wildcard_entry_cycles: float = 14.0
    #: AES-128-CTR with SSE, cycles per byte (pre-AES-NI optimized x86).
    aes_sse_cycles_per_byte: float = 18.0
    #: SHA-1, cycles per byte (optimized x86).
    sha1_cycles_per_byte: float = 13.0
    #: Per-packet ESP overhead: header/trailer assembly, IV generation,
    #: padding, sequence numbers, SA lookup.
    esp_fixed_cycles: float = 400.0
    #: HMAC pads: two extra SHA-1 blocks (ipad/opad), 128 bytes.
    hmac_extra_bytes: int = 128
    #: ESP tunnel-mode byte expansion beyond the inner packet that is
    #: encrypted/authenticated (ESP header + IV + trailer).
    esp_expansion_bytes: int = 38
    #: Worker-side memcpy cost, cycles per byte, for staging whole packet
    #: payloads into/out of the GPU input/output buffers (IPsec is the
    #: only application that ships payloads, not just addresses).
    copy_cycles_per_byte: float = 0.4
    #: Per-packet worker-side fixed cost in the IPsec CPU+GPU path: ESP
    #: encapsulation, SA lookup, IV/metadata marshalling for the GPU.
    #: Fitted with ``copy_cycles_per_byte`` to Figure 11(d)'s CPU+GPU
    #: curve (10.2 Gbps @64 B; worker-bound, since the paper notes CPUs
    #: "have not been 100% utilized" and GPUs alone reach 33 Gbps).
    ipsec_gpu_worker_fixed_cycles: float = 700.0


@dataclass(frozen=True)
class GPUKernelCosts:
    """Per-work-item costs of the GPU kernels (Section 6.2).

    Compute cycles are per thread; memory accesses are random-table-access
    counts fed into the GPU latency/bandwidth model.  IPsec constants are
    fitted to Figure 11(d): the two-GPU crypto pipeline saturates at
    ~33 Gbps without packet I/O (Section 6.3) and delivers 3.5x the CPU
    throughput end-to-end.
    """

    #: IPv4 DIR-24-8: compute cycles per lookup thread.
    ipv4_compute_cycles: float = 40.0
    #: IPv4: dependent memory accesses per lookup (1 + 3% second access).
    ipv4_mem_accesses: float = 1.03
    #: IPv6 binary search: compute cycles (7 hashes).
    ipv6_compute_cycles: float = 320.0
    #: IPv6: dependent memory accesses (7 probes).
    ipv6_mem_accesses: float = 7.0
    #: OpenFlow: hash + wildcard compare compute cycles per packet thread.
    of_compute_cycles: float = 260.0
    #: OpenFlow: memory accesses per packet for the exact-match probe.
    of_mem_accesses: float = 2.0
    #: OpenFlow: cycles per wildcard entry comparison per packet.
    of_wildcard_entry_cycles: float = 1.1
    #: AES-128-CTR on GPU: cycles per 16 B block thread (table-based,
    #: shared-memory T-boxes; Section 6.2.4 maps one thread per block).
    aes_block_cycles: float = 220.0
    #: SHA-1 on GPU: cycles per 64 B block (packet-level parallelism only).
    sha1_block_cycles: float = 520.0
    #: Per-packet fixed GPU work for IPsec (ESP assembly on CPU excluded).
    ipsec_fixed_cycles: float = 60.0


@dataclass(frozen=True)
class FrameworkCosts:
    """Cycle costs of the PacketShader framework itself (Section 5).

    These govern the CPU+GPU data path: chunk assembly, input/output queue
    handshakes between workers and masters, and the master's per-chunk
    bookkeeping.  Scale chosen so the six worker threads comfortably
    sustain ~55 Mpps of pre/post-shading (the paper's CPUs "have not been
    100% utilized" in GPU mode).
    """

    #: Worker cycles per packet in pre-shading beyond the I/O engine cost
    #: (classification + building the GPU input array).
    pre_shading_cycles: float = 55.0
    #: Worker cycles per packet in post-shading (apply results, split to
    #: destination ports).
    post_shading_cycles: float = 45.0
    #: Cycles per chunk handoff through the master's input queue.
    queue_handoff_cycles: float = 350.0
    #: Maximum packets per chunk (the cap; Section 5.3 says the chunk size
    #: is "not fixed but only capped").
    chunk_capacity: int = 1024
    #: Maximum chunks the master gathers into one GPU launch (Section 5.4
    #: gather/scatter).
    max_gather_chunks: int = 3


@dataclass(frozen=True)
class SystemSpec:
    """The paper's whole test system (Table 2 and Figure 3)."""

    num_nodes: int = 2
    cpus_per_node: int = 1
    gpus_per_node: int = 1
    nics_per_node: int = 2
    ports_per_nic: int = 2
    #: Threads in CPU+GPU mode: 3 workers + 1 master per node (Section 5.1).
    workers_per_node_gpu_mode: int = 3
    masters_per_node: int = 1
    #: Threads in CPU-only mode: all four cores run workers (Section 6.1).
    workers_per_node_cpu_mode: int = 4
    #: Prices, USD (Table 2; checkout.google.com, June 2010).
    price_cpu: int = 925
    price_ram: int = 64
    price_motherboard: int = 483
    price_gpu: int = 500
    price_nic: int = 628
    #: Chassis, power supply, storage, and other components (the paper's
    #: "total system (including all other components)" rounds to $7,000).
    price_misc: int = 750
    ram_modules: int = 6
    #: Power draw, W (Section 7): full load with/without GPUs, idle
    #: with/without GPUs.
    power_full_gpu_w: int = 594
    power_full_cpu_w: int = 353
    power_idle_gpu_w: int = 327
    power_idle_cpu_w: int = 260

    @property
    def total_ports(self) -> int:
        """10 GbE ports in the system (8)."""
        return self.num_nodes * self.nics_per_node * self.ports_per_nic

    @property
    def total_cost(self) -> int:
        """Approximate system cost; the paper rounds to $7,000."""
        return (
            self.num_nodes * self.price_cpu
            + self.ram_modules * self.price_ram
            + self.price_motherboard
            + self.num_nodes * self.price_gpu
            + self.num_nodes * 2 * self.price_nic
            + self.price_misc
        )


# Default instances modelling the paper's test system.
CPU = CPUModel()
GPU = GPUModel()
PCIE = PCIeModel()
IOH = IOHModel()
NIC = NICModel()
IO_ENGINE = IOEngineCosts()
LINUX_STACK = LinuxStackCosts()
APPS = AppCosts()
GPU_KERNELS = GPUKernelCosts()
FRAMEWORK = FrameworkCosts()
SYSTEM = SystemSpec()
