"""Calibrated performance-model constants.

Every number the simulator charges for time comes from this subpackage, and
every constant is annotated with the paper measurement it was fitted to.
Centralising the fits keeps the rest of the code free of magic numbers and
makes the calibration auditable against the paper.
"""

from repro.calib import constants

__all__ = ["constants"]
