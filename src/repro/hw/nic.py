"""Intel 82599-like 10 GbE NIC model (paper Sections 3.1 and 4).

Functional pieces: RX/TX descriptor rings over the huge packet buffer,
RSS dispatch of incoming frames to per-core RX queues, per-queue statistics
(the Section 4.4 fix for the shared-counter coherence problem), and the
interrupt/polling state used by the livelock-avoidance scheme (Section 5.2).

Rings hold indices into buffer cells, as the real hardware holds DMA
addresses; frames themselves live in :class:`repro.io_engine.hugebuf`
cells.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.calib.constants import NIC, NICModel
from repro.faults.plan import FaultInjector, Sites
from repro.net.ethernet import wire_bits


@dataclass
class QueueStats:
    """Per-queue packet/byte counters (Section 4.4: per-queue, not per-NIC,
    so cores never contend on a shared cache line)."""

    packets: int = 0
    bytes: int = 0
    drops: int = 0

    def add(self, frame_len: int) -> None:
        self.packets += 1
        self.bytes += frame_len

    def __iadd__(self, other: "QueueStats") -> "QueueStats":
        self.packets += other.packets
        self.bytes += other.bytes
        self.drops += other.drops
        return self


class RxQueue:
    """One RX descriptor ring.

    A bounded FIFO of received frames; overflow (ring full when a frame
    arrives) is a tail drop, exactly as on hardware when the host cannot
    keep up.
    """

    def __init__(self, queue_id: int, ring_size: int = 0, model: NICModel = NIC):
        self.queue_id = queue_id
        self.ring_size = ring_size or model.rx_ring_size
        self._ring: Deque = deque()
        self.stats = QueueStats()
        self.interrupt_enabled = True

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def full(self) -> bool:
        return len(self._ring) >= self.ring_size

    def deliver(self, frame) -> bool:
        """Hardware-side: DMA a received frame into the ring.

        Returns False (and counts a drop) if the ring is full.
        """
        if self.full:
            self.stats.drops += 1
            return False
        self._ring.append(frame)
        self.stats.add(len(frame))
        return True

    def fetch(self, max_packets: int) -> List:
        """Host-side: drain up to ``max_packets`` frames (batched RX)."""
        if max_packets <= 0:
            raise ValueError("max_packets must be positive")
        count = min(max_packets, len(self._ring))
        return [self._ring.popleft() for _ in range(count)]


class TxQueue:
    """One TX descriptor ring; ``transmit`` drains to the attached sink."""

    def __init__(self, queue_id: int, ring_size: int = 0, model: NICModel = NIC):
        self.queue_id = queue_id
        self.ring_size = ring_size or model.tx_ring_size
        self._ring: Deque = deque()
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def full(self) -> bool:
        return len(self._ring) >= self.ring_size

    def post(self, frame) -> bool:
        """Host-side: enqueue a frame for transmission."""
        if self.full:
            self.stats.drops += 1
            return False
        self._ring.append(frame)
        return True

    def post_batch(self, frames) -> int:
        """Enqueue a batch; returns how many fit (rest are dropped)."""
        sent = 0
        for frame in frames:
            if self.post(frame):
                sent += 1
        return sent

    def drain(self) -> List:
        """Hardware-side: transmit everything queued; returns the frames."""
        frames = list(self._ring)
        self._ring.clear()
        for frame in frames:
            self.stats.add(len(frame))
        return frames


class NICPort:
    """One 10 GbE port with multiple core-aware RX/TX queue pairs.

    ``num_queues`` RX and TX queues, one pair per serving CPU core
    (Section 4.4).  Incoming frames are spread by RSS; the
    :class:`repro.io_engine.rss.RSSHasher` computes the Toeplitz hash and
    this port maps ``hash % num_queues`` to a queue, as the 82599 does with
    its indirection table.
    """

    def __init__(
        self,
        port_id: int,
        node: int = 0,
        num_queues: int = 4,
        model: NICModel = NIC,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        if num_queues <= 0:
            raise ValueError("num_queues must be positive")
        self.port_id = port_id
        self.node = node
        self.model = model
        self.fault_injector = fault_injector
        self.rx_queues = [RxQueue(i, model=model) for i in range(num_queues)]
        self.tx_queues = [TxQueue(i, model=model) for i in range(num_queues)]

    @property
    def num_queues(self) -> int:
        return len(self.rx_queues)

    def receive(self, frame, rss_hash: int) -> bool:
        """Deliver an incoming frame to the RSS-selected RX queue.

        An attached fault injector models the wire and the host falling
        behind: frames may arrive corrupted (truncated, garbage bytes,
        bad checksum — the adversarial-traffic evaluations of
        Benchmarking-NFV-dataplanes) or find the ring full.
        """
        queue = self.rx_queues[rss_hash % self.num_queues]
        if self.fault_injector is not None:
            frame, _ = self.fault_injector.corrupt_frame(frame)
            if self.fault_injector.should_fire(Sites.RX_RING_OVERFLOW):
                queue.stats.drops += 1
                return False
        return queue.deliver(frame)

    def aggregate_stats(self) -> QueueStats:
        """On-demand accumulation of per-queue counters (the cheap-stats
        scheme of Section 4.4 — what ifconfig/ethtool would trigger)."""
        total = QueueStats()
        for queue in self.rx_queues:
            total += queue.stats
        return total

    def line_rate_pps(self, frame_len: int) -> float:
        """Packets/s the 10 GbE line sustains at ``frame_len`` (wire
        overhead included)."""
        return self.model.line_rate_bps / wire_bits(frame_len)


def effective_itr_ns(per_queue_pps: float, model: NICModel = NIC) -> float:
    """The dynamic moderation window at a per-queue packet rate.

    The driver retunes the timer toward ``itr_target_packets`` per
    interrupt (ixgbe adaptive ITR), clamped between the low-latency
    minimum and the bulk maximum.
    """
    if per_queue_pps <= 0:
        return model.interrupt_moderation_ns
    window = model.itr_target_packets * 1e9 / per_queue_pps
    return min(model.interrupt_moderation_ns, max(model.itr_min_ns, window))


def interrupt_extra_delay_ns(
    per_queue_pps: float, utilization: float = 0.0, model: NICModel = NIC
) -> float:
    """Average extra latency from interrupt moderation.

    A packet arriving while its serving thread is blocked waits on
    average half the effective moderation window; the probability of
    finding the thread blocked falls with utilization (in polling mode
    interrupts stay masked and moderation is irrelevant).  This produces
    the elevated round-trip latency at low offered load in Figure 12 —
    the paper attributes it to "interrupt moderation in NICs" — fading
    as load rises.
    """
    idle = max(0.0, 1.0 - utilization)
    return effective_itr_ns(per_queue_pps, model) / 2.0 * idle
