"""GPU device model: a GTX480-like SIMT processor (paper Section 2).

The device does two things at once:

* **executes real kernels** — a kernel here is a Python callable operating
  on numpy arrays (the lookup kernels, the AES/SHA1 kernels).  Results are
  bit-exact and tested against CPU references;
* **charges modelled time** using an SM/warp analytic model: per-SM time is
  the max of an *issue-bound* term (warps x compute cycles, since a warp
  instruction retires per issue slot) and a *latency-bound* term (dependent
  memory accesses exposed when too few warps are resident to hide them),
  and the whole device is additionally bounded by global memory bandwidth.
  This reproduces the paper's central observation (Section 2.3/Figure 2):
  throughput proportional to parallelism, poor at small batches, an order
  of magnitude over CPU at large ones.

Launch-time accounting follows Section 2.2: a fixed ~3.8 us launch latency
plus ~73 ps per thread, PCIe transfer times from the Table 1 fit, and a
per-batch host synchronisation overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.calib.constants import GPU, GPUModel
from repro.faults.errors import GPULaunchError, GPUTimeoutError
from repro.faults.plan import FaultInjector, Sites
from repro.hw.pcie import PCIeLink
from repro.obs import LATENCY_NS_BUCKETS, Stages, get_profiler, get_registry, names


@dataclass(frozen=True)
class KernelSpec:
    """Cost description of one GPU kernel.

    ``compute_cycles`` is per thread.  ``mem_accesses`` counts *dependent*
    scattered table accesses per thread (each moves one 128 B transaction
    and serializes within the thread).  ``stream_bytes`` counts
    sequentially-streamed bytes per thread (coalesced, bandwidth-friendly),
    e.g. the packet payload an AES thread reads and writes.
    """

    name: str
    compute_cycles: float = 0.0
    mem_accesses: float = 0.0
    stream_bytes: float = 0.0
    #: Fraction of peak bandwidth streaming access achieves (coalesced).
    stream_efficiency: float = 0.80
    #: Warp-divergence issue multiplier (Section 5.5): the mean number
    #: of distinct code paths per warp.  1.0 = divergence-free (all the
    #: paper's kernels); compute it from per-packet path labels with
    #: :func:`repro.hw.divergence.divergent_execution_factor`.
    divergence_factor: float = 1.0
    #: The function run for real: fn(device, *args) -> result arrays.
    fn: Optional[Callable] = None

    def __post_init__(self) -> None:
        if self.compute_cycles < 0 or self.mem_accesses < 0 or self.stream_bytes < 0:
            raise ValueError("kernel costs must be non-negative")
        if self.divergence_factor < 1.0:
            raise ValueError("divergence factor cannot be below 1.0")


@dataclass
class LaunchResult:
    """Timing breakdown (ns) and output of one kernel launch."""

    kernel: str
    n_threads: int
    h2d_ns: float
    launch_ns: float
    exec_ns: float
    d2h_ns: float
    sync_ns: float
    output: object = None

    @property
    def total_ns(self) -> float:
        return self.h2d_ns + self.launch_ns + self.exec_ns + self.d2h_ns + self.sync_ns


class GPUDevice:
    """One GTX480-like device with its PCIe link and memory allocator."""

    def __init__(
        self,
        device_id: int = 0,
        node: int = 0,
        model: GPUModel = GPU,
        pcie: Optional[PCIeLink] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        self.device_id = device_id
        self.node = node
        self.model = model
        self.fault_injector = fault_injector
        self.pcie = (
            pcie if pcie is not None else PCIeLink(fault_injector=fault_injector)
        )
        self._allocated = 0
        self._allocations = {}
        self._next_handle = 1
        self.busy_ns = 0.0
        self.launches = 0
        self.launch_errors = 0
        self._profiler = get_profiler()
        registry = get_registry()
        device = str(device_id)
        self._m_launches = registry.counter(
            names.GPU_LAUNCHES, help="kernel launches", device=device
        )
        self._m_launch_errors = registry.counter(
            names.GPU_LAUNCH_ERRORS, help="launches failed by fault injection",
            device=device,
        )
        self._m_busy_ns = registry.counter(
            names.GPU_BUSY_NS, help="modelled device-busy nanoseconds",
            device=device,
        )
        self._h_launch_ns = registry.histogram(
            names.GPU_LAUNCH_TOTAL_NS, buckets=LATENCY_NS_BUCKETS,
            help="modelled sync+launch+h2d+exec+d2h time per launch",
            device=device,
        )

    # ------------------------------------------------------------------
    # Device memory allocator (holds forwarding tables, packet buffers).
    # ------------------------------------------------------------------

    def alloc(self, nbytes: int) -> int:
        """Allocate device memory; returns an opaque handle.

        Raises ``MemoryError`` beyond the 1.5 GB of a GTX480 — forwarding
        tables and batch buffers must genuinely fit (a real constraint the
        paper's DIR-24-8 table, at 64 MB, easily satisfies).
        """
        if nbytes <= 0:
            raise ValueError(f"allocation must be positive, got {nbytes}")
        if self._allocated + nbytes > self.model.device_memory:
            raise MemoryError(
                f"device {self.device_id}: out of device memory "
                f"({self._allocated + nbytes} > {self.model.device_memory})"
            )
        handle = self._next_handle
        self._next_handle += 1
        self._allocations[handle] = nbytes
        self._allocated += nbytes
        return handle

    def free(self, handle: int) -> None:
        """Release a previous allocation."""
        nbytes = self._allocations.pop(handle, None)
        if nbytes is None:
            raise KeyError(f"unknown device allocation handle {handle}")
        self._allocated -= nbytes

    @property
    def allocated_bytes(self) -> int:
        return self._allocated

    # ------------------------------------------------------------------
    # Timing model.
    # ------------------------------------------------------------------

    def launch_latency_ns(self, n_threads: int) -> float:
        """Kernel launch latency (Section 2.2: 3.8 us + ~73 ps/thread)."""
        if n_threads < 0:
            raise ValueError("thread count must be non-negative")
        return (
            self.model.launch_latency_ns
            + n_threads * self.model.launch_latency_per_thread_ns
        )

    def execution_time_ns(self, spec: KernelSpec, n_threads: int) -> float:
        """Modelled kernel execution time for ``n_threads``.

        Per SM: ``max(issue-bound, latency-bound)`` where the latency term
        divides the exposed memory stalls by the number of resident warps
        (the Section 2.1 latency-hiding mechanism — with one warp the full
        latency is exposed; with 32 it is almost entirely hidden).  The
        device total is additionally floored by global memory bandwidth.
        """
        if n_threads <= 0:
            return 0.0
        m = self.model
        threads_per_sm = math.ceil(n_threads / m.num_sms)
        warps_per_sm = math.ceil(threads_per_sm / m.warp_size)
        resident = min(warps_per_sm, m.max_warps_per_sm)
        issue_cycles = warps_per_sm * spec.compute_cycles * spec.divergence_factor
        stall_cycles = warps_per_sm * spec.mem_accesses * m.mem_latency_cycles
        latency_cycles = stall_cycles / resident
        sm_time_ns = max(issue_cycles, latency_cycles) * m.cycle_ns
        bw_time_ns = 0.0
        if spec.mem_accesses:
            scattered_bytes = n_threads * spec.mem_accesses * m.transaction_bytes
            bw_time_ns += scattered_bytes * 1e9 / (
                m.mem_bandwidth * m.scattered_bw_efficiency
            )
        if spec.stream_bytes:
            stream_bytes = n_threads * spec.stream_bytes
            bw_time_ns += stream_bytes * 1e9 / (
                m.mem_bandwidth * spec.stream_efficiency
            )
        return max(sm_time_ns, bw_time_ns)

    def launch(
        self,
        spec: KernelSpec,
        n_threads: int,
        bytes_in: int,
        bytes_out: int,
        args: tuple = (),
        include_sync: bool = True,
    ) -> LaunchResult:
        """Run one kernel launch: h2d copy, execute, d2h copy.

        ``bytes_in``/``bytes_out`` are the host<->device transfer sizes for
        this batch (e.g. 4 B per packet of IPv4 destination addresses in,
        4 B of next hops out — the Section 5.3 workflow).  If ``spec.fn``
        is set it is invoked as ``fn(*args)`` and its return value becomes
        ``result.output`` — that is the *real* computation.
        """
        if n_threads < 0 or bytes_in < 0 or bytes_out < 0:
            raise ValueError("launch sizes must be non-negative")
        with self._profiler.track(Stages.GPU):
            return self._launch(
                spec, n_threads, bytes_in, bytes_out, args, include_sync
            )

    def _launch(
        self,
        spec: KernelSpec,
        n_threads: int,
        bytes_in: int,
        bytes_out: int,
        args: tuple,
        include_sync: bool,
    ) -> LaunchResult:
        if self.fault_injector is not None:
            if self.fault_injector.should_fire(Sites.GPU_TIMEOUT):
                # A straggler holds the device until the watchdog budget
                # expires: the wasted time is real (charged busy) even
                # though the launch produces nothing.
                timeout_ns = self.model.launch_latency_ns * 100.0
                self.busy_ns += timeout_ns
                self.launch_errors += 1
                self._m_launch_errors.inc()
                raise GPUTimeoutError(
                    f"device {self.device_id}: kernel {spec.name} exceeded "
                    f"the {timeout_ns:.0f} ns watchdog budget"
                )
            if self.fault_injector.should_fire(Sites.GPU_LAUNCH):
                self.launch_errors += 1
                self._m_launch_errors.inc()
                raise GPULaunchError(
                    f"device {self.device_id}: launch of {spec.name} rejected"
                )
        h2d_ns = self.pcie.transfer_h2d(bytes_in) if bytes_in else 0.0
        launch_ns = self.launch_latency_ns(n_threads)
        exec_ns = self.execution_time_ns(spec, n_threads)
        d2h_ns = self.pcie.transfer_d2h(bytes_out) if bytes_out else 0.0
        sync_ns = self.model.sync_overhead_ns if include_sync else 0.0
        output = spec.fn(*args) if spec.fn is not None else None
        result = LaunchResult(
            kernel=spec.name,
            n_threads=n_threads,
            h2d_ns=h2d_ns,
            launch_ns=launch_ns,
            exec_ns=exec_ns,
            d2h_ns=d2h_ns,
            sync_ns=sync_ns,
            output=output,
        )
        self.busy_ns += result.total_ns
        self.launches += 1
        self._m_launches.inc()
        self._m_busy_ns.inc(result.total_ns)
        self._h_launch_ns.observe(result.total_ns)
        return result

    def streamed_time_ns(
        self,
        spec: KernelSpec,
        n_threads_per_batch: int,
        bytes_in: int,
        bytes_out: int,
        n_batches: int,
    ) -> float:
        """Total time for ``n_batches`` with concurrent copy and execution.

        Models the Section 5.4 "concurrent copy and execution" stream
        optimization: consecutive batches pipeline their h2d / exec / d2h
        stages, so steady-state cost per batch is the *max* stage, not the
        sum.  One batch still pays the full sum plus the per-call CUDA
        stream overhead the paper observed ("non-trivial overhead for each
        CUDA library function call") — modelled as half the sync overhead
        per extra batch.
        """
        if n_batches <= 0:
            return 0.0
        h2d = self.pcie.h2d_time_ns(bytes_in)
        execute = self.execution_time_ns(spec, n_threads_per_batch)
        d2h = self.pcie.d2h_time_ns(bytes_out)
        launch = self.launch_latency_ns(n_threads_per_batch)
        first = h2d + execute + d2h + launch + self.model.sync_overhead_ns
        steady = max(h2d, execute, d2h) + 0.5 * self.model.sync_overhead_ns
        return first + (n_batches - 1) * steady

    def reset_counters(self) -> None:
        """Zero the busy-time and launch counters."""
        self.busy_ns = 0.0
        self.launches = 0
        self.pcie.reset_counters()
