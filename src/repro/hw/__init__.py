"""Hardware models.

This subpackage is the substitute for the paper's 2010 testbed (dual Xeon
X5550, two GTX480s, four dual-port 82599 NICs on a dual-IOH board).  Each
model does two jobs:

* *functional*: the GPU executes real (Python/numpy) kernels over real
  data; the NIC maintains real descriptor rings and RSS dispatch; the cache
  model tracks real line states — so correctness is testable;
* *temporal*: every operation returns or accumulates modelled nanoseconds,
  with constants calibrated in :mod:`repro.calib.constants` against the
  paper's own measurements (Table 1, Table 3, Figures 2, 5, 6).
"""

from repro.hw.pcie import PCIeLink
from repro.hw.cpu import CPUCore, CPUSocket, memory_access_time
from repro.hw.cache import CacheModel, CacheStats
from repro.hw.gpu import GPUDevice, KernelSpec, LaunchResult
from repro.hw.nic import NICPort, RxQueue, TxQueue
from repro.hw.numa import IOHub, NUMANode, SystemTopology
from repro.hw.divergence import (
    divergence_report,
    divergent_execution_factor,
    sort_for_warps,
    warp_divergence_fraction,
)

__all__ = [
    "CPUCore",
    "divergence_report",
    "divergent_execution_factor",
    "sort_for_warps",
    "warp_divergence_fraction",
    "CPUSocket",
    "CacheModel",
    "CacheStats",
    "GPUDevice",
    "IOHub",
    "KernelSpec",
    "LaunchResult",
    "NICPort",
    "NUMANode",
    "PCIeLink",
    "RxQueue",
    "SystemTopology",
    "TxQueue",
    "memory_access_time",
]
