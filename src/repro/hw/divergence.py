"""Warp divergence analysis and mitigation (paper Section 5.5).

"For optimal performance, the SIMT architecture of CUDA demands to have
minimal code-path divergence ... within a warp. ... To avoid warp
divergence for differentiated packet processing (e.g., packet
encryption with different cipher suites), one may classify and sort
packets to be grouped into separate warps so that all threads within a
warp follow the same code path."

The helpers here quantify and mitigate exactly that: given the per-
packet code-path labels a kernel would branch on (cipher suite, packet
family, action type), :func:`warp_divergence_fraction` measures how
many warps would execute multiple paths, :func:`sort_for_warps` is the
paper's classify-and-sort mitigation, and
:func:`divergent_execution_factor` is the issue-time multiplier the GPU
model applies (a warp that takes *k* distinct paths serialises them —
SIMT masking runs each path over the whole warp).
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence

from repro.calib.constants import GPU, GPUModel


def _warps(labels: Sequence, warp_size: int) -> List[Sequence]:
    return [labels[i:i + warp_size] for i in range(0, len(labels), warp_size)]


def warp_divergence_fraction(
    labels: Sequence, warp_size: int = 0, model: GPUModel = GPU
) -> float:
    """Fraction of warps whose threads disagree on the code path."""
    if not labels:
        return 0.0
    warp_size = warp_size or model.warp_size
    warps = _warps(list(labels), warp_size)
    divergent = sum(1 for warp in warps if len(set(warp)) > 1)
    return divergent / len(warps)


def divergent_execution_factor(
    labels: Sequence, warp_size: int = 0, model: GPUModel = GPU
) -> float:
    """Issue-time multiplier from divergence.

    A warp whose threads take ``k`` distinct paths issues each path's
    instructions for the whole warp with masking, so its issue time is
    ``k``x a uniform warp's.  The factor is the warp-count-weighted mean
    of ``k`` — 1.0 for divergence-free batches.
    """
    if not labels:
        return 1.0
    warp_size = warp_size or model.warp_size
    warps = _warps(list(labels), warp_size)
    total_paths = sum(len(set(warp)) for warp in warps)
    return total_paths / len(warps)


def sort_for_warps(labels: Sequence) -> List[int]:
    """The Section 5.5 mitigation: an index order grouping equal paths.

    Returns a permutation of ``range(len(labels))`` such that packets
    with the same code path are contiguous (stable within a path, so
    intra-flow order survives the regrouping).  Applying it before the
    kernel launch drives the divergence factor toward 1 + (paths-1) x
    (boundary warps / warps).
    """
    order = sorted(range(len(labels)), key=lambda i: (repr(labels[i]), i))
    return order


def divergence_report(labels: Sequence, model: GPUModel = GPU) -> dict:
    """Before/after summary of the classify-and-sort mitigation."""
    sorted_labels = [labels[i] for i in sort_for_warps(labels)]
    return {
        "paths": len(Counter(labels)),
        "unsorted_fraction": warp_divergence_fraction(labels, model=model),
        "sorted_fraction": warp_divergence_fraction(sorted_labels, model=model),
        "unsorted_factor": divergent_execution_factor(labels, model=model),
        "sorted_factor": divergent_execution_factor(sorted_labels, model=model),
    }
