"""CPU time model: cores, sockets, and memory-access costing.

Models the Nehalem Xeon X5550 behaviour the paper leans on in Section 2.4:

* out-of-order execution overlaps *independent* cache misses, but only up
  to the Miss Status Holding Register (MSHR) limit — about 6 outstanding
  misses for one busy core, 4 when all cores burst;
* *dependent* accesses (pointer chasing, the IPv6 binary search where each
  probe depends on the previous result) cannot overlap at all;
* node-crossing accesses cost 40-50% more latency (Section 4.5).

Application cost models (``repro.apps``) combine these with per-packet
compute cycles to produce CPU-mode throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.calib.constants import CPU, CPUModel


def memory_access_time(
    dependent_accesses: float,
    independent_accesses: float = 0.0,
    model: CPUModel = CPU,
    all_cores_busy: bool = True,
    remote: bool = False,
) -> float:
    """Modelled time (ns) for a mix of DRAM accesses from one core.

    ``dependent_accesses`` serialize at full DRAM latency.  ``independent``
    ones overlap up to the MSHR limit, so their effective latency divides
    by the available miss parallelism.  ``remote`` applies the
    node-crossing penalty of Section 4.5.
    """
    if dependent_accesses < 0 or independent_accesses < 0:
        raise ValueError("access counts must be non-negative")
    latency = model.dram_latency_ns
    if remote:
        latency *= model.remote_latency_factor
    mshr = model.mshr_all_cores if all_cores_busy else model.mshr_single_core
    return dependent_accesses * latency + independent_accesses * latency / mshr


@dataclass
class CPUCore:
    """One core with a cycle accumulator.

    The I/O engine and framework charge work to cores via
    :meth:`charge_cycles`/:meth:`charge_ns`; the pipeline solver then turns
    accumulated cycles per packet into sustainable rates.
    """

    core_id: int
    node: int
    model: CPUModel = field(default_factory=lambda: CPU)
    busy_cycles: float = 0.0

    def charge_cycles(self, cycles: float) -> float:
        """Accumulate ``cycles`` of work; returns the equivalent ns."""
        if cycles < 0:
            raise ValueError(f"negative cycle charge: {cycles}")
        self.busy_cycles += cycles
        return cycles * 1e9 / self.model.clock_hz

    def charge_ns(self, ns: float) -> float:
        """Accumulate ``ns`` of work expressed in time; returns cycles."""
        if ns < 0:
            raise ValueError(f"negative time charge: {ns}")
        cycles = ns * self.model.clock_hz / 1e9
        self.busy_cycles += cycles
        return cycles

    @property
    def busy_ns(self) -> float:
        """Accumulated busy time in ns."""
        return self.busy_cycles * 1e9 / self.model.clock_hz

    def reset(self) -> None:
        """Zero the accumulator."""
        self.busy_cycles = 0.0


@dataclass
class CPUSocket:
    """A quad-core socket bound to one NUMA node."""

    node: int
    model: CPUModel = field(default_factory=lambda: CPU)
    cores: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.cores:
            self.cores = [
                CPUCore(core_id=self.node * self.model.cores + i, node=self.node,
                        model=self.model)
                for i in range(self.model.cores)
            ]

    @property
    def total_busy_cycles(self) -> float:
        """Sum of busy cycles across the socket's cores."""
        return sum(core.busy_cycles for core in self.cores)

    def packets_per_second(self, cycles_per_packet: float, cores_used: int = 0) -> float:
        """Sustainable packet rate given a per-packet cycle cost.

        ``cores_used`` defaults to all cores in the socket.  This is the
        basic CPU-capacity formula behind every CPU-only throughput figure.
        """
        if cycles_per_packet <= 0:
            raise ValueError("cycles_per_packet must be positive")
        cores = cores_used or self.model.cores
        return cores * self.model.clock_hz / cycles_per_packet

    def reset(self) -> None:
        """Zero all core accumulators."""
        for core in self.cores:
            core.reset()
