"""PCIe 2.0 transfer-time model (paper Table 1 and Section 2.2).

The paper measures host<->device copy rates over buffer sizes from 256 B to
1 MB and finds the rate "proportional to the buffer size", peaking at
5.6 GB/s host-to-device and 3.4 GB/s device-to-host.  A two-parameter
affine model ``t(bytes) = fixed + bytes/bandwidth`` reproduces all seven
columns of Table 1 (the fixed term dominates small transfers, the bandwidth
term large ones).  The direction asymmetry encodes the dual-IOH problem of
Section 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.calib.constants import PCIE, PCIeModel
from repro.faults.errors import DMAError
from repro.faults.plan import FaultInjector, Sites
from repro.obs import get_registry, names


@dataclass
class PCIeLink:
    """One PCIe x16 link between host memory and a GPU.

    Tracks cumulative bytes per direction so the NUMA/IOH model can charge
    GPU DMA traffic against the shared IOH budget (Section 6.3 observes
    that GPU copies "weigh on the burden of IOHs").  An attached
    :class:`repro.faults.plan.FaultInjector` can fail individual DMA
    transactions (:class:`repro.faults.errors.DMAError`); failed
    transfers are counted separately and move no bytes.
    """

    model: PCIeModel = field(default_factory=lambda: PCIE)
    bytes_h2d: int = 0
    bytes_d2h: int = 0
    transfers_h2d: int = 0
    transfers_d2h: int = 0
    dma_errors: int = 0
    fault_injector: Optional[FaultInjector] = None

    def _maybe_fail(self, direction: str, nbytes: int) -> None:
        if self.fault_injector is not None and self.fault_injector.should_fire(
            Sites.PCIE_DMA
        ):
            self.dma_errors += 1
            get_registry().counter(
                names.PCIE_DMA_ERRORS, direction=direction,
                help="DMA transfers failed by fault injection",
            ).inc()
            raise DMAError(f"{direction} DMA of {nbytes} bytes failed")

    def h2d_time_ns(self, nbytes: int) -> float:
        """Modelled time to copy ``nbytes`` from host to device memory."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.model.h2d_fixed_ns + nbytes * 1e9 / self.model.h2d_bandwidth

    def d2h_time_ns(self, nbytes: int) -> float:
        """Modelled time to copy ``nbytes`` from device to host memory."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.model.d2h_fixed_ns + nbytes * 1e9 / self.model.d2h_bandwidth

    def transfer_h2d(self, nbytes: int) -> float:
        """Record a host-to-device DMA and return its modelled time (ns)."""
        self._maybe_fail("h2d", nbytes)
        time_ns = self.h2d_time_ns(nbytes)
        self.bytes_h2d += nbytes
        self.transfers_h2d += 1
        registry = get_registry()
        registry.counter(names.PCIE_BYTES, direction="h2d").inc(nbytes)
        registry.counter(names.PCIE_TRANSFERS, direction="h2d").inc()
        registry.counter(names.PCIE_TRANSFER_NS, direction="h2d").inc(time_ns)
        return time_ns

    def transfer_d2h(self, nbytes: int) -> float:
        """Record a device-to-host DMA and return its modelled time (ns)."""
        self._maybe_fail("d2h", nbytes)
        time_ns = self.d2h_time_ns(nbytes)
        self.bytes_d2h += nbytes
        self.transfers_d2h += 1
        registry = get_registry()
        registry.counter(names.PCIE_BYTES, direction="d2h").inc(nbytes)
        registry.counter(names.PCIE_TRANSFERS, direction="d2h").inc()
        registry.counter(names.PCIE_TRANSFER_NS, direction="d2h").inc(time_ns)
        return time_ns

    def h2d_rate_mbps(self, nbytes: int) -> float:
        """Effective h2d copy rate in MB/s for a buffer of ``nbytes``.

        This is the quantity Table 1 tabulates (MB = 1e6 bytes would be
        unusual for 2010 papers; they use MiB-free "MB/s" consistent with
        2^20-byte buffers and 10^6 rates — we report bytes/1e6 which
        matches the published numbers under the affine fit).
        """
        return nbytes / self.h2d_time_ns(nbytes) * 1e9 / 1e6

    def d2h_rate_mbps(self, nbytes: int) -> float:
        """Effective d2h copy rate in MB/s for a buffer of ``nbytes``."""
        return nbytes / self.d2h_time_ns(nbytes) * 1e9 / 1e6

    def reset_counters(self) -> None:
        """Zero the cumulative traffic counters."""
        self.bytes_h2d = 0
        self.bytes_d2h = 0
        self.transfers_h2d = 0
        self.transfers_d2h = 0
