"""A functional set-associative cache model.

Used by the I/O-engine tests and the Table 3 breakdown to *demonstrate*
(not just assert) the cache phenomena the paper optimizes away:

* compulsory misses after DMA invalidation (Section 4.1: 13.8% of RX
  cycles) and their elimination by software prefetch (Section 4.3);
* false sharing when two queues' private data land in one cache line
  (Section 4.4), fixed by cache-line alignment;
* coherence misses from globally shared statistics counters, fixed by
  per-queue counters.

The model is per-core LRU set-associative with a MESI-flavoured shared-line
bounce counter: a write to a line present in another core's cache counts a
coherence miss there and invalidates it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict


@dataclass
class CacheStats:
    """Hit/miss accounting for one core's cache."""

    hits: int = 0
    compulsory_misses: int = 0
    capacity_misses: int = 0
    coherence_misses: int = 0
    prefetch_hits: int = 0

    @property
    def misses(self) -> int:
        return self.compulsory_misses + self.capacity_misses + self.coherence_misses

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class CacheModel:
    """Multi-core set-associative cache with coherence bookkeeping.

    Lines are tracked per core; each core has ``num_sets`` LRU sets of
    ``associativity`` ways.  ``line_size`` defaults to the x86 64 B the
    paper cites.  This is intentionally a simple private-L1-level view —
    enough to reproduce the phenomena, not a full hierarchy.
    """

    def __init__(
        self,
        num_cores: int = 8,
        line_size: int = 64,
        num_sets: int = 64,
        associativity: int = 8,
    ) -> None:
        if line_size & (line_size - 1):
            raise ValueError("line_size must be a power of two")
        if num_sets & (num_sets - 1):
            raise ValueError("num_sets must be a power of two")
        self.num_cores = num_cores
        self.line_size = line_size
        self.num_sets = num_sets
        self.associativity = associativity
        # Per core: set index -> OrderedDict[line_addr, dirty] in LRU order.
        self._sets = [
            [OrderedDict() for _ in range(num_sets)] for _ in range(num_cores)
        ]
        self._ever_seen = [set() for _ in range(num_cores)]
        self.stats: Dict[int, CacheStats] = {
            core: CacheStats() for core in range(num_cores)
        }

    def _line_of(self, addr: int) -> int:
        return addr // self.line_size

    def _set_of(self, line: int) -> int:
        return line % self.num_sets

    def _install(self, core: int, line: int) -> None:
        ways = self._sets[core][self._set_of(line)]
        ways[line] = True
        ways.move_to_end(line)
        if len(ways) > self.associativity:
            ways.popitem(last=False)
        self._ever_seen[core].add(line)

    def _present(self, core: int, line: int) -> bool:
        return line in self._sets[core][self._set_of(line)]

    def access(self, core: int, addr: int, write: bool = False) -> bool:
        """Access one byte address from ``core``; returns True on a hit.

        A write invalidates the line in every other core (the MESI
        ownership transfer that makes shared counters expensive).
        """
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} out of range")
        line = self._line_of(addr)
        hit = self._present(core, line)
        if hit:
            self.stats[core].hits += 1
            self._sets[core][self._set_of(line)].move_to_end(line)
        else:
            if line not in self._ever_seen[core]:
                self.stats[core].compulsory_misses += 1
            elif any(
                self._present(other, line)
                for other in range(self.num_cores)
                if other != core
            ):
                self.stats[core].coherence_misses += 1
            else:
                self.stats[core].capacity_misses += 1
            self._install(core, line)
        if write:
            for other in range(self.num_cores):
                if other != core:
                    self._sets[other][self._set_of(line)].pop(line, None)
        return hit

    def access_range(self, core: int, addr: int, length: int, write: bool = False) -> int:
        """Access every line covering ``[addr, addr+length)``; returns hits."""
        if length <= 0:
            raise ValueError("length must be positive")
        first = self._line_of(addr)
        last = self._line_of(addr + length - 1)
        return sum(
            self.access(core, line * self.line_size, write)
            for line in range(first, last + 1)
        )

    def prefetch(self, core: int, addr: int, length: int = 1) -> None:
        """Install the lines covering the range without counting misses.

        Models the Section 4.3 software prefetch: the miss latency is
        overlapped with useful work, so a later demand access hits.
        """
        first = self._line_of(addr)
        last = self._line_of(addr + max(length, 1) - 1)
        for line in range(first, last + 1):
            if not self._present(core, line):
                self.stats[core].prefetch_hits += 1
            self._install(core, line)

    def dma_invalidate(self, addr: int, length: int) -> None:
        """Invalidate the covered lines in all cores.

        DMA transactions invalidate CPU cache lines for memory consistency
        (Section 4.1) — the cause of the compulsory-miss bin in Table 3.
        Invalidated lines are also removed from the compulsory-miss history
        because the next access really must go to memory again.
        """
        first = self._line_of(addr)
        last = self._line_of(addr + max(length, 1) - 1)
        for core in range(self.num_cores):
            for line in range(first, last + 1):
                self._sets[core][self._set_of(line)].pop(line, None)
                self._ever_seen[core].discard(line)

    def reset_stats(self) -> None:
        """Zero all counters (contents are kept)."""
        for core in range(self.num_cores):
            self.stats[core] = CacheStats()
