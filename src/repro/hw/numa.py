"""NUMA topology and the dual-IOH I/O ceilings (paper Sections 3.1-3.2, 4.5).

The test system (Figure 3) has two NUMA nodes, each with a quad-core
socket, local DDR3, and an Intel 5520 IOH carrying two dual-port 10 GbE
NICs (PCIe x8) and one GTX480 (PCIe x16).  The dual-IOH board shows
asymmetric DMA throughput (device-to-host slower than host-to-device) that
ultimately caps forwarding around 40 Gbps; the paper measures the ceilings
(Figure 6) and attributes them to the chipset.  We encode exactly those
measured ceilings per IOH.

This module answers the capacity questions the pipeline solver asks:
"at frame size S, with this much GPU PCIe traffic riding on the same IOHs,
how many Gbps of RX / TX / RX+TX can the I/O subsystem move?"
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.calib.constants import CPU, IOH, NIC, SYSTEM, CPUModel, IOHModel, SystemSpec
from repro.hw.cpu import CPUSocket
from repro.hw.gpu import GPUDevice
from repro.hw.nic import NICPort
from repro.net.ethernet import wire_bits


@dataclass
class IOHub:
    """One Intel 5520 I/O hub with its measured DMA ceilings."""

    hub_id: int
    model: IOHModel = field(default_factory=lambda: IOH)

    def rx_efficiency(self, frame_len: int) -> float:
        """Fraction of the RX ceiling usable at a given frame size.

        Small frames pay proportionally more descriptor/completion DMA
        (Figure 6: 53.1 Gbps @64 B vs 59.9 @1514 B over two hubs).
        """
        wire = frame_len + 24
        return wire / (wire + self.model.rx_per_packet_overhead_bytes)

    def tx_efficiency(self, frame_len: int) -> float:
        """TX analogue; nearly 1.0 (79.3 vs 80.0 Gbps in Figure 6)."""
        wire = frame_len + 24
        return wire / (wire + self.model.tx_per_packet_overhead_bytes)

    def rx_capacity_gbps(self, frame_len: int) -> float:
        """Device-to-host (NIC RX) ceiling at this frame size, Gbps."""
        return self.model.rx_ceiling_gbps * self.rx_efficiency(frame_len)

    def tx_capacity_gbps(self, frame_len: int) -> float:
        """Host-to-device (NIC TX) ceiling at this frame size, Gbps."""
        return self.model.tx_ceiling_gbps * self.tx_efficiency(frame_len)

    def bidir_capacity_gbps(self, frame_len: int) -> float:
        """Simultaneous RX+TX (forwarding) ceiling at this frame size.

        Forwarding peaks slightly *above* 40 Gbps at 64 B (41.1 in
        Figure 6) and settles to ~40 for large frames; the small-frame
        bonus term captures that.
        """
        wire = frame_len + 24
        bonus = self.model.bidir_small_frame_bonus_gbps * (88.0 / wire)
        return self.model.bidir_ceiling_gbps + bonus


@dataclass
class NUMANode:
    """One NUMA node: socket + local memory + IOH + its PCIe devices."""

    node_id: int
    socket: CPUSocket
    ioh: IOHub
    gpus: List[GPUDevice] = field(default_factory=list)
    ports: List[NICPort] = field(default_factory=list)


class SystemTopology:
    """The whole Figure 3 box: two NUMA nodes, eight ports, two GPUs."""

    def __init__(
        self,
        spec: SystemSpec = SYSTEM,
        cpu_model: CPUModel = CPU,
        ioh_model: IOHModel = IOH,
        queues_per_port: int = 0,
    ) -> None:
        self.spec = spec
        self.ioh_model = ioh_model
        queues = queues_per_port or cpu_model.cores
        self.nodes: List[NUMANode] = []
        port_id = 0
        for node_id in range(spec.num_nodes):
            ports = []
            for _ in range(spec.nics_per_node * spec.ports_per_nic):
                ports.append(NICPort(port_id, node=node_id, num_queues=queues))
                port_id += 1
            self.nodes.append(
                NUMANode(
                    node_id=node_id,
                    socket=CPUSocket(node=node_id, model=cpu_model),
                    ioh=IOHub(node_id, model=ioh_model),
                    gpus=[
                        GPUDevice(device_id=node_id * spec.gpus_per_node + g,
                                  node=node_id)
                        for g in range(spec.gpus_per_node)
                    ],
                    ports=ports,
                )
            )

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def total_ports(self) -> int:
        return sum(len(node.ports) for node in self.nodes)

    @property
    def all_gpus(self) -> List[GPUDevice]:
        return [gpu for node in self.nodes for gpu in node.gpus]

    @property
    def total_cores(self) -> int:
        return sum(len(node.socket.cores) for node in self.nodes)

    def line_rate_gbps(self) -> float:
        """Aggregate 10 GbE line capacity (80 Gbps for eight ports)."""
        return self.total_ports * 10.0

    # ------------------------------------------------------------------
    # System-wide I/O capacities (both IOHs together).
    # ------------------------------------------------------------------

    def rx_capacity_gbps(self, frame_len: int) -> float:
        """System RX ceiling: min of line rate and the summed IOH caps."""
        ioh_cap = sum(node.ioh.rx_capacity_gbps(frame_len) for node in self.nodes)
        return min(self.line_rate_gbps(), ioh_cap)

    def tx_capacity_gbps(self, frame_len: int) -> float:
        """System TX ceiling."""
        ioh_cap = sum(node.ioh.tx_capacity_gbps(frame_len) for node in self.nodes)
        return min(self.line_rate_gbps(), ioh_cap)

    def forwarding_capacity_gbps(
        self,
        frame_len: int,
        gpu_pcie_bytes_per_packet: float = 0.0,
        numa_aware: bool = True,
        node_crossing: bool = False,
        displacement_factor: Optional[float] = None,
    ) -> float:
        """Bidirectional (forwarding) I/O ceiling, Gbps of wire throughput.

        ``gpu_pcie_bytes_per_packet`` is the extra host<->device DMA a
        GPU-accelerated application ships per forwarded packet; it rides
        the same IOHs and displaces NIC budget at the calibrated rate
        (Section 6.3: IPv4/IPv6 forwarding dip from 41 to 39/38 Gbps
        "because IOH gets more overloaded due to copying IP addresses and
        lookup results").  ``numa_aware=False`` applies the Section 4.5
        penalty (below 25 Gbps); ``node_crossing=True`` applies the small
        Figure 6 node-crossing penalty.
        """
        if gpu_pcie_bytes_per_packet < 0:
            raise ValueError("gpu_pcie_bytes_per_packet must be non-negative")
        cap = sum(node.ioh.bidir_capacity_gbps(frame_len) for node in self.nodes)
        wire_bytes = frame_len + 24
        factor = (
            self.ioh_model.gpu_displacement_factor
            if displacement_factor is None
            else displacement_factor
        )
        displacement = factor * gpu_pcie_bytes_per_packet / wire_bytes
        cap = cap / (1.0 + displacement)
        if not numa_aware:
            cap *= self.ioh_model.numa_blind_factor
        if node_crossing:
            cap *= self.ioh_model.node_crossing_factor
        return min(cap, self.line_rate_gbps() / 2.0 * 2.0)

    def forwarding_capacity_pps(self, frame_len: int, **kwargs) -> float:
        """Forwarding ceiling in packets/s at a frame size."""
        gbps = self.forwarding_capacity_gbps(frame_len, **kwargs)
        return gbps * 1e9 / wire_bits(frame_len)
