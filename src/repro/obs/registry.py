"""The metrics registry: counters, gauges, and fixed-bucket histograms.

The observability layer's first half (the second is :mod:`repro.obs.trace`).
Metrics are named, optionally labelled, process-wide accumulators cheap
enough to leave enabled everywhere — a counter increment is one float add,
a histogram observation one bisect plus two adds — so the tier-1 suite
runs with instrumentation on, exactly as the paper's own measurement
infrastructure stayed resident while Table 3 and Figures 5/6 were taken.

Instruments are created through a :class:`MetricsRegistry` and identified
by ``(name, labels)``; asking for the same identity twice returns the same
instrument, so callers can cheaply re-resolve handles or cache them at
construction time.  A process-wide default registry is reachable through
:func:`get_registry` and swappable for test isolation via
:func:`reset_registry`/:func:`set_registry`.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

LabelPairs = Tuple[Tuple[str, str], ...]

#: Default buckets for batch/chunk size distributions (packets per fetch;
#: the Figure 5 x-axis plus the chunk cap region).
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048,
)

#: Default buckets for simulated latencies, in nanoseconds (1 us .. 10 ms;
#: the Figure 12 y-axis spans 10 us to 1 ms).
LATENCY_NS_BUCKETS: Tuple[float, ...] = (
    1e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 2e5, 4e5, 8e5, 1.6e6, 1e7,
)

#: Default buckets for *wall-clock* stage timings, in nanoseconds
#: (1 us .. 1 s).  Deliberately wider than the simulated-latency buckets:
#: real Python wall time spans interpreter noise up to whole-run stalls.
WALL_NS_BUCKETS: Tuple[float, ...] = (
    1e3, 1e4, 5e4, 1e5, 5e5, 1e6, 5e6, 1e7, 5e7, 1e8, 1e9,
)


def _freeze_labels(labels: Dict[str, str]) -> LabelPairs:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value (packets received, bytes moved)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: LabelPairs = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, in-flight chunks)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: LabelPairs = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A fixed-bucket histogram (batch sizes, stage latencies).

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket catches the overflow.  Bucket counts are
    *non-cumulative* internally; exporters cumulate where their format
    requires it (Prometheus ``le`` semantics).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float],
        help: str = "",
        labels: LabelPairs = (),
    ) -> None:
        bounds = [float(b) for b in buckets]
        if not bounds:
            raise ValueError(f"histogram {name}: needs at least one bucket")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError(f"histogram {name}: bucket bounds must be finite")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name}: bucket bounds must be strictly increasing"
            )
        self.name = name
        self.help = help
        self.labels = labels
        self.bounds: List[float] = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        #: Per-bucket exemplars: bucket index -> (exemplar id, value) of
        #: the most recent attributed sample to land there.  Links a
        #: histogram outlier back to a flight-recorder event id.
        self.exemplars: Dict[int, Tuple[int, float]] = {}

    def observe(self, value: float, exemplar: Optional[int] = None) -> None:
        """Record one sample: it lands in the first bucket whose upper
        bound is >= the value (Prometheus ``le`` convention).  An
        ``exemplar`` id (e.g. a flight-recorder event seq) is retained
        per bucket, latest-wins."""
        index = bisect_left(self.bounds, value)
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        if exemplar:
            self.exemplars[index] = (exemplar, value)

    def bucket_index(self, value: float) -> int:
        """Which bucket a value falls in (len(bounds) means +Inf)."""
        return bisect_left(self.bounds, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (``p`` in [0, 100]) from the
        bucket counts, interpolating linearly inside the bucket the rank
        falls in (the ``histogram_quantile`` convention): the first
        bucket's lower edge is 0 for non-negative bounds, and a rank in
        the +Inf bucket clamps to the last finite bound.

        Edge cases are explicit: an empty histogram is ``NaN`` for every
        ``p``; ``p=0`` is the lower edge of the first occupied bucket
        and ``p=100`` the upper edge of the last, so the extremes never
        depend on interpolation arithmetic; both clamp to the last
        finite bound when only the +Inf bucket is occupied.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"histogram {self.name}: percentile {p} not in [0, 100]")
        if self.count == 0:
            return math.nan
        if p == 100.0:
            if self.counts[-1]:
                return self.bounds[-1]
            for index in range(len(self.bounds) - 1, -1, -1):
                if self.counts[index]:
                    return self.bounds[index]
        if p == 0.0:
            lower = min(0.0, self.bounds[0])
            for bound, bucket_count in zip(self.bounds, self.counts):
                if bucket_count:
                    return lower
                lower = bound
            return self.bounds[-1]
        rank = p / 100.0 * self.count
        cumulative = 0
        lower = min(0.0, self.bounds[0])
        for bound, bucket_count in zip(self.bounds, self.counts):
            if bucket_count and cumulative + bucket_count >= rank:
                fraction = (rank - cumulative) / bucket_count
                return lower + (bound - lower) * fraction
            cumulative += bucket_count
            lower = bound
        return self.bounds[-1]

    def cumulative_counts(self) -> List[int]:
        """Counts cumulated per the ``le`` convention, +Inf last."""
        total = 0
        out = []
        for c in self.counts:
            total += c
            out.append(total)
        return out


class MetricsRegistry:
    """A namespace of instruments, addressable by ``(name, labels)``."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelPairs], object] = {}

    def _get_or_create(self, cls, name: str, help: str, labels: Dict[str, str],
                       **kwargs):
        if not name:
            raise ValueError("metric name must be non-empty")
        key = (name, _freeze_labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, help=help, labels=key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = BATCH_SIZE_BUCKETS,
        help: str = "",
        **labels: str,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    def get(self, name: str, **labels: str) -> Optional[object]:
        """Look up an instrument without creating it."""
        return self._metrics.get((name, _freeze_labels(labels)))

    def collect(self) -> Iterator[object]:
        """All instruments, sorted by (name, labels) for stable export."""
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def value(self, name: str, **labels: str) -> float:
        """Convenience: a counter/gauge value (0.0 when absent)."""
        metric = self.get(name, **labels)
        return metric.value if metric is not None else 0.0

    def total(self, name: str) -> float:
        """Sum of a counter/gauge across all label sets."""
        return sum(
            m.value
            for (n, _), m in self._metrics.items()
            if n == name and hasattr(m, "value")
        )

    def snapshot(self) -> "MetricsRegistry":
        """A consistent point-in-time copy of every instrument.

        Exporters and dump writers read through snapshots so a writer
        mutating instruments concurrently (another thread, or a shared-
        memory slab owner in another process) can never produce a
        *torn* view: the copied histogram's ``count`` is recomputed as
        the sum of its copied bucket counts, so the invariant
        ``count == sum(counts)`` holds by construction even if the
        source was read mid-``observe``.  ``sum`` may trail the bucket
        counts by at most the in-flight sample — a bounded skew, never
        an inconsistent one.
        """
        copy = MetricsRegistry()
        for key, metric in self._metrics.items():
            name, labels = key
            if isinstance(metric, Histogram):
                counts = [int(c) for c in metric.counts]
                clone = Histogram(
                    name, list(metric.bounds), help=metric.help, labels=labels
                )
                clone.counts = counts
                clone.count = sum(counts)
                clone.sum = float(metric.sum)
                clone.exemplars = dict(metric.exemplars)
            elif isinstance(metric, Gauge):
                clone = Gauge(name, help=metric.help, labels=labels)
                clone.value = float(metric.value)
            elif isinstance(metric, Counter):
                clone = Counter(name, help=metric.help, labels=labels)
                clone.value = float(metric.value)
            else:  # pragma: no cover - no other instrument kinds exist
                continue
            copy._metrics[key] = clone
        return copy

    def __len__(self) -> int:
        return len(self._metrics)


#: The process-wide default registry.
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The current default registry (what instrumented code writes to)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install a registry as the default; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def reset_registry() -> MetricsRegistry:
    """Replace the default registry with a fresh one (test isolation).

    Objects constructed before the reset keep their old handles; code
    that should observe the reset re-resolves its instruments through
    :func:`get_registry` (instrumented constructors do).  Returns the
    fresh registry.
    """
    registry = MetricsRegistry()
    set_registry(registry)
    return registry
