"""Exporters: JSON-lines events, Prometheus text, human stage tables.

Three read-side formats over the same substrate:

* :func:`export_jsonl` — one JSON object per line: every retained span
  of a tracer, then every instrument of a registry.  Machine-readable
  ground truth for offline analysis and the benchmark JSON emitters.
* :func:`export_prometheus` — the Prometheus text exposition format
  (``# TYPE`` headers, cumulative ``le`` histogram buckets), so a scrape
  of a long-running reproduction drops into standard dashboards.
* :func:`stage_table` — the human-readable Table-3-style per-stage
  breakdown: cycles/packet, ns/packet, and the share of total per-packet
  time, with the analyzer's bottleneck called out on its row.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Optional

from repro.calib.constants import CPU
from repro.obs.analyzer import analyze
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.trace import StageCost, Tracer, get_tracer


def _prom_name(name: str) -> str:
    """Dotted registry names -> Prometheus-legal underscored names."""
    return name.replace(".", "_").replace("-", "_")


def _prom_escape(value: str) -> str:
    """Escape a label value per the text exposition format: backslash,
    double quote, and line feed are the three characters the spec names."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_unescape(value: str) -> str:
    """Invert :func:`_prom_escape` (the round-trip the tests exercise)."""
    out = []
    it = iter(value)
    for ch in it:
        if ch == "\\":
            nxt = next(it, "")
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
        else:
            out.append(ch)
    return "".join(out)


def _prom_labels(labels, extra: str = "") -> str:
    parts = [f'{k}="{_prom_escape(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def export_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Render a registry in the Prometheus text exposition format."""
    registry = registry if registry is not None else get_registry()
    lines = []
    seen_types = set()
    for metric in registry.collect():
        name = _prom_name(metric.name)
        if isinstance(metric, (Counter, Gauge)):
            if name not in seen_types:
                seen_types.add(name)
                if metric.help:
                    lines.append(f"# HELP {name} {metric.help}")
                lines.append(f"# TYPE {name} {metric.kind}")
            lines.append(f"{name}{_prom_labels(metric.labels)} {metric.value}")
        elif isinstance(metric, Histogram):
            if name not in seen_types:
                seen_types.add(name)
                if metric.help:
                    lines.append(f"# HELP {name} {metric.help}")
                lines.append(f"# TYPE {name} histogram")
            cumulative = metric.cumulative_counts()
            bucket_edges = [f"{bound:g}" for bound in metric.bounds] + ["+Inf"]
            for index, (edge, count) in enumerate(zip(bucket_edges, cumulative)):
                le = 'le="%s"' % edge
                line = f"{name}_bucket{_prom_labels(metric.labels, le)} {count}"
                exemplar = metric.exemplars.get(index)
                if exemplar is not None:
                    # OpenMetrics-style exemplar suffix: the id is a
                    # flight-recorder event seq, linking this bucket's
                    # most recent sample to the events in flight then.
                    seq, sample = exemplar
                    line += f' # {{flightrec_seq="{seq}"}} {sample:g}'
                lines.append(line)
            lines.append(f"{name}_sum{_prom_labels(metric.labels)} {metric.sum}")
            lines.append(f"{name}_count{_prom_labels(metric.labels)} {metric.count}")
            if metric.count == 0:
                # An empty histogram has no meaningful quantiles: emit
                # none rather than NaN lines dashboards would choke on.
                continue
            # Pre-computed quantile lines (summary-style), so dashboards
            # get p50/p95/p99 without a histogram_quantile() round trip.
            for quantile in (0.5, 0.95, 0.99):
                value = metric.percentile(quantile * 100.0)
                if math.isnan(value):
                    continue
                q = f'quantile="{quantile:g}"'
                lines.append(
                    f"{name}{_prom_labels(metric.labels, q)} {value:g}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def _metric_to_dict(metric) -> dict:
    record = {
        "type": "metric",
        "kind": metric.kind,
        "name": metric.name,
        "labels": dict(metric.labels),
    }
    if isinstance(metric, Histogram):
        record.update(
            buckets=list(metric.bounds),
            counts=list(metric.counts),
            count=metric.count,
            sum=metric.sum,
        )
        if metric.exemplars:
            record["exemplars"] = {
                str(index): {"seq": seq, "value": value}
                for index, (seq, value) in sorted(metric.exemplars.items())
            }
    else:
        record["value"] = metric.value
    return record


def export_jsonl(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    include_summary: bool = True,
) -> str:
    """The JSON-lines event log: spans, stage summaries, then metrics."""
    tracer = tracer if tracer is not None else get_tracer()
    registry = registry if registry is not None else get_registry()
    lines = [json.dumps(span.to_dict(), sort_keys=True)
             for span in tracer.events()]
    if include_summary:
        for cost in tracer.ordered_stages():
            lines.append(json.dumps({
                "type": "stage_summary",
                "stage": cost.stage,
                "spans": cost.spans,
                "packets": cost.packets,
                "cycles": cost.cycles,
                "ns": cost.ns,
            }, sort_keys=True))
    for metric in registry.collect():
        lines.append(json.dumps(_metric_to_dict(metric), sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def stage_table(
    summary: Optional[Dict[str, StageCost]] = None,
    clock_hz: float = CPU.clock_hz,
    title: str = "per-stage cost breakdown",
) -> str:
    """Render the Table-3-style breakdown of a traced run.

    One row per stage in pipeline order: span/packet volumes, modelled
    cycles and nanoseconds per packet, and the share of the summed
    per-packet time.  The bottleneck row carries a ``<== bottleneck``
    marker — the analyzer's verdict, the quantity Section 6.3 derives
    by hand.
    """
    if summary is None:
        summary = get_tracer().summary()
    verdict = analyze(summary, clock_hz)
    if verdict is None:
        return f"{title}: no spans recorded\n"
    header = (
        f"{'stage':<12} {'spans':>7} {'packets':>9} "
        f"{'cyc/pkt':>9} {'ns/pkt':>10} {'share':>7}"
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for row in verdict.rows:
        marker = "  <== bottleneck" if row.stage == verdict.stage else ""
        lines.append(
            f"{row.stage:<12} {row.spans:>7} {row.packets:>9} "
            f"{row.cycles_per_packet:>9.1f} {row.time_ns_per_packet:>10.1f} "
            f"{row.share:>6.1%}{marker}"
        )
    lines.append("-" * len(header))
    total_ns = sum(r.time_ns_per_packet for r in verdict.rows)
    lines.append(
        f"{'total':<12} {'':>7} {'':>9} {'':>9} {total_ns:>10.1f} {1:>6.0%}"
    )
    return "\n".join(lines) + "\n"
