"""The canonical metric-name catalog (one constant per metric).

Every name passed to the metrics registry — ``registry.counter(...)``,
``registry.gauge(...)``, ``registry.histogram(...)`` — must come from
this module, either by importing the constant or by matching one of its
string values exactly.  ``reprolint`` rule RL003 enforces this at lint
time: a registration whose name is not in the catalog is a typo waiting
to fork a time series, and a catalog entry no call site uses is an
orphan that dashboards would chart as permanently zero.

Naming convention (docs/OBSERVABILITY.md): dotted ``<layer>.<what>``
strings, mirrored here as ``LAYER_WHAT`` constants, grouped by layer in
pipeline order.  Trace *stage* names live in
:class:`repro.obs.trace.Stages`, fault *site* names in
:class:`repro.faults.plan.Sites`; this module owns only the registry
namespace.  Keep it import-free so every layer can use it without
cycles.
"""

from __future__ import annotations

# -- io_engine: packet I/O driver and engine (Section 4) ---------------
IO_DRIVER_RX_PACKETS = "io.driver_rx_packets"
IO_DRIVER_RX_DROPS = "io.driver_rx_drops"
IO_DRIVER_FETCHED_PACKETS = "io.driver_fetched_packets"
IO_DRIVER_FETCH_BATCH_SIZE = "io.driver_fetch_batch_size"
IO_EFFECTIVE_BATCH_SIZE = "io.effective_batch_size"
IO_ENGINE_RX_PACKETS = "io.engine_rx_packets"
IO_ENGINE_RX_CHUNKS = "io.engine_rx_chunks"
IO_ENGINE_CHUNK_SIZE = "io.engine_chunk_size"
IO_ENGINE_TX_PACKETS = "io.engine_tx_packets"

# -- core: the router framework and its queues (Section 5) -------------
ROUTER_RECEIVED_PACKETS = "router.received_packets"
ROUTER_FORWARDED_PACKETS = "router.forwarded_packets"
ROUTER_DROPPED_PACKETS = "router.dropped_packets"
ROUTER_SLOW_PATH_PACKETS = "router.slow_path_packets"
ROUTER_CHUNKS = "router.chunks"
ROUTER_CHUNK_SIZE = "router.chunk_size"
ROUTER_GPU_LAUNCHES = "router.gpu_launches"
ROUTER_GATHERED_CHUNKS = "router.gathered_chunks"
ROUTER_GPU_RETRIES = "router.gpu_retries"
ROUTER_GPU_FAILURES = "router.gpu_failures"
ROUTER_DEGRADED_CHUNKS = "router.degraded_chunks"
ROUTER_BACKPRESSURE_DROPS = "router.backpressure_drops"
CORE_MASTER_INPUT_DEPTH = "core.master_input_depth"
CORE_MASTER_INPUT_ENQUEUED = "core.master_input_enqueued"
CORE_MASTER_INPUT_REJECTED = "core.master_input_rejected"
CORE_WORKER_OUTPUT_DEPTH = "core.worker_output_depth"

# -- hw: device models (GPU, PCIe) -------------------------------------
GPU_LAUNCHES = "gpu.launches"
GPU_LAUNCH_ERRORS = "gpu.launch_errors"
GPU_BUSY_NS = "gpu.busy_ns"
GPU_LAUNCH_TOTAL_NS = "gpu.launch_total_ns"
PCIE_BYTES = "pcie.bytes"
PCIE_TRANSFERS = "pcie.transfers"
PCIE_TRANSFER_NS = "pcie.transfer_ns"
PCIE_DMA_ERRORS = "pcie.dma_errors"

# -- faults: injection and the recovery ladder (docs/RESILIENCE.md) ----
FAULTS_INJECTED = "faults.injected"
FAULTS_DEGRADED_MODE = "faults.degraded_mode"
FAULTS_BREAKER_OPENS = "faults.breaker_opens"
FAULTS_BREAKER_PROBES = "faults.breaker_probes"
FAULTS_WATCHDOG_STALLS = "faults.watchdog_stalls"

# -- overload control: shedding, adaptive chunking, flow-table guards --
OVERLOAD_SHED_PACKETS = "overload.shed_packets"
OVERLOAD_CHUNK_CAPACITY = "overload.chunk_capacity"
OVERLOAD_RESIZES = "overload.resizes"
OVERLOAD_P99_NS = "overload.p99_ns"
OVERLOAD_PRESSURE = "overload.pressure"
OVERLOAD_FLOW_EVICTIONS = "overload.flow_evictions"
OVERLOAD_FLOW_REJECTED_INSERTS = "overload.flow_rejected_inserts"

# -- sim / gen / obs housekeeping --------------------------------------
SIM_SOJOURN_NS = "sim.sojourn_ns"
GEN_FRAMES = "gen.frames"
LOG_RECORDS = "log.records"

# -- obs second generation: flight recorder and wall-clock profiler ----
FLIGHTREC_EVENTS = "flightrec.events"
FLIGHTREC_DUMPS = "flightrec.dumps"
PROF_STAGE_WALL_NS = "prof.stage_wall_ns"

# -- obs third generation: shared-memory slabs + cross-process merge ---
OBS_AGG_WALL_NS = "obs.agg_wall_ns"
OBS_SLAB_BYTES = "obs.slab_bytes"
OBS_MERGE_EVENTS = "obs.merge_events"
OBS_RING_DROPPED_SLOTS = "obs.ring_dropped_slots"

# -- shard: the multi-process data plane (docs/SHARDING.md) ------------
SHARD_CHUNKS_SUBMITTED = "shard.chunks_submitted"
SHARD_CHUNKS_RETURNED = "shard.chunks_returned"
SHARD_POOL_SLOTS_USED = "shard.pool_slots_used"
SHARD_POOL_FALLBACKS = "shard.pool_fallbacks"
SHARD_POOL_REPACKS = "shard.pool_repacks"
SHARD_MASTER_BATCHES = "shard.master_batches"
SHARD_MASTER_CHUNKS = "shard.master_chunks"

# -- lint: reprolint self-metrics (docs/STATIC_ANALYSIS.md) ------------
LINT_RUNS = "lint.runs"
LINT_CACHE_HITS = "lint.cache_hits"
LINT_FILES_CHECKED = "lint.files_checked"
LINT_FINDINGS = "lint.findings"
LINT_WALL_NS = "lint.wall_ns"

# -- perf: benchmark registry and the scorecard (docs/PERF.md) ---------
BENCH_RUNS = "bench.runs"
BENCH_FIGURES = "bench.figures"
BENCH_SERIES_POINTS = "bench.series_points"
BENCH_FIDELITY = "bench.fidelity"
BENCH_RUN_SECONDS = "bench.run_seconds"
BENCH_REGRESSIONS = "bench.regressions"

#: Every canonical metric name (what RL003 validates string names
#: against at lint time, and what tests validate the registry against
#: at run time).
METRIC_NAMES = frozenset(
    value
    for name, value in list(globals().items())
    if name.isupper() and isinstance(value, str)
)
