"""Observability: metrics registry, span tracing, exporters, bottleneck
attribution (the profiling substrate of the reproduction).

The paper's argument rests on attribution — Table 3's per-function RX
cycle breakdown, Figure 5/6's per-technique savings, Section 6.3's "the
bottleneck lies in I/O".  This subpackage gives the reproduction the
same measurement machinery, permanently resident:

* :mod:`repro.obs.registry` — counters, gauges, and fixed-bucket
  histograms, cheap enough to stay enabled in the tier-1 suite;
* :mod:`repro.obs.trace` — span-based tracing of the chunk lifecycle
  (rx -> pre_shade -> gather -> gpu -> scatter -> post_shade -> tx)
  with per-stage modelled cycle and simulated-ns attribution;
* :mod:`repro.obs.exporters` — JSON-lines event log, Prometheus text
  exposition, and the human-readable Table-3-style stage table;
* :mod:`repro.obs.analyzer` — the bottleneck analyzer: capacity-view
  (limiting pipeline stage, feeding ``ThroughputReport.bottleneck``)
  and cost-view (per-stage share breakdown);
* :mod:`repro.obs.log` — the single logging path, counted into the
  registry;
* :mod:`repro.obs.names` — the canonical metric-name catalog every
  registration resolves against (enforced by ``reprolint`` RL003);
* :mod:`repro.obs.flightrec` — the flight recorder: a fixed-size ring
  of compact structured events with post-mortem JSONL dumps;
* :mod:`repro.obs.profiler` — the wall-clock stage profiler, the one
  sanctioned wall-clock reader below the CLI (reprolint RL007);
* :mod:`repro.obs.shm` — shared-memory metric slabs: the per-writer-
  process registry backend plus the aggregator that merges slabs back
  into one registry snapshot (the sharded data plane's substrate);
* :mod:`repro.obs.multiproc` — worker-fleet lifecycle over the slabs
  (imported lazily by the CLI and tests, not from here);
* :mod:`repro.obs.top` — the live ``repro top`` dashboard, including
  the multi-worker panes (imported lazily by the CLI, not from here).

See ``docs/OBSERVABILITY.md`` for the API guide and conventions.
"""

from repro.obs import names
from repro.obs.analyzer import (
    BottleneckVerdict,
    StageAttribution,
    analyze,
    attribute,
    limiting_stage,
)
from repro.obs.exporters import export_jsonl, export_prometheus, stage_table
from repro.obs.flightrec import (
    Events,
    FlightEvent,
    FlightRecorder,
    get_flightrec,
    load_dump,
    merge_dumps,
    reset_flightrec,
    set_flightrec,
)
from repro.obs.log import enable_console, get_logger
from repro.obs.profiler import (
    StageProfiler,
    get_profiler,
    reset_profiler,
    set_profiler,
)
from repro.obs.registry import (
    BATCH_SIZE_BUCKETS,
    LATENCY_NS_BUCKETS,
    WALL_NS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
    set_registry,
)
from repro.obs.shm import (
    MetricSlab,
    ShmMetricsRegistry,
    aggregate_slabs,
    merge_into,
    read_slab,
    slab_name,
)
from repro.obs.trace import (
    PIPELINE_ORDER,
    Span,
    StageCost,
    Stages,
    Tracer,
    get_tracer,
    reset_tracer,
    set_tracer,
)

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "BottleneckVerdict",
    "Counter",
    "Events",
    "FlightEvent",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LATENCY_NS_BUCKETS",
    "MetricSlab",
    "MetricsRegistry",
    "PIPELINE_ORDER",
    "ShmMetricsRegistry",
    "Span",
    "StageAttribution",
    "StageCost",
    "StageProfiler",
    "Stages",
    "Tracer",
    "WALL_NS_BUCKETS",
    "aggregate_slabs",
    "analyze",
    "attribute",
    "enable_console",
    "export_jsonl",
    "export_prometheus",
    "get_flightrec",
    "get_logger",
    "get_profiler",
    "get_registry",
    "get_tracer",
    "limiting_stage",
    "load_dump",
    "merge_dumps",
    "merge_into",
    "names",
    "read_slab",
    "reset_flightrec",
    "reset_profiler",
    "reset_registry",
    "reset_tracer",
    "set_flightrec",
    "set_profiler",
    "set_registry",
    "set_tracer",
    "slab_name",
    "stage_table",
]
