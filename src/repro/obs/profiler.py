"""The wall-clock stage profiler: where *real* time goes, per stage.

The span tracer (:mod:`repro.obs.trace`) accounts **modelled** time —
cycles and nanoseconds from the calibration constants — which is the
right axis for reproducing the paper's tables but says nothing about
where this Python process actually spends its wall clock.  The profiler
is the second axis: context-manager timers around the same pipeline
stages (pre-shade / shade / post-shade, plus the io_engine and hw
boundaries) feeding per-stage wall-time histograms.

Two design rules keep the two clocks from contaminating each other:

* **This module is the only sanctioned wall-clock reader** below the
  CLI layer.  reprolint RL007 rejects direct ``time.time()`` /
  ``perf_counter()`` calls in ``core/`` and ``io_engine/``; hot-path
  code that needs wall time calls :meth:`StageProfiler.now_ns` or wraps
  the region in :meth:`StageProfiler.track`.  RL001's determinism
  guarantee survives because wall time only ever lands in ``prof.*``
  metrics, never in simulated state.
* **Observations carry exemplars.**  Each timer stores the flight
  recorder's current event seq with its histogram sample, so a p99
  outlier bucket in ``prof.stage_wall_ns`` names the event that was in
  flight when the slow sample landed ("the GPU retry path fired").

Overhead discipline mirrors the flight recorder: disabled, ``track()``
returns a shared no-op timer (one attribute check per stage); enabled,
a timer is two ``perf_counter_ns`` reads, one subtraction, and one
histogram observe.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Dict, Optional

from repro.obs import names
from repro.obs.flightrec import FlightRecorder, get_flightrec
from repro.obs.registry import WALL_NS_BUCKETS, Histogram, get_registry


class _NullTimer:
    """The shared do-nothing timer a disabled profiler hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_TIMER = _NullTimer()


class _Timer:
    """One timed region: enter reads the clock, exit observes the delta."""

    __slots__ = ("_histogram", "_recorder", "_start")

    def __init__(self, histogram: Histogram,
                 recorder: FlightRecorder) -> None:
        self._histogram = histogram
        self._recorder = recorder
        self._start = 0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter_ns() - self._start
        self._histogram.observe(elapsed, exemplar=self._recorder.seq)


class StageProfiler:
    """Per-stage wall-time histograms over ``prof.stage_wall_ns``.

    Handles are resolved lazily per stage and cached, so instrumented
    constructors can grab timers for their stages once and the hot path
    never touches the registry dict.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._histograms: Dict[str, Histogram] = {}
        self._registry = get_registry()
        self._recorder = get_flightrec()

    # -- the sanctioned clock ------------------------------------------

    @staticmethod
    def now_ns() -> int:
        """The one wall-clock read RL007 points hot-path code at."""
        return time.perf_counter_ns()

    # -- timing ---------------------------------------------------------

    def _histogram_for(self, stage: str) -> Histogram:
        histogram = self._histograms.get(stage)
        if histogram is None:
            histogram = self._registry.histogram(
                names.PROF_STAGE_WALL_NS,
                buckets=WALL_NS_BUCKETS,
                help="wall-clock time per pipeline stage",
                stage=stage,
            )
            self._histograms[stage] = histogram
        return histogram

    def track(self, stage: str):
        """A context manager timing one region under ``stage``.

        ``with profiler.track(Stages.PRE_SHADE): ...`` — reentrant-safe
        because every call hands out a fresh timer; free when disabled.
        """
        if not self.enabled:
            return _NULL_TIMER
        return _Timer(self._histogram_for(stage), self._recorder)

    def profiled(self, stage: str) -> Callable:
        """Decorator form of :meth:`track` for whole-function stages."""

        def decorate(fn: Callable) -> Callable:
            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.track(stage):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def observe(self, stage: str, elapsed_ns: float,
                exemplar: Optional[int] = None) -> None:
        """Record an externally measured duration (pairs with
        :meth:`now_ns` when a region can't be a ``with`` block)."""
        if not self.enabled:
            return
        if exemplar is None:
            exemplar = self._recorder.seq
        self._histogram_for(stage).observe(elapsed_ns, exemplar=exemplar)

    # -- reading --------------------------------------------------------

    def stage_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-stage {count, sum_ns, mean_ns, p50, p99} for dashboards."""
        stats: Dict[str, Dict[str, float]] = {}
        for stage, histogram in sorted(self._histograms.items()):
            if histogram.count == 0:
                continue
            stats[stage] = {
                "count": histogram.count,
                "sum_ns": histogram.sum,
                "mean_ns": histogram.mean,
                "p50_ns": histogram.percentile(50),
                "p99_ns": histogram.percentile(99),
            }
        return stats


#: The process-wide default profiler.
_default_profiler = StageProfiler()


def get_profiler() -> StageProfiler:
    """The current default profiler (what instrumented code times with)."""
    return _default_profiler


def set_profiler(profiler: StageProfiler) -> StageProfiler:
    """Install a profiler as the default; returns the previous one."""
    global _default_profiler
    previous = _default_profiler
    _default_profiler = profiler
    return previous


def reset_profiler() -> StageProfiler:
    """Replace the default profiler with a fresh enabled one (returned).

    Call after ``reset_registry``/``reset_flightrec`` so the new
    profiler binds to the new registry and recorder.
    """
    profiler = StageProfiler()
    set_profiler(profiler)
    return profiler
