"""The repo's single logging path, wired into the metrics registry.

Modules obtain loggers via :func:`get_logger` instead of importing
``logging`` directly, so every log line flows through the ``repro``
hierarchy (silenced by default with a ``NullHandler``, per library
convention) and is counted per level in the metrics registry — log
volume is itself an observable.  :func:`enable_console` attaches a
stderr handler for CLI runs.
"""

from __future__ import annotations

import logging
from typing import Optional

from repro.obs import names
from repro.obs.registry import get_registry

_ROOT_NAME = "repro"


class _CountingFilter(logging.Filter):
    """Counts records per level into the current default registry."""

    def filter(self, record: logging.LogRecord) -> bool:
        get_registry().counter(
            names.LOG_RECORDS, help="log records emitted, by level",
            level=record.levelname.lower(),
        ).inc()
        return True


_counting_filter = _CountingFilter()


def _root() -> logging.Logger:
    root = logging.getLogger(_ROOT_NAME)
    if not any(isinstance(h, logging.NullHandler) for h in root.handlers):
        root.addHandler(logging.NullHandler())
    return root


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (e.g. ``repro.gen``)."""
    root = _root()
    if not name or name == _ROOT_NAME:
        logger = root
    elif name.startswith(_ROOT_NAME + "."):
        logger = logging.getLogger(name)
    else:
        logger = logging.getLogger(f"{_ROOT_NAME}.{name}")
    # Logger-level filters don't propagate to children, so each logger
    # carries the counting filter itself.
    if _counting_filter not in logger.filters:
        logger.addFilter(_counting_filter)
    return logger


def enable_console(level: int = logging.INFO) -> logging.Handler:
    """Attach a stderr handler to the ``repro`` hierarchy (CLI use)."""
    root = _root()
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
    )
    root.addHandler(handler)
    root.setLevel(level)
    return handler
