"""``python -m repro top``: the live dashboard over the metrics registry.

An ANSI refresh view (no curses dependency) that steps a workload and
redraws one screen per burst: throughput and verdict accounting, the
per-stage table with *both* clocks side by side (modelled ns/packet from
the span tracer, wall-clock p50/p99 from the profiler), queue depths,
breaker state per device, drop attribution, and the tail of the flight
recorder's event ring.  ``--once`` prints a single plain snapshot and
exits — the CI-safe mode.

Keybindings: ``q`` + Enter quits (plain line-buffered stdin — no
terminal mode fiddling); Ctrl-C always works.  ``--scenario`` watches a
chaos scenario instead of the clean forwarding path, with a fresh seed
per burst so fault schedules keep evolving on screen.

The dashboard lives in ``obs/`` deliberately: it is the one layer
allowed to read the wall clock directly (reprolint RL001/RL007 scope
``sim``/``hw``/``io_engine``/``core``/``gen``), and it imports the sim
stack lazily inside :func:`top_main` so importing ``repro.obs`` never
drags the workload generators in.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.obs import names
from repro.obs.flightrec import FlightRecorder, get_flightrec
from repro.obs.profiler import StageProfiler, get_profiler
from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.trace import PIPELINE_ORDER, Tracer, get_tracer

ANSI_CLEAR = "\x1b[2J\x1b[H"


def _labeled(registry: MetricsRegistry, name: str) -> List[Tuple[Dict, float]]:
    """All ``(labels, value)`` pairs of one counter/gauge name."""
    out = []
    for metric in registry.collect():
        if metric.name == name and hasattr(metric, "value"):
            out.append((dict(metric.labels), metric.value))
    return out


def _si(value: float) -> str:
    """1234567 -> '1.23M' (keeps the panel columns narrow)."""
    for factor, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= factor:
            return f"{value / factor:.2f}{suffix}"
    return f"{value:.0f}"


def _ns(value: float) -> str:
    """Nanoseconds -> a human scale (ns/us/ms)."""
    if value != value:  # NaN: stage not yet sampled
        return "-"
    if abs(value) >= 1e6:
        return f"{value / 1e6:.2f}ms"
    if abs(value) >= 1e3:
        return f"{value / 1e3:.1f}us"
    return f"{value:.0f}ns"


class TopView:
    """Renders one text snapshot of the whole observability state."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        profiler: Optional[StageProfiler] = None,
        recorder: Optional[FlightRecorder] = None,
    ) -> None:
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.profiler = profiler if profiler is not None else get_profiler()
        self.recorder = recorder if recorder is not None else get_flightrec()

    # -- panels ---------------------------------------------------------

    def throughput_panel(self, pps: float) -> List[str]:
        registry = self.registry
        received = registry.total(names.ROUTER_RECEIVED_PACKETS)
        forwarded = registry.total(names.ROUTER_FORWARDED_PACKETS)
        dropped = registry.total(names.ROUTER_DROPPED_PACKETS)
        slow = registry.total(names.ROUTER_SLOW_PATH_PACKETS)
        shed = registry.total(names.ROUTER_BACKPRESSURE_DROPS)
        lines = [
            f"throughput  {_si(pps)} pkt/s wall"
            f"   rx {_si(received)}  fwd {_si(forwarded)}"
            f"  drop {_si(dropped)}  slow {_si(slow)}",
        ]
        if received:
            conserved = received == forwarded + dropped + slow
            lines.append(
                f"verdicts    fwd {forwarded / received:.1%}"
                f"  drop {dropped / received:.1%}"
                f" (shed {_si(shed)})  slow {slow / received:.1%}"
                f"   conservation {'ok' if conserved else 'VIOLATED'}"
            )
        return lines

    def stage_panel(self) -> List[str]:
        """Both clocks per stage: modelled ns/pkt and wall p50/p99."""
        from repro.calib.constants import CPU

        summary = self.tracer.summary()
        wall = self.profiler.stage_stats()
        stages = [s for s in PIPELINE_ORDER if s in summary or s in wall]
        for stage in sorted(set(summary) | set(wall)):
            if stage not in stages:
                stages.append(stage)
        if not stages:
            return ["stages      (no spans or wall samples yet)"]
        lines = [
            f"{'stage':<12} {'packets':>9} {'sim ns/pkt':>11}"
            f" {'wall p50':>9} {'wall p99':>9} {'calls':>7}"
        ]
        for stage in stages:
            cost = summary.get(stage)
            stats = wall.get(stage, {})
            sim_ns = (
                f"{cost.time_ns(CPU.clock_hz) / cost.packets:.1f}"
                if cost is not None and cost.packets else "-"
            )
            lines.append(
                f"{stage:<12} {cost.packets if cost else 0:>9}"
                f" {sim_ns:>11}"
                f" {_ns(stats.get('p50_ns', float('nan'))):>9}"
                f" {_ns(stats.get('p99_ns', float('nan'))):>9}"
                f" {int(stats.get('count', 0)):>7}"
            )
        return lines

    def queue_panel(self) -> List[str]:
        registry = self.registry
        master = registry.value(names.CORE_MASTER_INPUT_DEPTH)
        rejected = registry.total(names.CORE_MASTER_INPUT_REJECTED)
        workers = _labeled(registry, names.CORE_WORKER_OUTPUT_DEPTH)
        worker_part = " ".join(
            f"w{labels.get('worker', '?')}:{value:.0f}"
            for labels, value in workers
        )
        return [
            f"queues      master depth {master:.0f}"
            f" (rejected {_si(rejected)})"
            + (f"   outputs {worker_part}" if worker_part else "")
        ]

    def breaker_panel(self) -> List[str]:
        registry = self.registry
        gauges = _labeled(registry, names.FAULTS_DEGRADED_MODE)
        if not gauges:
            return []
        opens = {
            labels.get("device", "?"): value
            for labels, value in _labeled(registry, names.FAULTS_BREAKER_OPENS)
        }
        parts = []
        for labels, value in gauges:
            device = labels.get("device", "?")
            state = "OPEN" if value else "closed"
            parts.append(f"gpu{device} {state} (opens {opens.get(device, 0):.0f})")
        stalls = registry.total(names.FAULTS_WATCHDOG_STALLS)
        return [
            "breakers    " + "  ".join(parts)
            + f"   watchdog stalls {stalls:.0f}"
        ]

    def faults_panel(self) -> List[str]:
        injected = _labeled(self.registry, names.FAULTS_INJECTED)
        if not injected:
            return []
        parts = [
            f"{labels.get('site', '?')}:{value:.0f}"
            for labels, value in sorted(
                injected, key=lambda pair: pair[0].get("site", "")
            )
        ]
        return ["faults      " + "  ".join(parts)]

    def recorder_panel(self, tail: int = 5) -> List[str]:
        recorder = self.recorder
        lines = [
            f"flightrec   seq {recorder.seq}  retained {recorder.retained}"
            f"  evicted {recorder.evicted}"
        ]
        events = recorder.events()[-tail:]
        for event in events:
            fields = " ".join(f"{k}={v:g}" for k, v in event.fields.items())
            label = f" {event.label}" if event.label else ""
            lines.append(
                f"  #{event.seq:<8} {event.kind:<12}{label} {fields}".rstrip()
            )
        return lines

    # -- the whole screen ----------------------------------------------

    def render(self, pps: float = 0.0, title: str = "repro top") -> str:
        width = 72
        sections = [
            [f"{title}  —  q + Enter or Ctrl-C to quit"],
            self.throughput_panel(pps),
            self.stage_panel(),
            self.queue_panel(),
            self.breaker_panel(),
            self.faults_panel(),
            self.recorder_panel(),
        ]
        lines: List[str] = []
        for index, section in enumerate(sections):
            if section:
                lines.extend(section)
                lines.append(("=" if index == 0 else "-") * width)
        return "\n".join(lines[:-1]) + "\n"


# ----------------------------------------------------------------------
# Workload steppers: what the dashboard watches.
# ----------------------------------------------------------------------


class _ForwardRunner:
    """Steps the clean forwarding path, one burst per refresh."""

    def __init__(self, app: str, packets: int, seed: int) -> None:
        from repro.apps.ipv4 import IPv4Forwarder
        from repro.apps.ipv6 import IPv6Forwarder
        from repro.core.framework import PacketShader
        from repro.gen.workloads import ipv4_workload, ipv6_workload

        self.packets = packets
        if app == "ipv6":
            workload = ipv6_workload(num_routes=5_000, seed=seed)
            self.router = PacketShader(IPv6Forwarder(workload.table))
            self._burst = lambda: workload.generator.ipv6_burst(packets, 78)
        else:
            workload = ipv4_workload(num_routes=5_000, seed=seed)
            self.router = PacketShader(IPv4Forwarder(workload.table))
            self._burst = lambda: workload.generator.ipv4_burst(packets, 64)
        self.title = f"repro top — {app} forwarding"

    def step(self) -> int:
        self.router.process_frames(self._burst())
        return self.packets


class _ChaosRunner:
    """Steps a chaos scenario, reseeding each burst so faults keep firing."""

    def __init__(self, scenario: str, packets: int, seed: int) -> None:
        from repro.faults.scenarios import run_scenario

        self._run = run_scenario
        self.scenario = scenario
        self.packets = packets
        self.seed = seed
        self.title = f"repro top — chaos scenario {scenario!r}"

    def step(self) -> int:
        self._run(self.scenario, seed=self.seed, packets=self.packets)
        self.seed += 1
        return self.packets


def _quit_requested() -> bool:
    """Non-blocking check for a ``q`` line on a tty stdin."""
    import select

    try:
        if not sys.stdin.isatty():
            return False
        ready, _, _ = select.select([sys.stdin], [], [], 0)
    except (OSError, ValueError):
        return False
    if ready:
        return sys.stdin.readline().strip().lower().startswith("q")
    return False


def top_main(argv=None) -> int:
    """Entry point for ``python -m repro top``."""
    import argparse

    from repro.obs import (
        reset_flightrec,
        reset_profiler,
        reset_registry,
        reset_tracer,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description="Live dashboard over the metrics registry, profiler, "
        "and flight recorder while a workload runs.",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="run one burst, print one plain snapshot, exit (CI mode)",
    )
    parser.add_argument(
        "--iterations", type=int, default=0,
        help="bursts to run before exiting (default: until quit)",
    )
    parser.add_argument(
        "--interval", type=float, default=0.5,
        help="seconds between refreshes (default: 0.5)",
    )
    parser.add_argument(
        "--packets", type=int, default=2048,
        help="packets per burst (default: 2048)",
    )
    parser.add_argument(
        "--app", choices=("ipv4", "ipv6"), default="ipv4",
        help="forwarding application to run (default: ipv4)",
    )
    parser.add_argument(
        "--scenario", default=None,
        help="watch a chaos scenario instead of clean forwarding",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="workload seed (default: 1)",
    )
    args = parser.parse_args(argv)
    if args.packets <= 0:
        parser.error("packets must be positive")
    if args.scenario is not None:
        from repro.faults.scenarios import SCENARIOS

        if args.scenario not in SCENARIOS:
            parser.error(
                f"unknown scenario {args.scenario!r} "
                f"(choose from {', '.join(sorted(SCENARIOS))})"
            )
    reset_registry()
    reset_tracer()
    reset_flightrec()
    reset_profiler()
    if args.scenario is not None:
        runner = _ChaosRunner(args.scenario, args.packets, args.seed)
    else:
        runner = _ForwardRunner(args.app, args.packets, args.seed)
    view = TopView()
    iterations = 1 if args.once else args.iterations
    count = 0
    try:
        while True:
            start = StageProfiler.now_ns()
            packets = runner.step()
            elapsed = max(1, StageProfiler.now_ns() - start)
            pps = packets * 1e9 / elapsed
            screen = view.render(pps, title=runner.title)
            if args.once:
                sys.stdout.write(screen)
            else:
                sys.stdout.write(ANSI_CLEAR + screen)
                sys.stdout.flush()
            count += 1
            if iterations and count >= iterations:
                break
            if _quit_requested():
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        sys.stdout.write("\n")
    return 0
