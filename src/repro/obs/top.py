"""``python -m repro top``: the live dashboard over the metrics registry.

An ANSI refresh view (no curses dependency) that steps a workload and
redraws one screen per burst: throughput and verdict accounting, the
per-stage table with *both* clocks side by side (modelled ns/packet from
the span tracer, wall-clock p50/p99 from the profiler), queue depths,
breaker state per device, drop attribution, and the tail of the flight
recorder's event ring.  ``--once`` prints a single plain snapshot and
exits — the CI-safe mode.

``--workers N`` switches to the multi-worker dashboard: N real OS
processes run the workload over shared-memory metric slabs
(:mod:`repro.obs.multiproc`) while this process renders one pane per
worker — throughput, stage clocks, queue depth, breaker state — plus an
aggregate row, all read live from the slabs.  ``--json`` prints one
machine-readable snapshot (per-worker + aggregate + the ingress
conservation identity) instead of a screen and exits nonzero if the
identities are violated — the CI hook.  ``--dump-dir`` collects each
worker's flight-recorder dump on exit, ready for
``python -m repro flightrec merge``.

Keybindings: ``q`` + Enter quits (plain line-buffered stdin — no
terminal mode fiddling); Ctrl-C always works.  ``--scenario`` watches a
chaos scenario instead of the clean forwarding path, with a fresh seed
per burst so fault schedules keep evolving on screen.

The dashboard lives in ``obs/`` deliberately: it is the one layer
allowed to read the wall clock directly (reprolint RL001/RL007 scope
``sim``/``hw``/``io_engine``/``core``/``gen``), and it imports the sim
stack lazily inside :func:`top_main` so importing ``repro.obs`` never
drags the workload generators in.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.obs import names
from repro.obs.flightrec import FlightRecorder, get_flightrec
from repro.obs.profiler import StageProfiler, get_profiler
from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.trace import PIPELINE_ORDER, Tracer, get_tracer

ANSI_CLEAR = "\x1b[2J\x1b[H"


def _labeled(registry: MetricsRegistry, name: str) -> List[Tuple[Dict, float]]:
    """All ``(labels, value)`` pairs of one counter/gauge name."""
    out = []
    for metric in registry.collect():
        if metric.name == name and hasattr(metric, "value"):
            out.append((dict(metric.labels), metric.value))
    return out


def _si(value: float) -> str:
    """1234567 -> '1.23M' (keeps the panel columns narrow)."""
    for factor, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= factor:
            return f"{value / factor:.2f}{suffix}"
    return f"{value:.0f}"


def _ns(value: float) -> str:
    """Nanoseconds -> a human scale (ns/us/ms)."""
    if value != value:  # NaN: stage not yet sampled
        return "-"
    if abs(value) >= 1e6:
        return f"{value / 1e6:.2f}ms"
    if abs(value) >= 1e3:
        return f"{value / 1e3:.1f}us"
    return f"{value:.0f}ns"


class TopView:
    """Renders one text snapshot of the whole observability state."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        profiler: Optional[StageProfiler] = None,
        recorder: Optional[FlightRecorder] = None,
    ) -> None:
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.profiler = profiler if profiler is not None else get_profiler()
        self.recorder = recorder if recorder is not None else get_flightrec()

    # -- panels ---------------------------------------------------------

    def throughput_panel(self, pps: float) -> List[str]:
        registry = self.registry
        received = registry.total(names.ROUTER_RECEIVED_PACKETS)
        forwarded = registry.total(names.ROUTER_FORWARDED_PACKETS)
        dropped = registry.total(names.ROUTER_DROPPED_PACKETS)
        slow = registry.total(names.ROUTER_SLOW_PATH_PACKETS)
        shed = registry.total(names.ROUTER_BACKPRESSURE_DROPS)
        lines = [
            f"throughput  {_si(pps)} pkt/s wall"
            f"   rx {_si(received)}  fwd {_si(forwarded)}"
            f"  drop {_si(dropped)}  slow {_si(slow)}",
        ]
        if received:
            conserved = received == forwarded + dropped + slow
            lines.append(
                f"verdicts    fwd {forwarded / received:.1%}"
                f"  drop {dropped / received:.1%}"
                f" (shed {_si(shed)})  slow {slow / received:.1%}"
                f"   conservation {'ok' if conserved else 'VIOLATED'}"
            )
        return lines

    def stage_panel(self) -> List[str]:
        """Both clocks per stage: modelled ns/pkt and wall p50/p99."""
        from repro.calib.constants import CPU

        summary = self.tracer.summary()
        wall = self.profiler.stage_stats()
        stages = [s for s in PIPELINE_ORDER if s in summary or s in wall]
        for stage in sorted(set(summary) | set(wall)):
            if stage not in stages:
                stages.append(stage)
        if not stages:
            return ["stages      (no spans or wall samples yet)"]
        lines = [
            f"{'stage':<12} {'packets':>9} {'sim ns/pkt':>11}"
            f" {'wall p50':>9} {'wall p99':>9} {'calls':>7}"
        ]
        for stage in stages:
            cost = summary.get(stage)
            stats = wall.get(stage, {})
            sim_ns = (
                f"{cost.time_ns(CPU.clock_hz) / cost.packets:.1f}"
                if cost is not None and cost.packets else "-"
            )
            lines.append(
                f"{stage:<12} {cost.packets if cost else 0:>9}"
                f" {sim_ns:>11}"
                f" {_ns(stats.get('p50_ns', float('nan'))):>9}"
                f" {_ns(stats.get('p99_ns', float('nan'))):>9}"
                f" {int(stats.get('count', 0)):>7}"
            )
        return lines

    def queue_panel(self) -> List[str]:
        registry = self.registry
        master = registry.value(names.CORE_MASTER_INPUT_DEPTH)
        rejected = registry.total(names.CORE_MASTER_INPUT_REJECTED)
        workers = _labeled(registry, names.CORE_WORKER_OUTPUT_DEPTH)
        worker_part = " ".join(
            f"w{labels.get('worker', '?')}:{value:.0f}"
            for labels, value in workers
        )
        return [
            f"queues      master depth {master:.0f}"
            f" (rejected {_si(rejected)})"
            + (f"   outputs {worker_part}" if worker_part else "")
        ]

    def breaker_panel(self) -> List[str]:
        registry = self.registry
        gauges = _labeled(registry, names.FAULTS_DEGRADED_MODE)
        if not gauges:
            return []
        opens = {
            labels.get("device", "?"): value
            for labels, value in _labeled(registry, names.FAULTS_BREAKER_OPENS)
        }
        parts = []
        for labels, value in gauges:
            device = labels.get("device", "?")
            state = "OPEN" if value else "closed"
            parts.append(f"gpu{device} {state} (opens {opens.get(device, 0):.0f})")
        stalls = registry.total(names.FAULTS_WATCHDOG_STALLS)
        return [
            "breakers    " + "  ".join(parts)
            + f"   watchdog stalls {stalls:.0f}"
        ]

    def faults_panel(self) -> List[str]:
        injected = _labeled(self.registry, names.FAULTS_INJECTED)
        if not injected:
            return []
        parts = [
            f"{labels.get('site', '?')}:{value:.0f}"
            for labels, value in sorted(
                injected, key=lambda pair: pair[0].get("site", "")
            )
        ]
        return ["faults      " + "  ".join(parts)]

    def recorder_panel(self, tail: int = 5) -> List[str]:
        recorder = self.recorder
        lines = [
            f"flightrec   seq {recorder.seq}  retained {recorder.retained}"
            f"  evicted {recorder.evicted}"
        ]
        events = recorder.events()[-tail:]
        for event in events:
            fields = " ".join(f"{k}={v:g}" for k, v in event.fields.items())
            label = f" {event.label}" if event.label else ""
            lines.append(
                f"  #{event.seq:<8} {event.kind:<12}{label} {fields}".rstrip()
            )
        return lines

    # -- the whole screen ----------------------------------------------

    def render(self, pps: float = 0.0, title: str = "repro top") -> str:
        width = 72
        sections = [
            [f"{title}  —  q + Enter or Ctrl-C to quit"],
            self.throughput_panel(pps),
            self.stage_panel(),
            self.queue_panel(),
            self.breaker_panel(),
            self.faults_panel(),
            self.recorder_panel(),
        ]
        lines: List[str] = []
        for index, section in enumerate(sections):
            if section:
                lines.extend(section)
                lines.append(("=" if index == 0 else "-") * width)
        return "\n".join(lines[:-1]) + "\n"


# ----------------------------------------------------------------------
# Multi-worker summaries.  Everything below reads *registries only* — no
# tracer, profiler, or recorder objects — so it works identically on the
# live in-process registry and on snapshots read out of another
# process's shared-memory slab, where no such objects exist on this side
# of the fork.
# ----------------------------------------------------------------------


def wall_stage_stats(registry: MetricsRegistry) -> Dict[str, Dict[str, float]]:
    """Profiler-style stage stats recovered from ``prof.stage_wall_ns``.

    The profiler's own ``stage_stats()`` needs the profiler object; this
    recovers the same shape from the histograms it left in any registry.
    """
    stats: Dict[str, Dict[str, float]] = {}
    for metric in registry.collect():
        if metric.name != names.PROF_STAGE_WALL_NS:
            continue
        if not hasattr(metric, "percentile") or metric.count == 0:
            continue
        stage = dict(metric.labels).get("stage", "?")
        stats[stage] = {
            "count": float(metric.count),
            "sum_ns": float(metric.sum),
            "mean_ns": float(metric.mean),
            "p50_ns": float(metric.percentile(50)),
            "p99_ns": float(metric.percentile(99)),
        }
    return stats


def ingress_identity(registry: MetricsRegistry) -> Dict[str, object]:
    """The shard-merge conservation identity, from counters alone.

    Every frame the driver sees is either dropped at ingress or written
    to the RX buffer, and everything written is either shed by overload
    control or received by the router — so on a drained system
    ``injected == rx_dropped + rx_shed + received``.  Workloads that
    bypass the driver (``--app`` forwarding feeds the router directly)
    have ``injected == 0``; the identity then falls back to the
    router's own verdict conservation.
    """
    rx = registry.total(names.IO_DRIVER_RX_PACKETS)
    drops = registry.total(names.IO_DRIVER_RX_DROPS)
    shed = registry.total(names.OVERLOAD_SHED_PACKETS)
    received = registry.total(names.ROUTER_RECEIVED_PACKETS)
    forwarded = registry.total(names.ROUTER_FORWARDED_PACKETS)
    dropped = registry.total(names.ROUTER_DROPPED_PACKETS)
    slow = registry.total(names.ROUTER_SLOW_PATH_PACKETS)
    conserved = received == forwarded + dropped + slow
    injected = rx + drops
    ok = conserved and (injected == 0 or rx == shed + received)
    return {
        "injected": int(injected),
        "rx_dropped": int(drops),
        "rx_shed": int(shed),
        "received": int(received),
        "ok": bool(ok),
    }


def registry_summary(registry: MetricsRegistry) -> Dict[str, object]:
    """One worker's machine-readable panel, from its registry alone."""
    received = registry.total(names.ROUTER_RECEIVED_PACKETS)
    forwarded = registry.total(names.ROUTER_FORWARDED_PACKETS)
    dropped = registry.total(names.ROUTER_DROPPED_PACKETS)
    slow = registry.total(names.ROUTER_SLOW_PATH_PACKETS)
    breakers_open = sum(
        1 for _, value in _labeled(registry, names.FAULTS_DEGRADED_MODE)
        if value
    )
    return {
        "received": int(received),
        "forwarded": int(forwarded),
        "dropped": int(dropped),
        "slow_path": int(slow),
        "shed": int(registry.total(names.OVERLOAD_SHED_PACKETS)),
        "backpressure_drops": int(
            registry.total(names.ROUTER_BACKPRESSURE_DROPS)
        ),
        "rx_packets": int(registry.total(names.IO_DRIVER_RX_PACKETS)),
        "rx_drops": int(registry.total(names.IO_DRIVER_RX_DROPS)),
        "queue_depth": int(registry.value(names.CORE_MASTER_INPUT_DEPTH)),
        "breakers_open": breakers_open,
        "conservation_ok": bool(received == forwarded + dropped + slow),
        "stages": wall_stage_stats(registry),
    }


def fleet_snapshot(
    per_worker: Dict[int, MetricsRegistry], aggregate: MetricsRegistry,
) -> Dict[str, object]:
    """The ``--json`` payload: per-worker panes, aggregate, identity."""
    return {
        "schema": 1,
        "workers": {
            str(wid): registry_summary(registry)
            for wid, registry in sorted(per_worker.items())
        },
        "aggregate": registry_summary(aggregate),
        "identity": ingress_identity(aggregate),
    }


def _fleet_row(tag: str, summary: Dict[str, object]) -> str:
    received = int(summary["received"])

    def pct(key: str) -> str:
        return f"{int(summary[key]) / received:.1%}" if received else "-"

    stages: Dict[str, Dict[str, float]] = summary["stages"]
    worst = max(
        stages.items(), key=lambda kv: kv[1]["p99_ns"], default=None,
    )
    worst_txt = f"{worst[0]} {_ns(worst[1]['p99_ns'])}" if worst else "-"
    brk = "OPEN" if summary["breakers_open"] else "-"
    return (
        f"{tag:<6} {_si(received):>8} {pct('forwarded'):>7}"
        f" {pct('dropped'):>7} {pct('slow_path'):>7}"
        f" {_si(int(summary['shed'])):>7} {int(summary['queue_depth']):>6}"
        f" {worst_txt:>18} {brk:>5}"
    )


def render_fleet(
    per_worker: Dict[int, MetricsRegistry],
    aggregate: MetricsRegistry,
    title: str = "repro top — workers",
    pps: float = 0.0,
) -> str:
    """One screen: a pane row per worker plus the aggregate row."""
    width = 78
    lines = [f"{title}  —  q + Enter or Ctrl-C to quit", "=" * width]
    lines.append(
        f"{'':<6} {'rx':>8} {'fwd':>7} {'drop':>7} {'slow':>7}"
        f" {'shed':>7} {'depth':>6} {'slowest p99':>18} {'brk':>5}"
    )
    for wid, registry in sorted(per_worker.items()):
        lines.append(_fleet_row(f"w{wid}", registry_summary(registry)))
    lines.append("-" * width)
    lines.append(_fleet_row("all", registry_summary(aggregate)))
    identity = ingress_identity(aggregate)
    lines.append(
        f"identity    injected {_si(identity['injected'])}"
        f" = rx_drop {_si(identity['rx_dropped'])}"
        f" + shed {_si(identity['rx_shed'])}"
        f" + received {_si(identity['received'])}"
        f"   {'ok' if identity['ok'] else 'VIOLATED'}"
        + (f"   {_si(pps)} pkt/s" if pps else "")
    )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Workload steppers: what the dashboard watches.
# ----------------------------------------------------------------------


class _ForwardRunner:
    """Steps the clean forwarding path, one burst per refresh."""

    def __init__(self, app: str, packets: int, seed: int) -> None:
        from repro.apps.ipv4 import IPv4Forwarder
        from repro.apps.ipv6 import IPv6Forwarder
        from repro.core.framework import PacketShader
        from repro.gen.workloads import ipv4_workload, ipv6_workload

        self.packets = packets
        if app == "ipv6":
            workload = ipv6_workload(num_routes=5_000, seed=seed)
            self.router = PacketShader(IPv6Forwarder(workload.table))
            self._burst = lambda: workload.generator.ipv6_burst(packets, 78)
        else:
            workload = ipv4_workload(num_routes=5_000, seed=seed)
            self.router = PacketShader(IPv4Forwarder(workload.table))
            self._burst = lambda: workload.generator.ipv4_burst(packets, 64)
        self.title = f"repro top — {app} forwarding"

    def step(self) -> int:
        self.router.process_frames(self._burst())
        return self.packets


class _ChaosRunner:
    """Steps a chaos scenario, reseeding each burst so faults keep firing."""

    def __init__(self, scenario: str, packets: int, seed: int) -> None:
        from repro.faults.scenarios import run_scenario

        self._run = run_scenario
        self.scenario = scenario
        self.packets = packets
        self.seed = seed
        self.title = f"repro top — chaos scenario {scenario!r}"

    def step(self) -> int:
        self._run(self.scenario, seed=self.seed, packets=self.packets)
        self.seed += 1
        return self.packets


def _fleet_main(args) -> int:
    """``--workers N``: supervise a fleet and render/report it.

    Exit status is nonzero when any worker fails or the merged ingress
    identity is violated — the CI smoke job asserts on this alone.
    """
    import json

    from repro.obs.multiproc import WorkerFleet, WorkerSpec

    one_shot = args.once or args.json
    iterations = args.iterations or (1 if one_shot else 0)
    spec = WorkerSpec(
        app=args.app,
        scenario=args.scenario,
        packets=args.packets,
        seed=args.seed,
        iterations=iterations,
        interval=0.0 if one_shot else args.interval,
    )
    title = (
        f"repro top — {args.workers} workers — "
        f"{args.scenario or args.app + ' forwarding'}"
    )
    fleet = WorkerFleet(args.workers, spec, dump_dir=args.dump_dir)
    try:
        fleet.start()
        if iterations:
            fleet.join(timeout=120.0)
        else:
            last_received = 0.0
            last_ns = StageProfiler.now_ns()
            try:
                while fleet.alive():
                    aggregate = fleet.aggregate()
                    now = StageProfiler.now_ns()
                    received = aggregate.total(names.ROUTER_RECEIVED_PACKETS)
                    pps = (
                        (received - last_received) * 1e9
                        / max(1, now - last_ns)
                    )
                    last_received, last_ns = received, now
                    screen = render_fleet(
                        fleet.per_worker(), aggregate, title=title, pps=pps,
                    )
                    sys.stdout.write(ANSI_CLEAR + screen)
                    sys.stdout.flush()
                    if _quit_requested():
                        break
                    time.sleep(args.interval)
            except KeyboardInterrupt:
                sys.stdout.write("\n")
        fleet.request_stop()
        fleet.join(timeout=10.0)
        # Snapshots are plain registries (copied out of the slabs), so
        # they stay valid after the segments are unlinked below.
        per_worker = fleet.per_worker()
        aggregate = fleet.aggregate()
        exitcodes = fleet.exitcodes()
    finally:
        fleet.request_stop()
        fleet.join(timeout=10.0)
        fleet.close()
    identity = ingress_identity(aggregate)
    status = 0
    if not identity["ok"] or any(code != 0 for code in exitcodes):
        status = 1
    if args.json:
        snapshot = fleet_snapshot(per_worker, aggregate)
        snapshot["exitcodes"] = exitcodes
        snapshot["dumps"] = [str(path) for path in fleet.dump_paths()]
        sys.stdout.write(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    else:
        sys.stdout.write(render_fleet(per_worker, aggregate, title=title))
    return status


def _quit_requested() -> bool:
    """Non-blocking check for a ``q`` line on a tty stdin."""
    import select

    try:
        if not sys.stdin.isatty():
            return False
        ready, _, _ = select.select([sys.stdin], [], [], 0)
    except (OSError, ValueError):
        return False
    if ready:
        return sys.stdin.readline().strip().lower().startswith("q")
    return False


def top_main(argv=None) -> int:
    """Entry point for ``python -m repro top``."""
    import argparse

    from repro.obs import (
        reset_flightrec,
        reset_profiler,
        reset_registry,
        reset_tracer,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description="Live dashboard over the metrics registry, profiler, "
        "and flight recorder while a workload runs.",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="run one burst, print one plain snapshot, exit (CI mode)",
    )
    parser.add_argument(
        "--iterations", type=int, default=0,
        help="bursts to run before exiting (default: until quit)",
    )
    parser.add_argument(
        "--interval", type=float, default=0.5,
        help="seconds between refreshes (default: 0.5)",
    )
    parser.add_argument(
        "--packets", type=int, default=2048,
        help="packets per burst (default: 2048)",
    )
    parser.add_argument(
        "--app", choices=("ipv4", "ipv6"), default="ipv4",
        help="forwarding application to run (default: ipv4)",
    )
    parser.add_argument(
        "--scenario", default=None,
        help="watch a chaos scenario instead of clean forwarding",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="workload seed (default: 1)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="run N worker processes over shared-memory metric slabs and "
        "render the multi-worker dashboard (default: 0 = in-process)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print one machine-readable snapshot (per-worker panes, "
        "aggregate, ingress identity) instead of a screen; exits nonzero "
        "if the conservation identities are violated",
    )
    parser.add_argument(
        "--dump-dir", default=None,
        help="directory for per-worker flight-recorder dumps on exit "
        "(input for `python -m repro flightrec merge`)",
    )
    args = parser.parse_args(argv)
    if args.packets <= 0:
        parser.error("packets must be positive")
    if args.workers < 0:
        parser.error("workers must be >= 0")
    if args.scenario is not None:
        from repro.faults.scenarios import SCENARIOS

        if args.scenario not in SCENARIOS:
            parser.error(
                f"unknown scenario {args.scenario!r} "
                f"(choose from {', '.join(sorted(SCENARIOS))})"
            )
    if args.workers:
        return _fleet_main(args)
    reset_registry()
    reset_tracer()
    reset_flightrec()
    reset_profiler()
    if args.scenario is not None:
        runner = _ChaosRunner(args.scenario, args.packets, args.seed)
    else:
        runner = _ForwardRunner(args.app, args.packets, args.seed)
    view = TopView()
    one_shot = args.once or args.json
    iterations = 1 if one_shot else args.iterations
    count = 0
    try:
        while True:
            start = StageProfiler.now_ns()
            packets = runner.step()
            elapsed = max(1, StageProfiler.now_ns() - start)
            pps = packets * 1e9 / elapsed
            if args.json:
                pass  # one JSON document at the end, no screens
            elif args.once:
                sys.stdout.write(view.render(pps, title=runner.title))
            else:
                sys.stdout.write(
                    ANSI_CLEAR + view.render(pps, title=runner.title)
                )
                sys.stdout.flush()
            count += 1
            if iterations and count >= iterations:
                break
            if _quit_requested():
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        sys.stdout.write("\n")
    if args.dump_dir:
        from pathlib import Path

        dump_dir = Path(args.dump_dir)
        dump_dir.mkdir(parents=True, exist_ok=True)
        get_flightrec().dump(
            dump_dir / "flightrec-w0.jsonl", reason="worker-0",
        )
    if args.json:
        import json

        registry = get_registry()
        snapshot = fleet_snapshot({0: registry}, registry)
        sys.stdout.write(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        return 0 if snapshot["identity"]["ok"] else 1
    return 0
