"""Bottleneck attribution: from recorded stage costs to "the bottleneck
lies in X".

Two complementary views, matching how the paper argues:

* **capacity view** (:func:`limiting_stage`) — given pipeline stages with
  packets/s capacities (the steady-state solver's inputs), the bottleneck
  is the stage with the lowest effective capacity.  This is what fills
  ``ThroughputReport.bottleneck`` for the Figure 6/11 paths — computed,
  not hand-written.
* **cost view** (:func:`attribute`) — given a traced run's per-stage
  accumulated costs (:class:`repro.obs.trace.StageCost`), convert every
  stage to time-per-packet (cycles at the CPU clock, plus simulated ns)
  and rank by share — the Table 3 / Section 6.3 style breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.calib.constants import CPU
from repro.obs.trace import PIPELINE_ORDER, StageCost


@dataclass(frozen=True)
class StageAttribution:
    """One row of a per-stage cost breakdown."""

    stage: str
    spans: int
    packets: int
    cycles_per_packet: float
    ns_per_packet: float
    #: Total per-packet time with cycles converted at the CPU clock.
    time_ns_per_packet: float
    #: Fraction of the summed per-packet time across all stages.
    share: float


@dataclass(frozen=True)
class BottleneckVerdict:
    """The analyzer's answer: the limiting stage and the evidence."""

    stage: str
    rows: List[StageAttribution]

    @property
    def share(self) -> float:
        for row in self.rows:
            if row.stage == self.stage:
                return row.share
        return 0.0


def limiting_stage(stages: Iterable) -> object:
    """The stage with the lowest effective capacity (ties: first wins).

    Accepts anything with ``name`` and ``effective_capacity_pps``
    attributes (duck-typed so :class:`repro.sim.pipeline.Stage` works
    without an import cycle).
    """
    stages = list(stages)
    if not stages:
        raise ValueError("no stages to analyze")
    best = stages[0]
    for stage in stages[1:]:
        if stage.effective_capacity_pps < best.effective_capacity_pps:
            best = stage
    return best


def _ordered(summary: Dict[str, StageCost]) -> List[StageCost]:
    order = {name: i for i, name in enumerate(PIPELINE_ORDER)}
    return sorted(
        summary.values(),
        key=lambda c: (order.get(c.stage, len(order)), c.stage),
    )


def attribute(
    summary: Dict[str, StageCost],
    clock_hz: float = CPU.clock_hz,
) -> List[StageAttribution]:
    """Per-stage time-per-packet breakdown, in pipeline order.

    Stages that saw zero packets but nonzero cost (per-launch overheads
    recorded without a packet count) are normalised by the run's total
    packet volume so their share is still comparable.
    """
    costs = _ordered(summary)
    total_packets = max((c.packets for c in costs), default=0)
    per_stage_time: List[float] = []
    for cost in costs:
        packets = cost.packets or total_packets
        time_ns = cost.time_ns(clock_hz)
        per_stage_time.append(time_ns / packets if packets else 0.0)
    total_time = sum(per_stage_time)
    rows = []
    for cost, time_per_packet in zip(costs, per_stage_time):
        packets = cost.packets or total_packets
        rows.append(
            StageAttribution(
                stage=cost.stage,
                spans=cost.spans,
                packets=cost.packets,
                cycles_per_packet=cost.cycles / packets if packets else 0.0,
                ns_per_packet=cost.ns / packets if packets else 0.0,
                time_ns_per_packet=time_per_packet,
                share=time_per_packet / total_time if total_time else 0.0,
            )
        )
    return rows


def analyze(
    summary: Dict[str, StageCost],
    clock_hz: float = CPU.clock_hz,
) -> Optional[BottleneckVerdict]:
    """Full cost-view analysis: breakdown rows plus the limiting stage.

    The limiting stage is the one with the largest per-packet time — in
    a serial pipeline the stage you would have to speed up first.
    Returns None for an empty summary.
    """
    rows = attribute(summary, clock_hz)
    if not rows:
        return None
    worst = max(rows, key=lambda r: r.time_ns_per_packet)
    return BottleneckVerdict(stage=worst.stage, rows=rows)
