"""The flight recorder: an always-on ring buffer of structured events.

Aggregate metrics answer "how much"; they cannot answer "what happened
just before the breaker opened".  The flight recorder fills that gap the
way an aircraft FDR does: every instrumented layer notes compact
structured events — chunk verdict summaries, fault firings, breaker
transitions, queue-depth samples, backpressure sheds, livelock wakeups —
into a fixed-size ring that the hot path writes with near-zero overhead
(one attribute check, one tuple build, one list store).  When something
goes wrong the faults layer triggers a **post-mortem dump**: the ring's
retained window plus a snapshot of the metrics registry, as JSONL, so
the last N events before a breaker-open/watchdog stall are preserved as
an artifact even though the process keeps running.

Design rules:

* **bounded** — the ring is a preallocated list; a week-long run retains
  exactly ``capacity`` events and evicts the oldest, never growing;
* **compact** — an event is a plain tuple ``(seq, kind, label, data)``;
  field names are attached only on the read side (:data:`KIND_FIELDS`),
  so recording does no dict building;
* **attributable** — ``note()`` returns the event's monotonically
  increasing ``seq``; the wall-clock profiler stores these ids as
  histogram exemplars, linking "this chunk was slow" to "these events
  were in flight at the time";
* **reconcilable** — a dump's first line snapshots the registry, so a
  replay can check that the recorded events and the metric counters tell
  the same story (``repro flightrec replay`` does exactly that).

The process-wide default recorder follows the registry/tracer lifecycle:
:func:`get_flightrec` / :func:`set_flightrec` / :func:`reset_flightrec`.
Recording is deliberately *not* named ``record`` — that verb belongs to
the span tracer (and reprolint RL003 checks its stage names).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, IO, Iterable, Iterator, List, Optional, Tuple, Union

from repro.obs import names
from repro.obs.registry import MetricsRegistry, get_registry


class Events:
    """Canonical event kinds (one per instrumented boundary)."""

    #: One chunk finished the workflow; data = (packets, forwarded,
    #: dropped, slow_path, ctx_writer, ctx_seq) — the trailing pair is
    #: the chunk's trace context: the writer and RX-event seq it was
    #: born from (``Chunk.trace_ctx``).
    CHUNK = "chunk"
    #: A chunk was shed after bounded backpressure gave up; data =
    #: (packets_shed,).
    SHED = "shed"
    #: A GPU launch failed and was retried; label = device, data =
    #: (attempt,).
    GPU_RETRY = "gpu_retry"
    #: A chunk was shaded on the master's CPU because the GPU path
    #: failed; data = (packets,).
    GPU_FALLBACK = "gpu_fallback"
    #: An injected fault fired; label = fault site.
    FAULT = "fault"
    #: A circuit breaker changed state; label = device, data absent —
    #: the new state rides in ``label`` as ``<device>:<state>``.
    BREAKER = "breaker"
    #: The watchdog declared a stall (no progress across its threshold).
    WATCHDOG = "watchdog"
    #: Master input queue depth after a put/get; label = "master",
    #: data = (depth, ctx_writer, ctx_seq) — the enqueued chunk's trace
    #: context crosses the queue boundary with it.
    QUEUE = "queue"
    #: A worker fetched a chunk through the I/O engine; label =
    #: "<nic>:<queue>", data = (packets,).
    RX = "rx"
    #: Livelock controller transition; label = "wakeup" or "drain".
    LIVELOCK = "livelock"
    #: A post-mortem dump was written; label = the trigger reason.
    DUMP = "dump"
    #: The overload controller shed packets at the RX ring before they
    #: entered the router; label = traffic class ("attack" / "new_flow" /
    #: "established"), data = (packets,).
    RX_SHED = "rx_shed"
    #: The overload controller resized the chunk capacity; label =
    #: "grow" or "shrink", data = (new_capacity,).
    CHUNK_RESIZE = "chunk_resize"
    #: The bounded flow table evicted or refused entries; label =
    #: "evict" or "reject", data = (count,).
    FLOW_EVICT = "flow_evict"


#: Read-side field names per kind (the write side stores bare tuples).
KIND_FIELDS: Dict[str, Tuple[str, ...]] = {
    Events.CHUNK: ("packets", "forwarded", "dropped", "slow_path",
                   "ctx_writer", "ctx_seq"),
    Events.SHED: ("packets",),
    Events.GPU_RETRY: ("attempt",),
    Events.GPU_FALLBACK: ("packets",),
    Events.FAULT: (),
    Events.BREAKER: (),
    Events.WATCHDOG: (),
    Events.QUEUE: ("depth", "ctx_writer", "ctx_seq"),
    Events.RX: ("packets",),
    Events.LIVELOCK: (),
    Events.DUMP: (),
    Events.RX_SHED: ("packets",),
    Events.CHUNK_RESIZE: ("capacity",),
    Events.FLOW_EVICT: ("count",),
}

#: Default ring capacity: generous enough that a full chaos scenario
#: (thousands of events) is retained end to end, small enough that the
#: preallocated list is trivial (~0.5 MB of pointers).
DEFAULT_CAPACITY = 65536


class FlightEvent:
    """One recorded event, hydrated with field names (read side only).

    ``epoch_ns`` is the gen-3 merge stamp: ``perf_counter_ns()`` at
    ``note()`` time (CLOCK_MONOTONIC on Linux — system-wide, so stamps
    from different worker processes are directly comparable).  Events
    constructed without one (old dumps, hand-built fixtures) serialize
    without a ``t_ns`` field, keeping gen-2 dumps byte-compatible.
    """

    __slots__ = ("seq", "kind", "label", "data", "epoch_ns")

    def __init__(self, seq: int, kind: str, label: str,
                 data: Tuple[float, ...],
                 epoch_ns: Optional[int] = None) -> None:
        self.seq = seq
        self.kind = kind
        self.label = label
        self.data = data
        self.epoch_ns = epoch_ns

    @property
    def fields(self) -> Dict[str, float]:
        return dict(zip(KIND_FIELDS.get(self.kind, ()), self.data))

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "type": "event", "seq": self.seq, "kind": self.kind,
        }
        if self.label:
            record["label"] = self.label
        if self.epoch_ns is not None:
            record["t_ns"] = self.epoch_ns
        record.update(self.fields)
        # Extra positional data beyond the schema keeps raw indices so
        # nothing is silently lost.
        schema = KIND_FIELDS.get(self.kind, ())
        for index in range(len(schema), len(self.data)):
            record[f"data{index}"] = self.data[index]
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlightEvent({self.to_dict()!r})"


class FlightRecorder:
    """The fixed-size event ring plus its dump machinery.

    ``note()`` is the hot path: with recording disabled it is a single
    attribute check; enabled, it is one tuple build and one list store
    (plus one counter add for the ``flightrec.events`` metric).
    """

    def __init__(self, enabled: bool = True,
                 capacity: int = DEFAULT_CAPACITY,
                 writer_id: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if writer_id < 0:
            raise ValueError("writer_id must be >= 0")
        self.enabled = enabled
        self.capacity = capacity
        #: Which worker process owns this ring (0 = the single-process
        #: default).  Stamped into dumps so the k-way merge can order
        #: and attribute events across workers.
        self.writer_id = writer_id
        self._ring: List[Optional[Tuple]] = [None] * capacity
        self._seq = 0
        #: Post-mortem arming: dumps go here when set (None = disarmed).
        self.postmortem_dir: Optional[Path] = None
        #: Remaining automatic dumps (a wedged breaker flapping all run
        #: must not write thousands of files).
        self.postmortem_budget = 0
        self.dumps_written: List[Path] = []
        registry = get_registry()
        self._m_events = registry.counter(
            names.FLIGHTREC_EVENTS, help="events written to the flight ring"
        )
        self._m_dumps = registry.counter(
            names.FLIGHTREC_DUMPS, help="flight-recorder dumps written"
        )

    # -- recording ------------------------------------------------------

    def note(self, kind: str, label: str = "", *data: float) -> int:
        """Write one event; returns its id (0 when recording is off).

        Each event carries a ``perf_counter_ns`` epoch stamp — the
        cross-process merge key (see :func:`merge_dumps`).  The stamp
        is one clock read on top of the tuple build; the obs layer is
        exempt from the sim-clock determinism rule (RL001 scope).
        """
        if not self.enabled:
            return 0
        seq = self._seq = self._seq + 1
        self._ring[seq % self.capacity] = (
            seq, kind, label, data, time.perf_counter_ns()
        )
        self._m_events.inc()
        return seq

    @property
    def seq(self) -> int:
        """Id of the most recent event (0 when nothing recorded)."""
        return self._seq

    @property
    def retained(self) -> int:
        return min(self._seq, self.capacity)

    @property
    def evicted(self) -> int:
        """Events pushed out of the ring by newer ones."""
        return max(0, self._seq - self.capacity)

    def reset(self) -> None:
        self._ring = [None] * self.capacity
        self._seq = 0

    # -- reading --------------------------------------------------------

    def events(self) -> List[FlightEvent]:
        """Retained events, oldest first."""
        return list(self.iter_events())

    def iter_events(self) -> Iterator[FlightEvent]:
        start = max(1, self._seq - self.capacity + 1)
        for seq in range(start, self._seq + 1):
            raw = self._ring[seq % self.capacity]
            if raw is not None and raw[0] == seq:
                yield FlightEvent(*raw)

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.iter_events():
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # -- dumping --------------------------------------------------------

    def to_jsonl(self, registry: Optional[MetricsRegistry] = None,
                 reason: str = "manual") -> str:
        """The dump format: one meta line, then one line per event.

        The meta line snapshots the registry at dump time so a replay
        can reconcile events against counters without the live process.
        The snapshot goes through :meth:`MetricsRegistry.snapshot`, so
        a dump taken while another thread observes is never torn, and
        the ring's eviction count is published as the
        ``obs.ring_dropped_slots`` gauge before the snapshot is taken.
        """
        from repro.obs.exporters import _metric_to_dict

        registry = registry if registry is not None else get_registry()
        registry.gauge(
            names.OBS_RING_DROPPED_SLOTS,
            help="flight-ring events evicted by newer ones at dump time",
        ).set(self.evicted)
        snapshot = registry.snapshot()
        meta = {
            "type": "flightrec_meta",
            "reason": reason,
            "writer": self.writer_id,
            "seq": self._seq,
            "retained": self.retained,
            "evicted": self.evicted,
            "capacity": self.capacity,
            "metrics": [_metric_to_dict(m) for m in snapshot.collect()],
        }
        lines = [json.dumps(meta, sort_keys=True)]
        lines.extend(
            json.dumps(event.to_dict(), sort_keys=True)
            for event in self.iter_events()
        )
        return "\n".join(lines) + "\n"

    def dump(self, target: Union[str, Path, IO[str]],
             registry: Optional[MetricsRegistry] = None,
             reason: str = "manual") -> None:
        """Write the JSONL dump to a path or open text stream."""
        text = self.to_jsonl(registry, reason=reason)
        if hasattr(target, "write"):
            target.write(text)
        else:
            Path(target).write_text(text)

    def arm_postmortem(self, directory: Union[str, Path],
                       budget: int = 4) -> None:
        """Enable automatic dumps into ``directory`` (created if needed).

        ``budget`` bounds how many automatic dumps one process writes;
        manual :meth:`dump` calls are never budgeted.
        """
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        self.postmortem_dir = path
        self.postmortem_budget = budget

    def postmortem(self, reason: str,
                   registry: Optional[MetricsRegistry] = None
                   ) -> Optional[Path]:
        """Fault-layer trigger: dump the ring if armed and in budget.

        Always notes a DUMP event (so the trigger itself is on the
        record even when disarmed); returns the written path or None.
        The filename carries the trigger reason and the event id — not a
        timestamp, so chaos replays stay deterministic.  A nonzero
        ``writer_id`` is qualified into the name (``flightrec-w3-...``)
        so per-worker post-mortems landing in a shared directory never
        collide; writer 0 keeps the historical unqualified form.
        """
        self.note(Events.DUMP, reason)
        if self.postmortem_dir is None or self.postmortem_budget <= 0:
            return None
        self.postmortem_budget -= 1
        stem = (f"flightrec-w{self.writer_id}-{reason}-{self._seq}"
                if self.writer_id else f"flightrec-{reason}-{self._seq}")
        path = self.postmortem_dir / f"{stem}.jsonl"
        self.dump(path, registry, reason=reason)
        self._m_dumps.inc()
        self.dumps_written.append(path)
        return path


#: The process-wide default recorder.
_default_flightrec = FlightRecorder()


def get_flightrec() -> FlightRecorder:
    """The current default recorder (what instrumented code notes to)."""
    return _default_flightrec


def set_flightrec(recorder: FlightRecorder) -> FlightRecorder:
    """Install a recorder as the default; returns the previous one."""
    global _default_flightrec
    previous = _default_flightrec
    _default_flightrec = recorder
    return previous


def reset_flightrec() -> FlightRecorder:
    """Replace the default recorder with a fresh enabled one (returned).

    Like ``reset_registry``: objects built before the reset keep their
    old handles; instrumented constructors re-resolve.
    """
    recorder = FlightRecorder()
    set_flightrec(recorder)
    return recorder


# ----------------------------------------------------------------------
# Dump loading and replay (the read side of the artifact).
# ----------------------------------------------------------------------


class DumpReport:
    """A parsed dump plus the reconciliation verdicts replay prints."""

    def __init__(self, meta: Dict[str, object],
                 events: List[Dict[str, object]]) -> None:
        self.meta = meta
        self.events = events

    # -- views over the snapshot ---------------------------------------

    def metric_total(self, name: str) -> float:
        """Sum of a snapshot metric across label sets."""
        total = 0.0
        for metric in self.meta.get("metrics", []):
            if metric.get("name") == name and "value" in metric:
                total += metric["value"]
        return total

    def fault_counts(self) -> Dict[str, int]:
        """Snapshot ``faults.injected`` counters, keyed by site."""
        counts: Dict[str, int] = {}
        for metric in self.meta.get("metrics", []):
            if metric.get("name") == names.FAULTS_INJECTED:
                site = dict(metric.get("labels", {})).get("site", "")
                counts[site] = counts.get(site, 0) + int(metric["value"])
        return counts

    def event_counts(self, kind: str, by_label: bool = False
                     ) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            if event.get("kind") != kind:
                continue
            key = event.get("label", "") if by_label else kind
            counts[key] = counts.get(key, 0) + 1
        return counts

    def verdict_totals(self, writer: Optional[int] = None) -> Dict[str, int]:
        """Summed chunk verdict fields across every CHUNK event.

        ``writer`` narrows the sum to one worker's events in a merged
        dump (events without a ``writer`` field count as writer 0).
        """
        totals = {"packets": 0, "forwarded": 0, "dropped": 0, "slow_path": 0}
        for event in self.events:
            if event.get("kind") != Events.CHUNK:
                continue
            if writer is not None and int(event.get("writer", 0)) != writer:
                continue
            for key in totals:
                totals[key] += int(event.get(key, 0))
        return totals

    @property
    def writers(self) -> List[Dict[str, object]]:
        """Per-writer meta records (empty for a single-process dump)."""
        return list(self.meta.get("writers", []))

    # -- reconciliation -------------------------------------------------

    def reconcile(self) -> List[Tuple[str, float, float, bool]]:
        """(check, events, metrics, ok) rows for every closable identity.

        Only meaningful when the dump evicted nothing — an aged-out ring
        undercounts events by design, so replay reports eviction instead
        of failing the checks.
        """
        rows: List[Tuple[str, float, float, bool]] = []
        fired = self.event_counts(Events.FAULT, by_label=True)
        snapshots = self.fault_counts()
        # Union of sites: a fault event with no counter (or the reverse)
        # is itself a mismatch, not a site to skip.
        for site in sorted(set(fired) | set(snapshots)):
            recorded = fired.get(site, 0)
            snapshot = snapshots.get(site, 0)
            rows.append((f"fault {site}", recorded, snapshot,
                         recorded == snapshot))
        verdicts = self.verdict_totals()
        for check, metric in (
            ("forwarded", names.ROUTER_FORWARDED_PACKETS),
            ("dropped", names.ROUTER_DROPPED_PACKETS),
            ("slow_path", names.ROUTER_SLOW_PATH_PACKETS),
        ):
            snapshot = self.metric_total(metric)
            rows.append((f"verdict {check}", verdicts[check], snapshot,
                         verdicts[check] == snapshot))
        shed = sum(
            int(e.get("packets", 0)) for e in self.events
            if e.get("kind") == Events.SHED
        )
        rows.append(("backpressure shed", shed,
                     self.metric_total(names.ROUTER_BACKPRESSURE_DROPS),
                     shed == self.metric_total(
                         names.ROUTER_BACKPRESSURE_DROPS)))
        # Overload-control identities: RX sheds and flow-table evictions
        # recorded as events must match their attribution counters.
        rx_shed = sum(
            int(e.get("packets", 0)) for e in self.events
            if e.get("kind") == Events.RX_SHED
        )
        rows.append(("rx shed", rx_shed,
                     self.metric_total(names.OVERLOAD_SHED_PACKETS),
                     rx_shed == self.metric_total(
                         names.OVERLOAD_SHED_PACKETS)))
        evicted = sum(
            int(e.get("count", 0)) for e in self.events
            if e.get("kind") == Events.FLOW_EVICT
            and e.get("label") == "evict"
        )
        rows.append(("flow evictions", evicted,
                     self.metric_total(names.OVERLOAD_FLOW_EVICTIONS),
                     evicted == self.metric_total(
                         names.OVERLOAD_FLOW_EVICTIONS)))
        rows.extend(self._reconcile_writers())
        return rows

    @staticmethod
    def _writer_total(wmeta: Dict[str, object], name: str) -> float:
        total = 0.0
        for metric in wmeta.get("metrics", []):
            if metric.get("name") == name and "value" in metric:
                total += metric["value"]
        return total

    def _reconcile_writers(self) -> List[Tuple[str, float, float, bool]]:
        """Merged-view rows: per-worker identities, then the conservation
        cross-check the sharded data plane hinges on — each worker's own
        counters must match its share of the merged event stream, and
        the per-worker sums must equal the aggregate counters."""
        writers = self.writers
        if not writers:
            return []
        rows: List[Tuple[str, float, float, bool]] = []
        verdict_metrics = (
            ("forwarded", names.ROUTER_FORWARDED_PACKETS),
            ("dropped", names.ROUTER_DROPPED_PACKETS),
            ("slow_path", names.ROUTER_SLOW_PATH_PACKETS),
        )
        for wmeta in writers:
            wid = int(wmeta.get("writer", 0))
            verdicts = self.verdict_totals(writer=wid)
            for check, metric in verdict_metrics:
                snapshot = self._writer_total(wmeta, metric)
                rows.append((f"w{wid} {check}", verdicts[check], snapshot,
                             verdicts[check] == snapshot))
        for check, metric in (
            ("received", names.ROUTER_RECEIVED_PACKETS),
        ) + verdict_metrics:
            per_worker = sum(self._writer_total(w, metric) for w in writers)
            aggregate = self.metric_total(metric)
            rows.append((f"sum {check}", per_worker, aggregate,
                         per_worker == aggregate))
        return rows

    @property
    def reconciled(self) -> bool:
        if int(self.meta.get("evicted", 0)):
            return False
        return all(ok for _, _, _, ok in self.reconcile())


def load_dump(path: Union[str, Path]) -> DumpReport:
    """Parse a JSONL dump (single-writer or merged) into a report."""
    meta: Dict[str, object] = {}
    events: List[Dict[str, object]] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("type") in ("flightrec_meta",
                                      "flightrec_merged_meta"):
                meta = record
            elif record.get("type") == "event":
                events.append(record)
    if not meta:
        raise ValueError(f"{path}: no flightrec_meta line — not a dump")
    return DumpReport(meta, events)


# ----------------------------------------------------------------------
# Gen-3: the deterministic k-way merge of per-worker dumps.
# ----------------------------------------------------------------------


def _metric_dict_key(metric: Dict[str, object]) -> Tuple:
    return (
        str(metric.get("name", "")),
        tuple(sorted((metric.get("labels") or {}).items())),
    )


def _merge_metric_dicts(
    metric_lists: Iterable[List[Dict[str, object]]],
) -> List[Dict[str, object]]:
    """Sum per-writer snapshot metrics into one aggregate list.

    Same semantics as :func:`repro.obs.shm.merge_into`, but over the
    serialized exporter dicts a dump carries: counters/gauges/histogram
    buckets add; histogram bounds must agree.  Exemplars are dropped —
    their seqs reference per-writer rings and would be ambiguous in an
    aggregate.
    """
    merged: Dict[Tuple, Dict[str, object]] = {}
    for metrics in metric_lists:
        for metric in metrics:
            key = _metric_dict_key(metric)
            current = merged.get(key)
            if current is None:
                current = json.loads(json.dumps(metric))
                current.pop("exemplars", None)
                merged[key] = current
                continue
            if "value" in metric:
                current["value"] = current.get("value", 0) + metric["value"]
            else:
                if current.get("buckets") != metric.get("buckets"):
                    raise ValueError(
                        f"histogram {metric.get('name')}: bucket bounds "
                        "differ between writers; cannot merge"
                    )
                current["counts"] = [
                    a + b for a, b in zip(current["counts"], metric["counts"])
                ]
                current["count"] = current.get("count", 0) + metric.get("count", 0)
                current["sum"] = current.get("sum", 0.0) + metric.get("sum", 0.0)
    return [merged[key] for key in sorted(merged)]


def merge_dumps(paths: Iterable[Union[str, Path]]) -> str:
    """Merge per-worker dumps into one causally-ordered JSONL stream.

    The merge key is ``(t_ns, writer, seq)``: epoch stamps are
    ``perf_counter_ns`` (CLOCK_MONOTONIC — system-wide on Linux, so
    stamps from sibling worker processes share one timeline), with
    ``(writer, seq)`` breaking exact ties deterministically.  Events
    from gen-2 dumps without stamps sort first, still ordered by their
    own seqs.  Each merged event gains a ``writer`` field; the meta
    line aggregates every writer's metric snapshot (the view the
    extended reconciler checks per-worker sums against) and embeds the
    per-writer metas verbatim.
    """
    reports: List[DumpReport] = []
    for path in paths:
        reports.append(load_dump(path))
    # Writer order (and with it the whole merged stream) is independent
    # of the order the dump files were passed in.
    reports.sort(key=lambda r: int(r.meta.get("writer", 0)))
    merged_events: List[Tuple[Tuple, Dict[str, object]]] = []
    for report in reports:
        wid = int(report.meta.get("writer", 0))
        for event in report.events:
            event = dict(event)
            event["writer"] = int(event.get("writer", wid))
            sort_key = (
                int(event.get("t_ns", 0)), event["writer"],
                int(event.get("seq", 0)),
            )
            merged_events.append((sort_key, event))
    merged_events.sort(key=lambda pair: pair[0])
    get_registry().counter(
        names.OBS_MERGE_EVENTS,
        help="events flowed through flightrec k-way merges",
    ).inc(len(merged_events))
    meta = {
        "type": "flightrec_merged_meta",
        "reason": "merge",
        "writers": [report.meta for report in reports],
        "seq": sum(int(r.meta.get("seq", 0)) for r in reports),
        "retained": sum(int(r.meta.get("retained", 0)) for r in reports),
        "evicted": sum(int(r.meta.get("evicted", 0)) for r in reports),
        "metrics": _merge_metric_dicts(
            r.meta.get("metrics", []) for r in reports
        ),
    }
    lines = [json.dumps(meta, sort_keys=True)]
    lines.extend(
        json.dumps(event, sort_keys=True) for _, event in merged_events
    )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# CLI: ``python -m repro flightrec dump|replay``.
# ----------------------------------------------------------------------


def _dump_main(args) -> int:
    """Run an instrumented burst and write its flight-recorder dump."""
    import sys

    from repro.report import _traced_run

    _traced_run(args)
    recorder = get_flightrec()
    if args.out == "-":
        recorder.dump(sys.stdout, reason="cli")
    else:
        recorder.dump(args.out, reason="cli")
        print(f"wrote {recorder.retained} events to {args.out}")
    return 0


def _merge_main(args) -> int:
    """Merge per-worker dumps; write the merged stream (see merge_dumps)."""
    import sys

    text = merge_dumps(args.paths)
    if args.out == "-":
        sys.stdout.write(text)
    else:
        Path(args.out).write_text(text)
        events = text.count("\n") - 1
        print(f"merged {len(args.paths)} dumps "
              f"({events} events) into {args.out}")
    return 0


def _replay_main(args) -> int:
    """Render a dump as a timeline and reconcile it against its snapshot."""
    report = load_dump(args.path)
    meta = report.meta
    print(f"flight recorder dump: reason={meta.get('reason')} "
          f"seq={meta.get('seq')} retained={meta.get('retained')} "
          f"evicted={meta.get('evicted')}")
    if report.writers:
        print(f"merged from {len(report.writers)} writers: "
              + ", ".join(f"w{int(w.get('writer', 0))}"
                          f"({int(w.get('retained', 0))} events)"
                          for w in report.writers))
    counts = {}
    for event in report.events:
        counts[event["kind"]] = counts.get(event["kind"], 0) + 1
    print("events by kind: " + ", ".join(
        f"{kind}={count}" for kind, count in sorted(counts.items())
    ) or "none")
    verdicts = report.verdict_totals()
    print(f"chunk verdicts: {verdicts['packets']} packets -> "
          f"{verdicts['forwarded']} forwarded, {verdicts['dropped']} "
          f"dropped, {verdicts['slow_path']} slow-path")
    if args.tail:
        print(f"\nlast {args.tail} events:")
        for event in report.events[-args.tail:]:
            fields = {k: v for k, v in event.items()
                      if k not in ("type", "seq", "kind", "label",
                                   "t_ns", "writer")}
            label = f" {event['label']}" if event.get("label") else ""
            detail = (" " + " ".join(f"{k}={v}" for k, v in fields.items())
                      if fields else "")
            wtag = f" w{event['writer']}" if "writer" in event else ""
            print(f"  #{event['seq']:<8}{wtag} "
                  f"{event['kind']:<12}{label}{detail}")
    print("\nreconciliation (events vs metrics snapshot):")
    failures = 0
    for check, recorded, snapshot, ok in report.reconcile():
        marker = "ok" if ok else "MISMATCH"
        if not ok:
            failures += 1
        print(f"  {check:<28} {recorded:>10g} {snapshot:>10g} {marker:>9}")
    if int(meta.get("evicted", 0)):
        print(f"  ({meta['evicted']} events evicted from the ring: "
              "counts undercount by design)")
        return 0
    print("reconciled" if failures == 0 else f"{failures} check(s) failed")
    return 1 if failures else 0


def flightrec_main(argv=None) -> int:
    """Entry point for ``python -m repro flightrec``."""
    import argparse

    from repro.report import _run_parser

    parser = argparse.ArgumentParser(
        prog="python -m repro flightrec",
        description="Dump or replay the flight recorder's event ring.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    run_opts = _run_parser("python -m repro flightrec dump",
                           "Run an instrumented burst and dump the ring.")
    dump = sub.add_parser(
        "dump", parents=[run_opts], add_help=False,
        help="run an instrumented burst and dump the event ring as JSONL")
    dump.add_argument("--out", default="-",
                      help="output path ('-' = stdout, the default)")
    replay = sub.add_parser(
        "replay", help="render and reconcile a previously written dump")
    replay.add_argument("path", help="dump file written by `flightrec dump` "
                        "or a post-mortem trigger")
    replay.add_argument("--tail", type=int, default=12,
                        help="events to print from the end (default: 12)")
    merge = sub.add_parser(
        "merge", help="k-way merge per-worker dumps into one causally "
        "ordered stream (replayable like any dump)")
    merge.add_argument("paths", nargs="+",
                       help="per-worker dump files to merge")
    merge.add_argument("--out", default="-",
                       help="output path ('-' = stdout, the default)")
    args = parser.parse_args(argv)
    if args.command == "dump":
        return _dump_main(args)
    if args.command == "merge":
        return _merge_main(args)
    return _replay_main(args)
