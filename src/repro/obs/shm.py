"""Shared-memory metrics slabs: the multiprocess registry backend.

The sharded data plane (ROADMAP, PAPER.md Fig 8) runs one worker
process per core; every worker keeps the same instruments the
single-process router has, but a plain :class:`MetricsRegistry` is
process-local — after ``fork()`` each copy diverges silently (the exact
failure RL008 lints for).  This module gives each writer process its
own *slab*: a preallocated ``multiprocessing.shared_memory`` segment
holding every counter cell and histogram bucket as ``float64`` slots,
with numpy views on top so the hot-path cost stays one float add.

Concurrency model — single-writer, quiesced-read:

* exactly one process writes a given slab (its owner); writes are plain
  stores through preallocated views, no locks, no atomics;
* any process may read any slab at any time.  A read concurrent with a
  write can see a *torn* histogram (bucket counts mid-update); readers
  therefore go through :func:`read_slab`, which recomputes ``count`` as
  the sum of the copied bucket counts — the same repair
  :meth:`MetricsRegistry.snapshot` applies in-process — so derived
  views are always internally consistent, merely up to one in-flight
  sample stale;
* the directory grows append-only: an entry's fields and key are fully
  written *before* the ``dir_used`` header word is bumped, so readers
  never observe a half-initialised entry.

Slab layout (all little-endian, offsets in bytes)::

    [0,   128)  header: 16 x int64
                (magic, version, writer_id, dir_capacity, dir_used,
                 data_capacity, data_used, nbytes, 8 reserved)
    [128, 128 + dir_capacity*192)  directory, fixed 192-byte entries:
                int32 key_len | uint8 kind | uint8 nbounds | pad |
                int64 data_off | 176-byte key ("name|k=v|...")
    [...,  end) data region: float64 slots
                counter/gauge: 1 slot (value)
                histogram:     nbounds bounds, nbounds+1 counts, sum

Capacities default from the :mod:`repro.obs.names` catalog size, so
the slab always fits every canonical instrument plus label fan-out.
Exemplars stay process-local (they reference the writer's own
flight-recorder seqs, which are meaningless in another process).
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, Tuple

import numpy as np
from multiprocessing import shared_memory

from repro.obs import names
from repro.obs.registry import (
    WALL_NS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LabelPairs,
    MetricsRegistry,
    _freeze_labels,
    get_registry,
)

MAGIC = 0x5053_4C41_4231  # "PSLAB1" as the low 6 bytes
VERSION = 1

KIND_COUNTER = 1
KIND_GAUGE = 2
KIND_HISTOGRAM = 3

#: Longest encoded ``name|k=v|...`` key a directory entry can hold.
MAX_KEY_BYTES = 176
#: Widest bucket list a slab histogram supports (catalog max is 12).
MAX_BOUNDS = 24

_HEADER_WORDS = 16
_HEADER_BYTES = _HEADER_WORDS * 8
(_H_MAGIC, _H_VERSION, _H_WRITER, _H_DIR_CAP, _H_DIR_USED,
 _H_DATA_CAP, _H_DATA_USED, _H_NBYTES, _H_TRACKER) = range(9)

_DIR_DTYPE = np.dtype([
    ("key_len", "<i4"),
    ("kind", "<u1"),
    ("nbounds", "<u1"),
    ("_pad", "<u2"),
    ("data_off", "<i8"),
    ("key", f"S{MAX_KEY_BYTES}"),
])
assert _DIR_DTYPE.itemsize == 192

#: Directory headroom per catalog name (label fan-out: per-queue,
#: per-site, per-stage series all share one catalog name).
_DIR_FANOUT = 8
#: Average data slots budgeted per directory entry (histograms are the
#: minority; 2*MAX_BOUNDS+2 is the worst single entry).
_DATA_PER_ENTRY = 16


def default_dir_capacity() -> int:
    return max(64, _DIR_FANOUT * len(names.METRIC_NAMES))


def default_data_capacity() -> int:
    return default_dir_capacity() * _DATA_PER_ENTRY


def slab_name(session: str, writer_id: int) -> str:
    """The canonical shared-memory segment name for one writer."""
    return f"{session}-w{writer_id}"


def _escape(part: str) -> str:
    return part.replace("\\", "\\\\").replace("|", "\\|").replace("=", "\\=")


def _split_unescaped(text: str, sep: str) -> List[str]:
    parts: List[str] = []
    current: List[str] = []
    it = iter(text)
    for ch in it:
        if ch == "\\":
            current.append(ch)
            current.append(next(it, ""))
        elif ch == sep:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts


def _unescape(part: str) -> str:
    out: List[str] = []
    it = iter(part)
    for ch in it:
        out.append(next(it, "") if ch == "\\" else ch)
    return "".join(out)


def encode_key(name: str, labels: LabelPairs) -> bytes:
    """``name|k=v|...`` with labels already sorted by ``_freeze_labels``."""
    text = "|".join(
        [_escape(name)]
        + [f"{_escape(k)}={_escape(v)}" for k, v in labels]
    )
    raw = text.encode("utf-8")
    if len(raw) > MAX_KEY_BYTES:
        raise ValueError(f"metric key too long for slab directory: {text!r}")
    return raw


def decode_key(raw: bytes) -> Tuple[str, LabelPairs]:
    parts = _split_unescaped(raw.decode("utf-8"), "|")
    name = _unescape(parts[0])
    labels = []
    for pair in parts[1:]:
        k, v = _split_unescaped(pair, "=")
        labels.append((_unescape(k), _unescape(v)))
    return name, tuple(labels)


def _tracker_token() -> int:
    """Identity of this process's resource-tracker daemon (0 if none).

    The token is the inode of the tracker's command pipe: fork *and*
    spawn children inherit the creator's pipe fd (same inode), while an
    unrelated process gets its own daemon and pipe.  Pids don't work —
    a spawn child shares the daemon without ever learning its pid.
    """
    try:
        import os

        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        return int(os.fstat(resource_tracker._resource_tracker._fd).st_ino)
    except Exception:
        return 0


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Detach a segment from this process's resource tracker.

    On Python < 3.13 the tracker registers shared memory on *attach*
    too, so a foreign reader (own tracker daemon) exiting would unlink
    the writer's live segment out from under everyone else.  Fleet
    children share the creator's daemon and are skipped — see the
    tracker-token check in :meth:`MetricSlab.attach`.  The creating
    process keeps its registration and owns cleanup via
    :meth:`MetricSlab.unlink`.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class SlabEntry(NamedTuple):
    key: bytes
    kind: int
    nbounds: int
    data: np.ndarray


class MetricSlab:
    """One writer process's metrics segment (see module docstring).

    Construct through :meth:`create` (the owning writer-side parent)
    or :meth:`attach` (readers and forked/spawned workers).
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self._shm = shm
        self.owner = owner
        self.name = shm.name
        self._header = np.ndarray(
            (_HEADER_WORDS,), dtype="<i8", buffer=shm.buf
        )
        if int(self._header[_H_MAGIC]) != MAGIC:
            raise ValueError(f"segment {shm.name!r} is not a metrics slab")
        if int(self._header[_H_VERSION]) != VERSION:
            raise ValueError(
                f"slab {shm.name!r}: layout version "
                f"{int(self._header[_H_VERSION])} != {VERSION}"
            )
        dir_cap = int(self._header[_H_DIR_CAP])
        data_cap = int(self._header[_H_DATA_CAP])
        self._dir = np.ndarray(
            (dir_cap,), dtype=_DIR_DTYPE, buffer=shm.buf, offset=_HEADER_BYTES
        )
        self._data = np.ndarray(
            (data_cap,), dtype="<f8", buffer=shm.buf,
            offset=_HEADER_BYTES + dir_cap * _DIR_DTYPE.itemsize,
        )
        #: Writer-side lookup: encoded key -> directory index.
        self._index: Dict[bytes, int] = {}

    @classmethod
    def create(
        cls,
        name: str,
        writer_id: int = 0,
        dir_capacity: Optional[int] = None,
        data_capacity: Optional[int] = None,
    ) -> "MetricSlab":
        dir_cap = dir_capacity or default_dir_capacity()
        data_cap = data_capacity or default_data_capacity()
        nbytes = (
            _HEADER_BYTES + dir_cap * _DIR_DTYPE.itemsize + data_cap * 8
        )
        shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        header = np.ndarray((_HEADER_WORDS,), dtype="<i8", buffer=shm.buf)
        header[:] = 0
        header[_H_VERSION] = VERSION
        header[_H_WRITER] = writer_id
        header[_H_DIR_CAP] = dir_cap
        header[_H_DATA_CAP] = data_cap
        header[_H_NBYTES] = nbytes
        # Which tracker daemon holds the creator's registration: fleet
        # children share it (their duplicate attach registration is a
        # set no-op and must NOT be unregistered — the daemon keeps one
        # entry per name), while a foreign reader has its own tracker
        # that must be untracked on attach (see _untrack).
        header[_H_TRACKER] = _tracker_token()
        # Magic goes last: an attacher racing create sees not-a-slab,
        # never a half-initialised header.
        header[_H_MAGIC] = MAGIC
        del header
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "MetricSlab":
        shm = shared_memory.SharedMemory(name=name)
        slab = cls(shm, owner=False)
        if _tracker_token() != int(slab._header[_H_TRACKER]):
            _untrack(shm)
        return slab

    @property
    def writer_id(self) -> int:
        return int(self._header[_H_WRITER])

    @property
    def nbytes(self) -> int:
        return int(self._header[_H_NBYTES])

    def __len__(self) -> int:
        return int(self._header[_H_DIR_USED])

    def allocate(self, kind: int, key: bytes, nslots: int) -> np.ndarray:
        """Writer-side: claim directory + data slots for one instrument.

        Idempotent per key (re-allocating returns the existing view).
        The entry becomes reader-visible only once fully written.
        """
        index = self._index.get(key)
        if index is None:
            index = self._find(key)
        if index is not None:
            entry = self._dir[index]
            off = int(entry["data_off"])
            count = self._entry_slots(int(entry["kind"]), int(entry["nbounds"]))
            self._index[key] = index
            return self._data[off:off + count]
        used = int(self._header[_H_DIR_USED])
        data_used = int(self._header[_H_DATA_USED])
        if used >= int(self._header[_H_DIR_CAP]):
            raise RuntimeError(
                f"slab {self.name!r}: directory full ({used} entries); "
                "raise dir_capacity"
            )
        if data_used + nslots > int(self._header[_H_DATA_CAP]):
            raise RuntimeError(
                f"slab {self.name!r}: data region full; raise data_capacity"
            )
        entry = self._dir[used]
        entry["key_len"] = len(key)
        entry["kind"] = kind
        entry["nbounds"] = max(0, (nslots - 2) // 2) if kind == KIND_HISTOGRAM else 0
        entry["data_off"] = data_used
        entry["key"] = key
        self._header[_H_DATA_USED] = data_used + nslots
        # Publish: a single aligned int64 store; readers iterating
        # [0, dir_used) never see the entry before this point.
        self._header[_H_DIR_USED] = used + 1
        self._index[key] = used
        return self._data[data_used:data_used + nslots]

    def _find(self, key: bytes) -> Optional[int]:
        for i in range(int(self._header[_H_DIR_USED])):
            entry = self._dir[i]
            if bytes(entry["key"])[: int(entry["key_len"])] == key:
                return i
        return None

    @staticmethod
    def _entry_slots(kind: int, nbounds: int) -> int:
        return 2 * nbounds + 2 if kind == KIND_HISTOGRAM else 1

    def entries(self) -> Iterator[SlabEntry]:
        """All published instruments (reader-safe at any time)."""
        for i in range(int(self._header[_H_DIR_USED])):
            entry = self._dir[i]
            kind = int(entry["kind"])
            nbounds = int(entry["nbounds"])
            off = int(entry["data_off"])
            count = self._entry_slots(kind, nbounds)
            yield SlabEntry(
                key=bytes(entry["key"])[: int(entry["key_len"])],
                kind=kind,
                nbounds=nbounds,
                data=self._data[off:off + count],
            )

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives).

        Instrument views handed out by :meth:`allocate` may still be
        alive in a worker that is about to exit; ``mmap`` refuses to
        unmap under exported buffers, and the OS reclaims the mapping
        at process exit anyway, so ``BufferError`` is absorbed.
        """
        self._header = self._dir = self._data = None
        try:
            self._shm.close()
        except BufferError:
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only; idempotent)."""
        if not self.owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


class ShmCounter(Counter):
    """A :class:`Counter` whose cell lives in the writer's slab."""

    def __init__(self, name: str, help: str = "", labels: LabelPairs = (),
                 cell: Optional[np.ndarray] = None) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._cell = cell

    @property
    def value(self) -> float:
        return float(self._cell[0])

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self._cell[0] += amount


class ShmGauge(Gauge):
    """A :class:`Gauge` whose cell lives in the writer's slab."""

    def __init__(self, name: str, help: str = "", labels: LabelPairs = (),
                 cell: Optional[np.ndarray] = None) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._cell = cell

    @property
    def value(self) -> float:
        return float(self._cell[0])

    def set(self, value: float) -> None:
        self._cell[0] = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._cell[0] += amount

    def dec(self, amount: float = 1.0) -> None:
        self._cell[0] -= amount


class ShmHistogram(Histogram):
    """A :class:`Histogram` over slab slots.

    ``counts``/``count``/``sum`` are read-side properties over the
    shared block, so every inherited derivation (``percentile``,
    ``mean``, ``cumulative_counts``) and every exporter ``isinstance``
    check works unchanged.  Exemplars stay process-local.
    """

    def __init__(self, name: str, bounds: List[float], help: str = "",
                 labels: LabelPairs = (),
                 block: Optional[np.ndarray] = None) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.bounds = [float(b) for b in bounds]
        nb = len(self.bounds)
        self._counts_view = block[nb:2 * nb + 1]
        self._sum_view = block[2 * nb + 1:2 * nb + 2]
        self.exemplars = {}

    @property
    def counts(self) -> List[int]:
        return [int(c) for c in self._counts_view]

    @property
    def count(self) -> int:
        return int(self._counts_view.sum())

    @property
    def sum(self) -> float:
        return float(self._sum_view[0])

    def observe(self, value: float, exemplar: Optional[int] = None) -> None:
        index = bisect_left(self.bounds, value)
        self._counts_view[index] += 1
        self._sum_view[0] += value
        if exemplar:
            self.exemplars[index] = (exemplar, value)


class ShmMetricsRegistry(MetricsRegistry):
    """Writer-side registry backed by this process's slab.

    Drop-in behind the :func:`repro.obs.registry.set_registry` facade:
    every instrumented call-site in ``core``/``io_engine``/``hw``/
    ``faults`` creates and updates instruments exactly as before, but
    the cells land in shared memory where the aggregator can see them.
    Names are validated against the :mod:`repro.obs.names` catalog —
    the slot layout is derived from it, and an off-catalog name would
    silently vanish from merged dashboards.
    """

    def __init__(self, slab: MetricSlab) -> None:
        super().__init__()
        self.slab = slab
        self.gauge(
            names.OBS_SLAB_BYTES,
            help="bytes mapped for this writer's metrics slab",
        ).set(slab.nbytes)

    def _get_or_create(self, cls, name: str, help: str, labels: Dict[str, str],
                       **kwargs):
        if not name:
            raise ValueError("metric name must be non-empty")
        key = (name, _freeze_labels(labels))
        metric = self._metrics.get(key)
        if metric is not None:
            if not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric
        if name not in names.METRIC_NAMES:
            raise ValueError(
                f"metric {name!r} is not in the names catalog; slab slots "
                "are reserved for catalog names only (RL003)"
            )
        raw = encode_key(name, key[1])
        if cls is Counter:
            cell = self.slab.allocate(KIND_COUNTER, raw, 1)
            metric = ShmCounter(name, help=help, labels=key[1], cell=cell)
        elif cls is Gauge:
            cell = self.slab.allocate(KIND_GAUGE, raw, 1)
            metric = ShmGauge(name, help=help, labels=key[1], cell=cell)
        elif cls is Histogram:
            bounds = [float(b) for b in kwargs["buckets"]]
            if not 0 < len(bounds) <= MAX_BOUNDS:
                raise ValueError(
                    f"histogram {name}: {len(bounds)} buckets outside "
                    f"slab limit 1..{MAX_BOUNDS}"
                )
            block = self.slab.allocate(
                KIND_HISTOGRAM, raw, 2 * len(bounds) + 2
            )
            block[:len(bounds)] = bounds
            metric = ShmHistogram(
                name, bounds, help=help, labels=key[1], block=block
            )
        else:
            raise TypeError(f"unknown instrument class {cls!r}")
        self._metrics[key] = metric
        return metric


def read_slab(slab: MetricSlab) -> MetricsRegistry:
    """Decode one slab into a plain, consistent in-process registry.

    Torn-read repair as in :meth:`MetricsRegistry.snapshot`: bucket
    counts are copied first and ``count`` recomputed from the copy.
    """
    registry = MetricsRegistry()
    for entry in slab.entries():
        name, labels = decode_key(entry.key)
        labelkw = dict(labels)
        if entry.kind == KIND_COUNTER:
            registry.counter(name, **labelkw).value = float(entry.data[0])
        elif entry.kind == KIND_GAUGE:
            registry.gauge(name, **labelkw).value = float(entry.data[0])
        elif entry.kind == KIND_HISTOGRAM:
            nb = entry.nbounds
            bounds = [float(b) for b in entry.data[:nb]]
            counts = [int(c) for c in entry.data[nb:2 * nb + 1]]
            clone = registry.histogram(name, buckets=bounds, **labelkw)
            clone.counts = counts
            clone.count = sum(counts)
            clone.sum = float(entry.data[2 * nb + 1])
    return registry


def merge_into(target: MetricsRegistry, source: MetricsRegistry) -> MetricsRegistry:
    """Add ``source``'s instruments into ``target`` (sum semantics).

    Counters and histogram buckets add exactly (merge is associative
    and commutative — the property suite pins this); gauges also add,
    so an aggregate depth gauge is the fleet-wide total and an
    aggregate boolean flag reads as "how many writers assert it".
    Histogram bounds must agree; a mismatch raises rather than merging
    incomparable series.
    """
    for metric in source.collect():
        labels = dict(metric.labels)
        if isinstance(metric, Histogram):
            clone = target.histogram(
                metric.name, buckets=list(metric.bounds),
                help=metric.help, **labels,
            )
            if list(clone.bounds) != list(metric.bounds):
                raise ValueError(
                    f"histogram {metric.name}: bucket bounds differ "
                    "between writers; cannot merge"
                )
            counts = list(metric.counts)
            for i, c in enumerate(counts):
                clone.counts[i] += c
            clone.count += sum(counts)
            clone.sum += metric.sum
            for index, exemplar in metric.exemplars.items():
                clone.exemplars.setdefault(index, exemplar)
        elif isinstance(metric, Gauge):
            target.gauge(metric.name, help=metric.help, **labels).inc(
                metric.value
            )
        elif isinstance(metric, Counter):
            target.counter(metric.name, help=metric.help, **labels).inc(
                metric.value
            )
    return target


def aggregate_slabs(
    slabs: Iterable[MetricSlab],
    into: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Merge per-writer slabs into one registry snapshot.

    The aggregation pass's own wall time lands in ``obs.agg_wall_ns``
    on the *calling* process's registry (self-telemetry, RL003-covered)
    — never in the merged output unless the caller aggregates into its
    own default registry on purpose.
    """
    start = time.perf_counter_ns()
    target = into if into is not None else MetricsRegistry()
    for slab in slabs:
        merge_into(target, read_slab(slab))
    get_registry().histogram(
        names.OBS_AGG_WALL_NS,
        buckets=WALL_NS_BUCKETS,
        help="wall time of one slab aggregation pass",
    ).observe(time.perf_counter_ns() - start)
    return target
