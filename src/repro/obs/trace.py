"""Span-based tracing of the packet/chunk lifecycle.

The paper's evaluation is built on *attribution*: Table 3 attributes RX
cycles to functional bins, Figures 5/6 attribute savings to individual
techniques, and Section 6.3 attributes the end-to-end ceiling to I/O.
This module provides the substrate: every chunk's passage through the
pipeline — rx, pre-shading, gather, GPU, scatter, post-shading, tx —
records a :class:`Span` carrying the *modelled* cost of that stage
(CPU cycles and/or simulated nanoseconds) plus the packet count, and the
tracer folds spans into per-stage totals as they arrive, so a summary is
O(stages) regardless of run length.

Costs are modelled, not wall-clock, matching the repo's functional +
temporal split: a span says "this pre-shading step costs 55 cycles/packet
under the calibrated model", which is what the Table-3-style breakdowns
and the bottleneck analyzer consume.  (Wall-clock spans are available via
:meth:`Tracer.span` for profiling the reproduction itself.)
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional


class Stages:
    """Canonical stage names of the chunk lifecycle (Figure 9 order).

    The naming convention is a flat lowercase identifier per pipeline
    position; instrumented modules must use these constants so exporters
    and the bottleneck analyzer agree on identity.
    """

    RX = "rx"
    PRE_SHADE = "pre_shade"
    GATHER = "gather"
    GPU = "gpu"
    #: Shading work executed on the master's CPU because the GPU path
    #: failed (retries exhausted or circuit breaker open).
    GPU_FALLBACK = "gpu_fallback"
    SCATTER = "scatter"
    POST_SHADE = "post_shade"
    TX = "tx"
    #: CPU-only mode collapses pre/gpu/post into one worker stage.
    CPU_PROCESS = "cpu_process"
    #: Diversions to the modelled Linux stack (Section 6.2.1).
    SLOW_PATH = "slow_path"


#: Pipeline display/attribution order (stages absent from a run are
#: skipped; stages not listed here sort after, alphabetically).
PIPELINE_ORDER: List[str] = [
    Stages.RX,
    Stages.PRE_SHADE,
    Stages.GATHER,
    Stages.GPU,
    Stages.GPU_FALLBACK,
    Stages.SCATTER,
    Stages.POST_SHADE,
    Stages.CPU_PROCESS,
    Stages.SLOW_PATH,
    Stages.TX,
]


@dataclass
class Span:
    """One stage traversal by one chunk (or batch)."""

    stage: str
    packets: int = 0
    cycles: float = 0.0
    ns: float = 0.0
    seq: int = 0
    meta: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "type": "span",
            "seq": self.seq,
            "stage": self.stage,
            "packets": self.packets,
            "cycles": self.cycles,
            "ns": self.ns,
        }
        if self.meta:
            record["meta"] = self.meta
        return record


@dataclass
class StageCost:
    """Accumulated cost of one stage over a traced run."""

    stage: str
    spans: int = 0
    packets: int = 0
    cycles: float = 0.0
    ns: float = 0.0

    def add(self, packets: int, cycles: float, ns: float) -> None:
        self.spans += 1
        self.packets += packets
        self.cycles += cycles
        self.ns += ns

    def time_ns(self, clock_hz: float) -> float:
        """Total stage time with cycles converted at a CPU clock."""
        return self.ns + self.cycles / clock_hz * 1e9

    def cycles_per_packet(self) -> float:
        return self.cycles / self.packets if self.packets else 0.0

    def ns_per_packet(self) -> float:
        return self.ns / self.packets if self.packets else 0.0


class Tracer:
    """Collects spans and folds them into per-stage summaries.

    ``record`` is the hot path: one dict lookup plus three adds when
    event retention is off the critical path (events go to a bounded
    deque, so a long run cannot grow memory without bound).  Disable a
    tracer entirely with ``enabled = False``; summaries then stay empty.
    """

    def __init__(self, enabled: bool = True, max_events: int = 4096) -> None:
        self.enabled = enabled
        self.max_events = max_events
        self._events: Deque[Span] = deque(maxlen=max_events)
        self._summary: Dict[str, StageCost] = {}
        self._seq = 0

    # -- recording ------------------------------------------------------

    def record(
        self,
        stage: str,
        packets: int = 0,
        cycles: float = 0.0,
        ns: float = 0.0,
        **meta: object,
    ) -> None:
        """Record one span with modelled costs."""
        if not self.enabled:
            return
        cost = self._summary.get(stage)
        if cost is None:
            cost = self._summary[stage] = StageCost(stage)
        cost.add(packets, cycles, ns)
        self._seq += 1
        self._events.append(
            Span(stage, packets, cycles, ns, seq=self._seq, meta=meta)
        )

    @contextmanager
    def span(self, stage: str, packets: int = 0, **meta: object):
        """Wall-clock span (for profiling the reproduction itself)."""
        if not self.enabled:
            yield self
            return
        start = time.perf_counter_ns()
        try:
            yield self
        finally:
            self.record(
                stage, packets=packets,
                ns=float(time.perf_counter_ns() - start), **meta,
            )

    # -- reading --------------------------------------------------------

    def summary(self) -> Dict[str, StageCost]:
        """Per-stage accumulated costs, keyed by stage name."""
        return dict(self._summary)

    def stage(self, name: str) -> Optional[StageCost]:
        return self._summary.get(name)

    def events(self) -> List[Span]:
        """The retained span events (oldest first, bounded)."""
        return list(self._events)

    def ordered_stages(self) -> Iterator[StageCost]:
        """Stage costs in pipeline order, then extras alphabetically."""
        seen = set()
        for name in PIPELINE_ORDER:
            cost = self._summary.get(name)
            if cost is not None:
                seen.add(name)
                yield cost
        for name in sorted(self._summary):
            if name not in seen:
                yield self._summary[name]

    def total_packets(self) -> int:
        """Largest per-stage packet count — the run's end-to-end volume
        (stages see the same packets, so max, not sum)."""
        return max(
            (c.packets for c in self._summary.values()), default=0
        )

    def reset(self) -> None:
        self._events.clear()
        self._summary.clear()
        self._seq = 0


#: The process-wide default tracer.
_default_tracer = Tracer()


def get_tracer() -> Tracer:
    """The current default tracer (what instrumented code records to)."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install a tracer as the default; returns the previous one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


def reset_tracer() -> Tracer:
    """Replace the default tracer with a fresh enabled one (returned)."""
    tracer = Tracer()
    set_tracer(tracer)
    return tracer
