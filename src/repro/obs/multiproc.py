"""Worker-fleet lifecycle over shared-memory observability.

The bridge between :mod:`repro.obs.shm` (per-process metric slabs) and
real OS processes: a :class:`WorkerFleet` forks N workers, each of
which installs the full multiprocess observability stack —
:class:`~repro.obs.shm.ShmMetricsRegistry` over its own slab, a
:class:`~repro.obs.flightrec.FlightRecorder` stamped with its writer
id, a fresh tracer and profiler bound to both — and then steps a
workload exactly as the single-process ``repro top`` runners do.  The
parent aggregates the live slabs at any time (the multi-worker
dashboard) and collects per-worker flight-recorder dumps at exit (the
``flightrec merge`` input).

Writer lifecycle (docs/OBSERVABILITY.md, "Multiprocess mode"):

1. the parent *creates* every slab before any worker starts (it owns
   the segments and their unlink);
2. each worker *attaches* by session name, installs its obs stack, and
   runs; its instruments write shared slots for the rest of its life;
3. the parent reads/aggregates concurrently — single-writer slabs plus
   snapshot repair make that safe at any moment;
4. workers dump their rings to ``dump_dir`` and exit; the parent joins,
   takes a final aggregate, and unlinks the segments.

The worker entry point is a module-level function so both ``fork`` and
``spawn`` start methods work (spawn pickles the target); everything it
receives — session name, writer id, a :class:`WorkerSpec` — is plain
data (RL010).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.flightrec import FlightRecorder, set_flightrec
from repro.obs.registry import MetricsRegistry
from repro.obs.shm import (
    MetricSlab,
    ShmMetricsRegistry,
    aggregate_slabs,
    read_slab,
    slab_name,
)


@dataclass
class WorkerSpec:
    """What each worker runs — plain data, picklable across spawn."""

    app: str = "ipv4"
    scenario: Optional[str] = None
    packets: int = 2048
    seed: int = 1
    #: Bursts to run before exiting (0 = until the stop event).
    iterations: int = 1
    #: Seconds to sleep between bursts (live-dashboard pacing).
    interval: float = 0.0


def worker_session(prefix: str = "repro-obs") -> str:
    """A collision-free slab session name for this supervising process."""
    return f"{prefix}-{os.getpid():x}"


def _worker_main(session: str, writer_id: int, spec: WorkerSpec,
                 stop, dump_dir: Optional[str]) -> None:
    """One worker process: install shm observability, step the workload.

    Runs in the child.  The obs stack is installed *before* the runner
    is built so every instrumented constructor (router, engine, queues,
    breakers) binds instruments that live in this worker's slab and a
    flight ring stamped with this worker's id.
    """
    from repro.obs import (
        reset_profiler,
        reset_tracer,
        set_registry,
    )
    from repro.obs.top import _ChaosRunner, _ForwardRunner

    slab = MetricSlab.attach(slab_name(session, writer_id))
    set_registry(ShmMetricsRegistry(slab))
    reset_tracer()
    recorder = FlightRecorder(writer_id=writer_id)
    set_flightrec(recorder)
    reset_profiler()
    # Distinct seeds per worker: sibling shards see different traffic,
    # as distinct RSS queues would.
    seed = spec.seed + writer_id
    if spec.scenario is not None:
        runner = _ChaosRunner(spec.scenario, spec.packets, seed)
    else:
        runner = _ForwardRunner(spec.app, spec.packets, seed)
    done = 0
    while not stop.is_set():
        runner.step()
        done += 1
        if spec.iterations and done >= spec.iterations:
            break
        if spec.interval:
            time.sleep(spec.interval)
    if dump_dir:
        recorder.dump(
            Path(dump_dir) / f"flightrec-w{writer_id}.jsonl",
            reason=f"worker-{writer_id}",
        )
    slab.close()


class WorkerFleet:
    """Supervises N workers writing per-process slabs.

    Usable as a context manager; exit stops, joins, and unlinks.
    """

    def __init__(
        self,
        workers: int,
        spec: WorkerSpec,
        session: Optional[str] = None,
        dump_dir: Optional[str] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.spec = spec
        self.session = session or worker_session()
        self.dump_dir = Path(dump_dir) if dump_dir else None
        methods = multiprocessing.get_all_start_methods()
        method = start_method or ("fork" if "fork" in methods else "spawn")
        self._ctx = multiprocessing.get_context(method)
        # The parent creates (and so owns) every segment up front;
        # workers only ever attach.
        self.slabs: List[MetricSlab] = [
            MetricSlab.create(slab_name(self.session, wid), writer_id=wid)
            for wid in range(workers)
        ]
        self._stop = self._ctx.Event()
        self.procs: List = []

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        if self.procs:
            raise RuntimeError("fleet already started")
        if self.dump_dir:
            self.dump_dir.mkdir(parents=True, exist_ok=True)
        for slab in self.slabs:
            proc = self._ctx.Process(
                target=_worker_main,
                args=(self.session, slab.writer_id, self.spec, self._stop,
                      str(self.dump_dir) if self.dump_dir else None),
                name=f"repro-worker-{slab.writer_id}",
                daemon=True,
            )
            proc.start()
            self.procs.append(proc)

    def alive(self) -> bool:
        return any(proc.is_alive() for proc in self.procs)

    def request_stop(self) -> None:
        self._stop.set()

    def join(self, timeout: Optional[float] = None) -> None:
        for proc in self.procs:
            proc.join(timeout)

    def exitcodes(self) -> List[Optional[int]]:
        return [proc.exitcode for proc in self.procs]

    def close(self, unlink: bool = True) -> None:
        """Drop mappings and (by default) destroy the segments."""
        for slab in self.slabs:
            if unlink:
                slab.unlink()
            slab.close()

    def __enter__(self) -> "WorkerFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.request_stop()
        self.join(timeout=10.0)
        self.close()

    # -- reading --------------------------------------------------------

    def per_worker(self) -> Dict[int, MetricsRegistry]:
        """One consistent registry snapshot per live slab."""
        return {slab.writer_id: read_slab(slab) for slab in self.slabs}

    def aggregate(self, into: Optional[MetricsRegistry] = None) -> MetricsRegistry:
        """All slabs merged into one registry snapshot."""
        return aggregate_slabs(self.slabs, into=into)

    def dump_paths(self) -> List[Path]:
        """Per-worker flight-recorder dumps written so far."""
        if self.dump_dir is None:
            return []
        return sorted(self.dump_dir.glob("flightrec-w*.jsonl"))
