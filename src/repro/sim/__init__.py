"""Simulation machinery.

Two complementary engines drive the evaluation:

* :mod:`repro.sim.pipeline` — a steady-state solver: each data-path stage
  (worker pre-shading, PCIe, GPU, post-shading, I/O ceilings) exposes a
  packet-rate capacity, the sustainable throughput is the bottleneck
  stage, and per-packet latency is the sum of stage delays.  All
  throughput figures (Figures 5, 6, 11) come from this engine.
* :mod:`repro.sim.events` — a discrete-event simulator for the latency
  experiment (Figure 12), where queueing under offered load, batching
  delays, and interrupt moderation interact and a closed-form answer would
  hide the mechanics.

:mod:`repro.sim.metrics` holds the unit conventions, including the paper's
24-byte-per-frame Ethernet overhead accounting.
"""

from repro.sim.metrics import (
    gbps_to_pps,
    mpps,
    pps_to_gbps,
    ThroughputReport,
)
from repro.sim.pipeline import Stage, PipelineModel
from repro.sim.events import Event, EventLoop
from repro.sim.latency import LatencySimulator, LatencyStats

__all__ = [
    "Event",
    "EventLoop",
    "LatencySimulator",
    "LatencyStats",
    "PipelineModel",
    "Stage",
    "ThroughputReport",
    "gbps_to_pps",
    "mpps",
    "pps_to_gbps",
]
