"""Event-driven latency simulation of the PacketShader data path.

The analytic model in :mod:`repro.core.solver` composes the Figure 12
latency from closed forms (adaptive-batch fixed point, M/D/1 queueing,
moderation decay).  This module *simulates* the same data path packet by
packet on the event loop — Poisson arrivals, the interrupt/poll state
machine of Section 5.2, batched worker fetches, the master's
gather/launch/scatter cycle — and measures sojourn times directly.  The
test suite cross-validates the two: the simulation is the ground truth
for the analytic shortcuts.

Scope: one NUMA node's worth of the router under symmetric load (the
two nodes are independent by design — Section 5.1), with the node's
workers sharing one master/GPU exactly as in Figure 9.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.calib.constants import CPU, IO_ENGINE, NIC
from repro.hw.nic import effective_itr_ns
from repro.obs import LATENCY_NS_BUCKETS, get_registry, names
from repro.core.application import RouterApplication
from repro.core.config import RouterConfig
from repro.core.solver import (
    _cpu_only_cycles_per_packet,
    _worker_cycles_per_packet,
    gpu_batch_time_ns,
)
from repro.sim.events import EventLoop


@dataclass
class LatencyStats:
    """Measured sojourn-time statistics (one-way through the router).

    Samples are kept raw for percentile queries and simultaneously
    observed into the registry's end-to-end latency histogram, so a
    simulated run's latency distribution exports alongside the rest of
    the metrics.
    """

    samples: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._histogram = get_registry().histogram(
            names.SIM_SOJOURN_NS, buckets=LATENCY_NS_BUCKETS,
            help="simulated one-way sojourn times",
        )

    def record(self, latency_ns: float) -> None:
        self.samples.append(latency_ns)
        self._histogram.observe(latency_ns)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean_ns(self) -> float:
        if not self.samples:
            return math.nan
        return sum(self.samples) / len(self.samples)

    def percentile_ns(self, fraction: float) -> float:
        if not self.samples:
            return math.nan
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]


class _Packet:
    __slots__ = ("arrival_ns",)

    def __init__(self, arrival_ns: float) -> None:
        self.arrival_ns = arrival_ns


class _Chunk:
    __slots__ = ("packets", "worker")

    def __init__(self, packets: List[_Packet], worker: "_SimWorker") -> None:
        self.packets = packets
        self.worker = worker


class _SimWorker:
    """One worker thread: RX queue + interrupt/poll loop + pre-shading."""

    def __init__(self, sim: "LatencySimulator", index: int) -> None:
        self.sim = sim
        self.index = index
        self.queue: List[_Packet] = []
        self.busy = False
        #: Earliest time the NIC may deliver the next RX interrupt
        #: (the moderation timer).
        self.next_interrupt_ns = 0.0

    # -- arrivals -------------------------------------------------------

    def on_arrival(self, packet: _Packet) -> None:
        self.queue.append(packet)
        if self.busy:
            return  # polling mode: the running loop will pick it up
        # Blocked with interrupts enabled: the wakeup is gated by the
        # moderation timer (Section 6.4's latency source at low load).
        loop = self.sim.loop
        fire_at = max(loop.now_ns, self.next_interrupt_ns)
        self.busy = True
        loop.schedule_at(fire_at, self.fetch)

    def poke(self) -> None:
        """Backpressure released: resume fetching if work is pending."""
        if not self.busy and self.queue:
            self.busy = True
            self.sim.loop.schedule(0, self.fetch)

    # -- the polling loop -----------------------------------------------

    def fetch(self) -> None:
        loop = self.sim.loop
        self.next_interrupt_ns = loop.now_ns + self.sim.itr_ns
        if not self.queue:
            self.busy = False
            return
        if self.sim.use_gpu and self.sim.master.backlogged:
            # The master's input queue is full: keep the packets in the
            # RX ring and retry when the master drains (the Section 5.3
            # backpressure that grows chunks — and GPU batches — under
            # load).
            self.busy = False
            self.sim.master.wait(self)
            return
        batch = self.queue[: self.sim.chunk_cap]
        del self.queue[: len(batch)]
        service_ns = self.sim.worker_service_ns(len(batch))
        loop.schedule(service_ns, lambda b=batch: self.finish_fetch(b))

    def finish_fetch(self, batch: List[_Packet]) -> None:
        if self.sim.use_gpu:
            self.sim.master.submit(_Chunk(batch, self))
        else:
            self.sim.depart(batch)
        # Keep polling while packets are pending; otherwise block and
        # re-enable the interrupt (the livelock-avoidance contract).
        if self.queue:
            self.fetch()
        else:
            self.busy = False


class _SimMaster:
    """The node's master thread: gather, launch, scatter."""

    #: Chunks the input queue holds before backpressure engages.
    INPUT_CAPACITY = 6

    def __init__(self, sim: "LatencySimulator") -> None:
        self.sim = sim
        self.input: List[_Chunk] = []
        self.busy = False
        self._waiting: List[_SimWorker] = []
        self.launches = 0
        self.launched_packets = 0

    @property
    def backlogged(self) -> bool:
        return len(self.input) >= self.INPUT_CAPACITY

    def wait(self, worker: _SimWorker) -> None:
        if worker not in self._waiting:
            self._waiting.append(worker)

    def submit(self, chunk: _Chunk) -> None:
        self.input.append(chunk)
        if not self.busy:
            self.launch()

    def launch(self) -> None:
        if not self.input:
            self.busy = False
            return
        self.busy = True
        gathered = self.input[: self.sim.gather]
        del self.input[: len(gathered)]
        n_packets = sum(len(chunk.packets) for chunk in gathered)
        self.launches += 1
        self.launched_packets += n_packets
        transit = gpu_batch_time_ns(
            self.sim.app,
            self.sim.frame_len,
            n_packets,
            streams=self.sim.app.use_streams and self.sim.config.concurrent_copy,
        )
        self.sim.loop.schedule(transit, lambda g=gathered: self.finish(g))

    def finish(self, gathered: List[_Chunk]) -> None:
        for chunk in gathered:
            # Post-shading back on the worker (its cost is inside the
            # worker service model; the scatter itself is the handoff).
            self.sim.depart(chunk.packets)
        waiting, self._waiting = self._waiting, []
        for worker in waiting:
            worker.poke()
        self.launch()


class LatencySimulator:
    """Simulate one node of the router at an offered load."""

    def __init__(
        self,
        app: RouterApplication,
        frame_len: int = 64,
        use_gpu: bool = True,
        batching: bool = True,
        config: Optional[RouterConfig] = None,
        seed: int = 1,
    ) -> None:
        if use_gpu and not batching:
            raise ValueError("the GPU path requires batched I/O")
        self.app = app
        self.frame_len = frame_len
        self.use_gpu = use_gpu
        self.batching = batching
        self.config = config or RouterConfig(
            use_gpu=use_gpu, concurrent_copy=getattr(app, "use_streams", False)
        )
        self.seed = seed
        self.chunk_cap = self.config.chunk_capacity if batching else 1
        self.gather = self.config.effective_gather_chunks()
        self.loop = EventLoop()
        self.stats = LatencyStats()
        workers = self.config.workers_per_node
        self.workers = [_SimWorker(self, i) for i in range(workers)]
        self.master = _SimMaster(self)
        self._rng = random.Random(seed)

    # -- service-time models (shared with the analytic solver) ----------

    def worker_service_ns(self, batch: int) -> float:
        """Time a worker spends on one fetched batch."""
        if self.use_gpu:
            per_packet = _worker_cycles_per_packet(self.app, self.frame_len)
            cycles = IO_ENGINE.per_batch_cycles + batch * per_packet
        else:
            per_packet = _cpu_only_cycles_per_packet(self.app, self.frame_len)
            cycles = IO_ENGINE.per_batch_cycles + batch * per_packet
        return cycles * 1e9 / CPU.clock_hz

    # -- measurement ------------------------------------------------------

    def depart(self, packets: List[_Packet]) -> None:
        now = self.loop.now_ns
        if now < self._warmup_ns:
            return
        for packet in packets:
            self.stats.record(now - packet.arrival_ns)

    def run(
        self,
        offered_pps: float,
        duration_ns: float = 30e6,
        warmup_ns: float = 5e6,
    ) -> LatencyStats:
        """Offer node-share Poisson traffic and measure sojourn times.

        ``offered_pps`` is the *system* rate; this node receives half
        (Section 5.1's symmetric partitioning).  Returns the statistics
        over packets departing after the warmup.
        """
        if offered_pps <= 0:
            raise ValueError("offered load must be positive")
        self._warmup_ns = warmup_ns
        node_rate = offered_pps / self.config.system.num_nodes
        # The dynamic moderation window at this per-worker rate.
        self.itr_ns = effective_itr_ns(node_rate / len(self.workers))
        mean_gap_ns = 1e9 / node_rate

        def arrive():
            worker = self._rng.randrange(len(self.workers))
            packet = _Packet(self.loop.now_ns)
            self.workers[worker].on_arrival(packet)
            gap = self._rng.expovariate(1.0) * mean_gap_ns
            if self.loop.now_ns + gap < duration_ns:
                self.loop.schedule(gap, arrive)

        self.loop.schedule(self._rng.expovariate(1.0) * mean_gap_ns, arrive)
        self.loop.run(until_ns=duration_ns * 1.5, max_events=5_000_000)
        return self.stats
