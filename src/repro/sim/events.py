"""A minimal discrete-event simulation kernel.

Drives the Figure 12 latency experiment (:mod:`repro.sim.latency`), where
the interactions between Poisson arrivals, batch accumulation, server busy
periods, and GPU pipeline stages produce the latency-vs-load curves.  The
kernel is a classic binary-heap event loop with deterministic FIFO
tie-breaking (events at equal timestamps fire in schedule order), which the
property tests rely on.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by (time, sequence number)."""

    time_ns: float
    seq: int
    action: Callable = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventLoop:
    """Binary-heap event loop with simulated nanosecond time."""

    def __init__(self) -> None:
        self._heap = []
        self._counter = itertools.count()
        self.now_ns = 0.0
        self.processed = 0

    def schedule(self, delay_ns: float, action: Callable) -> Event:
        """Schedule ``action`` to run ``delay_ns`` after the current time."""
        if delay_ns < 0:
            raise ValueError(f"cannot schedule into the past: {delay_ns}")
        if not math.isfinite(delay_ns):
            raise ValueError("delay must be finite")
        event = Event(self.now_ns + delay_ns, next(self._counter), action)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time_ns: float, action: Callable) -> Event:
        """Schedule ``action`` at an absolute simulated time."""
        return self.schedule(time_ns - self.now_ns, action)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (lazy removal)."""
        event.cancelled = True

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time_ns if self._heap else None

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time_ns < self.now_ns:
                raise RuntimeError("event loop time went backwards")
            self.now_ns = event.time_ns
            self.processed += 1
            event.action()
            return True
        return False

    def run(self, until_ns: float = math.inf, max_events: int = 10_000_000) -> None:
        """Run until the horizon, the queue drains, or the event budget.

        ``max_events`` is a guard against accidental infinite self-
        rescheduling; hitting it raises rather than spinning silently.
        """
        executed = 0
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > until_ns:
                self.now_ns = max(self.now_ns, min(until_ns, self.now_ns))
                return
            self.step()
            executed += 1
            if executed >= max_events:
                raise RuntimeError(f"event budget exhausted ({max_events})")
