"""Throughput metrics with the paper's accounting conventions.

The paper (footnote 1) charges the 24-byte Ethernet overhead (preamble,
SFD, FCS, inter-frame gap) when converting packet rates to Gbps, and
translates other papers' numbers to the same metric.  All conversions in
this reproduction go through this module so the convention is applied
exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.ethernet import wire_bits


def pps_to_gbps(pps: float, frame_len: int) -> float:
    """Packets/s -> Gbps of wire throughput (24 B overhead included)."""
    if pps < 0:
        raise ValueError(f"negative packet rate: {pps}")
    return pps * wire_bits(frame_len) / 1e9


def gbps_to_pps(gbps: float, frame_len: int) -> float:
    """Gbps of wire throughput -> packets/s."""
    if gbps < 0:
        raise ValueError(f"negative throughput: {gbps}")
    return gbps * 1e9 / wire_bits(frame_len)


def mpps(pps: float) -> float:
    """Packets/s -> millions of packets/s (the paper's Mpps)."""
    return pps / 1e6


@dataclass
class ThroughputReport:
    """One measured operating point: rate, frame size, and the bottleneck.

    ``bottleneck`` names the stage that limits throughput — the quantity
    the paper spends Section 4.6 and 6.3 identifying ("we conclude that
    the bottleneck lies in I/O").
    """

    frame_len: int
    pps: float
    bottleneck: str = ""

    @property
    def gbps(self) -> float:
        return pps_to_gbps(self.pps, self.frame_len)

    @property
    def mpps(self) -> float:
        return mpps(self.pps)

    def __str__(self) -> str:
        return (
            f"{self.frame_len}B: {self.gbps:6.2f} Gbps "
            f"({self.mpps:6.2f} Mpps), bottleneck={self.bottleneck}"
        )
