"""Steady-state pipeline throughput solver.

A router data path is a pipeline of stages (RX DMA, worker pre-shading,
PCIe h2d, GPU kernel, PCIe d2h, post-shading, TX DMA...).  In steady state
the sustainable packet rate is the capacity of the slowest stage, and the
base one-way latency of a packet is the sum of the per-chunk stage delays
it traverses plus its queueing delay.

Stages are deliberately simple — a name, a packets/s capacity, and a
per-packet transit delay — because the interesting modelling lives in how
the applications *derive* those capacities from the hardware models.  The
solver's job is bottleneck identification (which the paper does by hand in
Sections 4.6 and 6.3) and latency composition (Figure 12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.obs.analyzer import limiting_stage
from repro.sim.metrics import ThroughputReport


@dataclass(frozen=True)
class Stage:
    """One pipeline stage.

    ``capacity_pps`` is the maximum sustained packet rate through the
    stage; ``transit_ns`` is the time one packet (or its chunk) spends in
    the stage when uncontended.  ``parallelism`` scales capacity (e.g. two
    GPUs, six worker cores) but not transit time.
    """

    name: str
    capacity_pps: float
    transit_ns: float = 0.0
    parallelism: int = 1

    def __post_init__(self) -> None:
        if self.capacity_pps <= 0:
            raise ValueError(f"stage {self.name}: capacity must be positive")
        if self.transit_ns < 0:
            raise ValueError(f"stage {self.name}: negative transit time")
        if self.parallelism < 1:
            raise ValueError(f"stage {self.name}: parallelism must be >= 1")

    @property
    def effective_capacity_pps(self) -> float:
        return self.capacity_pps * self.parallelism


class PipelineModel:
    """A chain of stages with bottleneck and latency analysis."""

    def __init__(self, stages: List[Stage], frame_len: int) -> None:
        if not stages:
            raise ValueError("pipeline needs at least one stage")
        self.stages = list(stages)
        self.frame_len = frame_len

    @property
    def bottleneck(self) -> Stage:
        """The stage with the lowest effective capacity.

        Delegates to the observability layer's bottleneck analyzer, so
        every ``ThroughputReport.bottleneck`` in the repo is computed by
        the same code path — never hand-filled.
        """
        return limiting_stage(self.stages)

    @property
    def capacity_pps(self) -> float:
        """Sustainable packet rate of the whole pipeline."""
        return self.bottleneck.effective_capacity_pps

    def report(self) -> ThroughputReport:
        """Throughput at saturation, annotated with the bottleneck stage."""
        return ThroughputReport(
            frame_len=self.frame_len,
            pps=self.capacity_pps,
            bottleneck=self.bottleneck.name,
        )

    def base_latency_ns(self) -> float:
        """Uncontended one-way latency: sum of stage transit times."""
        return sum(stage.transit_ns for stage in self.stages)

    def latency_ns(self, offered_pps: float) -> float:
        """One-way latency at an offered load, queueing included.

        Each stage is treated as an M/D/1 queue at utilisation
        ``rho = offered / capacity``; the mean queueing delay is
        ``rho / (2 (1 - rho))`` service times (Pollaczek-Khinchine with
        deterministic service).  Offered loads at or beyond saturation
        return ``inf`` — the latency figure's hockey stick.
        """
        if offered_pps < 0:
            raise ValueError("offered load must be non-negative")
        if offered_pps >= self.capacity_pps:
            return math.inf
        total = 0.0
        for stage in self.stages:
            service_ns = 1e9 / stage.effective_capacity_pps
            rho = offered_pps / stage.effective_capacity_pps
            queueing = rho / (2.0 * (1.0 - rho)) * service_ns
            total += stage.transit_ns + queueing
        return total

    def utilization(self, offered_pps: float) -> dict:
        """Per-stage utilisation at an offered load (for reports/tests)."""
        return {
            stage.name: offered_pps / stage.effective_capacity_pps
            for stage in self.stages
        }
