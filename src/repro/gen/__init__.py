"""Traffic generation (paper Section 6.1).

The paper built its own 80 Gbps generator on the same packet I/O engine;
ours generates the same *workloads* deterministically: frames of the
evaluation sizes with "random destination IP addresses and UDP port
numbers (so that IP forwarding and OpenFlow look up a different entry for
every packet)", plus the arrival processes (backlogged for throughput
runs, Poisson for the latency sweep).
"""

from repro.gen.packetgen import PacketGenerator
from repro.gen.workloads import (
    EVAL_FRAME_SIZES,
    ipv4_workload,
    ipv6_workload,
    openflow_workload,
    ipsec_workload,
)
from repro.gen.arrivals import poisson_interarrivals_ns, constant_interarrivals_ns

__all__ = [
    "EVAL_FRAME_SIZES",
    "PacketGenerator",
    "constant_interarrivals_ns",
    "ipsec_workload",
    "ipv4_workload",
    "ipv6_workload",
    "openflow_workload",
    "poisson_interarrivals_ns",
]
