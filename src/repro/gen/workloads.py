"""The evaluation workloads, one constructor per Figure 11 experiment.

Each workload bundles the forwarding state (tables, SAs) with a frame
stream, so examples, tests, and benchmarks all run the identical setup
the paper describes in Section 6.2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.crypto.esp import SecurityAssociation
from repro.gen.packetgen import PacketGenerator
from repro.lookup.dir24_8 import Dir24_8
from repro.lookup.ipv6_bsearch import IPv6BinarySearch
from repro.lookup.routeviews import random_ipv6_table, synthetic_bgp_table
from repro.openflow.actions import Action, ActionType
from repro.openflow.flowkey import FlowKey, VLAN_NONE
from repro.openflow.flowtable import WildcardEntry
from repro.openflow.switch import OpenFlowSwitch

#: Frame sizes the evaluation sweeps (Figures 6 and 11).
EVAL_FRAME_SIZES = (64, 128, 256, 512, 1024, 1514)


@dataclass
class IPv4Workload:
    """RouteViews-shaped table + random-destination traffic."""

    table: Dir24_8
    generator: PacketGenerator
    num_routes: int


def ipv4_workload(
    num_routes: int = 0, num_ports: int = 8, seed: int = 42
) -> IPv4Workload:
    """The Section 6.2.1 setup.  ``num_routes=0`` means the full
    RouteViews count (282,797); tests pass smaller counts."""
    routes = (
        synthetic_bgp_table(num_next_hops=num_ports, seed=seed)
        if num_routes == 0
        else synthetic_bgp_table(num_routes, num_ports, seed)
    )
    table = Dir24_8()
    table.add_routes(routes)
    return IPv4Workload(table=table, generator=PacketGenerator(seed),
                        num_routes=len(routes))


@dataclass
class IPv6Workload:
    """200k random prefixes + random-destination traffic."""

    table: IPv6BinarySearch
    generator: PacketGenerator
    num_routes: int


def ipv6_workload(
    num_routes: int = 200_000, num_ports: int = 8, seed: int = 42
) -> IPv6Workload:
    """The Section 6.2.2 setup: randomly generated prefixes, sized to
    defeat CPU caches."""
    routes = random_ipv6_table(num_routes, num_ports, seed)
    table = IPv6BinarySearch()
    table.build(routes)
    return IPv6Workload(table=table, generator=PacketGenerator(seed),
                        num_routes=len(routes))


@dataclass
class OpenFlowWorkload:
    """A populated switch plus the keys its exact entries match."""

    switch: OpenFlowSwitch
    generator: PacketGenerator
    exact_keys: List[FlowKey]
    num_exact: int
    num_wildcard: int


def _random_key(rng: random.Random, in_port_range: int = 8) -> FlowKey:
    return FlowKey(
        in_port=rng.randrange(in_port_range),
        dl_src=rng.getrandbits(48),
        dl_dst=rng.getrandbits(48),
        dl_vlan=VLAN_NONE,
        dl_type=0x0800,
        nw_src=rng.getrandbits(32),
        nw_dst=rng.getrandbits(32),
        nw_proto=17,
        tp_src=rng.randint(1, 65535),
        tp_dst=rng.randint(1, 65535),
    )


def openflow_workload(
    num_exact: int = 32 * 1024,
    num_wildcard: int = 32,
    num_ports: int = 8,
    seed: int = 42,
) -> OpenFlowWorkload:
    """The Section 6.2.3 setup; the default 32K+32 is the configuration
    compared against the NetFPGA implementation."""
    rng = random.Random(seed)
    switch = OpenFlowSwitch()
    exact_keys = []
    for _ in range(num_exact):
        key = _random_key(rng)
        switch.add_exact_flow(
            key, [Action(ActionType.OUTPUT, rng.randrange(num_ports))]
        )
        exact_keys.append(key)
    for priority in range(num_wildcard, 0, -1):
        switch.add_wildcard_flow(
            WildcardEntry(
                priority=priority,
                fields={"nw_dst": rng.getrandbits(32), "dl_type": 0x0800},
                nw_dst_mask=rng.choice((8, 16, 24)),
                actions=[Action(ActionType.OUTPUT, rng.randrange(num_ports))],
            )
        )
    return OpenFlowWorkload(
        switch=switch,
        generator=PacketGenerator(seed),
        exact_keys=exact_keys,
        num_exact=num_exact,
        num_wildcard=num_wildcard,
    )


@dataclass
class IPsecWorkload:
    """An outbound SA plus plaintext traffic to tunnel."""

    sa: SecurityAssociation
    generator: PacketGenerator


def ipsec_workload(seed: int = 42) -> IPsecWorkload:
    """The Section 6.2.4 setup: AES-128-CTR + HMAC-SHA1, static keys."""
    rng = random.Random(seed)
    sa = SecurityAssociation(
        spi=0x50534844,  # 'PSHD'
        encryption_key=rng.getrandbits(128).to_bytes(16, "big"),
        nonce=rng.getrandbits(32).to_bytes(4, "big"),
        auth_key=rng.getrandbits(160).to_bytes(20, "big"),
        tunnel_src=0x0A000001,
        tunnel_dst=0x0A000002,
    )
    return IPsecWorkload(sa=sa, generator=PacketGenerator(seed))
