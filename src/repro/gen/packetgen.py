"""Deterministic packet generator.

Builds real frames with seeded randomness, so every experiment is
reproducible bit-for-bit.  The generator is also the traffic *sink* for
round-trip latency measurement, like the paper's (timestamps ride in the
UDP payload).

Instrumentation goes through :mod:`repro.obs` — the repo's single
instrumentation path: generated-frame counters land in the shared
metrics registry and diagnostics go through the ``repro.gen.packetgen``
logger, so generator volume exports alongside router counters.
"""

from __future__ import annotations

import random
import struct
from typing import List, Optional

from repro.net.packet import build_udp_ipv4, build_udp_ipv6
from repro.obs import get_logger, get_registry, names

log = get_logger("gen.packetgen")


class PacketGenerator:
    """Seeded generator of evaluation traffic."""

    def __init__(self, seed: int = 1) -> None:
        self.rng = random.Random(seed)
        self.generated = 0
        registry = get_registry()
        self._m_ipv4 = registry.counter(
            names.GEN_FRAMES, help="frames built by the generator", family="ipv4"
        )
        self._m_ipv6 = registry.counter(
            names.GEN_FRAMES, help="frames built by the generator", family="ipv6"
        )

    def random_ipv4_frame(self, frame_len: int = 64,
                          timestamp_ns: Optional[int] = None) -> bytearray:
        """One IPv4/UDP frame with random dst address and ports."""
        payload = b""
        if timestamp_ns is not None:
            payload = struct.pack(">Q", timestamp_ns)
        frame = build_udp_ipv4(
            src_ip=self.rng.getrandbits(32),
            dst_ip=self.rng.getrandbits(32),
            src_port=self.rng.randint(1024, 65535),
            dst_port=self.rng.randint(1, 65535),
            frame_len=frame_len,
            payload=payload,
        )
        self.generated += 1
        self._m_ipv4.inc()
        return frame

    def random_ipv6_frame(self, frame_len: int = 78,
                          timestamp_ns: Optional[int] = None) -> bytearray:
        """One IPv6/UDP frame with random dst address and ports."""
        payload = b""
        if timestamp_ns is not None:
            payload = struct.pack(">Q", timestamp_ns)
        frame = build_udp_ipv6(
            src_ip=self.rng.getrandbits(128),
            dst_ip=self.rng.getrandbits(128),
            src_port=self.rng.randint(1024, 65535),
            dst_port=self.rng.randint(1, 65535),
            frame_len=frame_len,
            payload=payload,
        )
        self.generated += 1
        self._m_ipv6.inc()
        return frame

    def ipv4_burst(self, count: int, frame_len: int = 64) -> List[bytearray]:
        """A burst of random-destination IPv4 frames."""
        if count < 0:
            raise ValueError("count must be non-negative")
        log.debug("ipv4 burst: %d frames of %d B", count, frame_len)
        return [self.random_ipv4_frame(frame_len) for _ in range(count)]

    def ipv6_burst(self, count: int, frame_len: int = 78) -> List[bytearray]:
        """A burst of random-destination IPv6 frames."""
        if count < 0:
            raise ValueError("count must be non-negative")
        log.debug("ipv6 burst: %d frames of %d B", count, frame_len)
        return [self.random_ipv6_frame(frame_len) for _ in range(count)]

    def random_ipv4_addresses(self, count: int) -> List[int]:
        """Bare random addresses (the Figure 2 lookup-only workload)."""
        return [self.rng.getrandbits(32) for _ in range(count)]

    def random_ipv6_addresses(self, count: int) -> List[int]:
        """Bare random 128-bit addresses."""
        return [self.rng.getrandbits(128) for _ in range(count)]

    @staticmethod
    def read_timestamp(frame: bytes, l4_payload_offset: int = 42) -> Optional[int]:
        """Recover a timestamp embedded by the frame builders."""
        if len(frame) < l4_payload_offset + 8:
            return None
        return struct.unpack_from(">Q", frame, l4_payload_offset)[0]

    @staticmethod
    def replay_pcap(path: str) -> List[bytearray]:
        """Load a capture as injectable frames (trace replay).

        Pairs with :func:`repro.net.pcap.write_pcap`: dump a run's sink,
        edit or trim it in Wireshark, and replay it through the testbed.
        """
        from repro.net.pcap import read_pcap

        frames = [bytearray(record.data) for record in read_pcap(path)]
        log.info("replayed %d frames from %s", len(frames), path)
        return frames
