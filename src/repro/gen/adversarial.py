"""Adversarial and Internet-realistic traffic generators.

The paper's evaluation (Fig 11/12) offers uniform synthetic traffic —
every frame an independent random destination.  "Benchmarking NFV
Software Dataplanes" shows dataplane rankings change qualitatively under
realistic and adversarial inputs, so this module generates the traffic
that actually stresses a software router's weak points:

* **heavy-tailed flow mixes** — Zipf-ranked flows (a few elephants,
  a long tail of mice), the empirical shape of Internet traffic;
* **self-similar burst schedules** — heavy-tailed burst sizes layered on
  :mod:`repro.gen.arrivals`, so queues see the excursions Poisson
  smoothing hides;
* **SYN floods** — TCP SYN frames with spoofed sources, engineered to
  defeat flow caches (every packet is a never-seen flow);
* **spoofed-source DDoS** — UDP frames with a unique forged source per
  packet, the reactive-install killer that explodes flow tables;
* **pcap replay** — captures ingested via :mod:`repro.net.pcap` become
  injection schedules, so real traces run through the same harness.

Everything is seed-deterministic: a schedule is a pure function of
``(profile, packets, seed)``, packet counts are conserved exactly, and
the flow-key sets let the overload controller and the chaos runner agree
on which traffic is "established".
"""

from __future__ import annotations

import bisect
import itertools
import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.gen.arrivals import burst_sizes
from repro.net.packet import build_tcp_ipv4, build_udp_ipv4
from repro.net.tcp import FLAG_SYN
from repro.obs import get_logger, get_registry, names

log = get_logger("gen.adversarial")

#: The wire identity of one flow: (src_ip, dst_ip, src_port, dst_port,
#: proto) — the same tuple the overload controller's RX classifier keys
#: its established-flow cache with.
FlowId = Tuple[int, int, int, int, int]

PROTO_TCP = 6
PROTO_UDP = 17


def _flow_id_of(src_ip: int, dst_ip: int, src_port: int, dst_port: int,
                proto: int) -> FlowId:
    return (src_ip, dst_ip, src_port, dst_port, proto)


# ----------------------------------------------------------------------
# Heavy-tailed flow mix (Zipf-ranked flows).
# ----------------------------------------------------------------------


class ZipfFlowMix:
    """A population of flows whose packet counts follow a Zipf law.

    Rank ``r`` (1-based) carries weight ``r ** -exponent``; sampling is
    exact inverse-CDF over the cumulative weights, so the empirical
    exponent converges on the configured one.  Flow identities (5-tuple)
    are a pure function of ``(seed, rank)``, so two mixes with the same
    seed describe the same population — millions of concurrent flows are
    just a larger rank space, not more state per packet.
    """

    def __init__(
        self,
        num_flows: int = 10_000,
        exponent: float = 1.2,
        seed: int = 1,
        frame_len: int = 64,
        dst_pool: Optional[List[int]] = None,
    ) -> None:
        if num_flows < 1:
            raise ValueError("num_flows must be >= 1")
        if exponent <= 0:
            raise ValueError("exponent must be positive")
        self.num_flows = num_flows
        self.exponent = exponent
        self.seed = seed
        self.frame_len = frame_len
        #: Optional destination addresses to draw from (e.g. addresses
        #: the run's FIB actually routes); None means random 32-bit.
        self.dst_pool = list(dst_pool) if dst_pool else None
        # String seeds go through random.Random's sha512 path, so the
        # stream is stable across processes (PYTHONHASHSEED-proof).
        self.rng = random.Random(f"zipf:{seed}")
        self._cumulative = list(itertools.accumulate(
            (rank + 1) ** -exponent for rank in range(num_flows)
        ))
        self._total = self._cumulative[-1]
        self._m_frames = get_registry().counter(
            names.GEN_FRAMES, help="frames built by the generator",
            family="adversarial",
        )

    def flow_of_rank(self, rank: int) -> FlowId:
        """The deterministic 5-tuple of rank ``rank`` (0-based)."""
        rng = random.Random(f"zipf-flow:{self.seed}:{rank}")
        src = rng.getrandbits(32)
        dst = rng.getrandbits(32)
        if self.dst_pool:
            dst = self.dst_pool[dst % len(self.dst_pool)]
        return _flow_id_of(
            src_ip=src,
            dst_ip=dst,
            src_port=rng.randint(1024, 65535),
            dst_port=rng.randint(1, 65535),
            proto=PROTO_UDP,
        )

    def sample_ranks(self, count: int) -> List[int]:
        """Draw ``count`` flow ranks from the Zipf distribution."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [
            bisect.bisect_left(
                self._cumulative, self.rng.random() * self._total
            )
            for _ in range(count)
        ]

    def frames(self, count: int) -> List[bytearray]:
        """``count`` frames, flows drawn by Zipf rank."""
        out = []
        for rank in self.sample_ranks(count):
            src, dst, sport, dport, _ = self.flow_of_rank(rank)
            out.append(build_udp_ipv4(
                src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport,
                frame_len=self.frame_len,
            ))
        self._m_frames.inc(len(out))
        return out


def fit_zipf_exponent(ranks: List[int], top: int = 50) -> float:
    """Least-squares slope of log(freq) vs log(rank) over the top ranks.

    The property tests use this to check a sampled mix hits its
    configured exponent within tolerance.
    """
    counts: Dict[int, int] = {}
    for rank in ranks:
        counts[rank] = counts.get(rank, 0) + 1
    ordered = sorted(counts.values(), reverse=True)[:top]
    if len(ordered) < 2:
        raise ValueError("need at least two distinct ranks to fit")
    xs = [math.log(i + 1) for i in range(len(ordered))]
    ys = [math.log(c) for c in ordered]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    slope = (
        sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        / sum((x - mean_x) ** 2 for x in xs)
    )
    return -slope


# ----------------------------------------------------------------------
# Attack traffic.
# ----------------------------------------------------------------------


def syn_flood(
    packets: int,
    seed: int = 1,
    victim_ip: int = 0x0A00002A,
    victim_port: int = 80,
    frame_len: int = 64,
) -> List[bytearray]:
    """A TCP SYN flood: every frame a spoofed, never-repeated source.

    Each packet opens a "connection" that will never complete — the
    classic state-exhaustion attack.  Because every 5-tuple is unique,
    no flow cache ever gets a second hit.
    """
    if packets < 0:
        raise ValueError("packets must be non-negative")
    rng = random.Random(f"syn-flood:{seed}")
    frames = [
        build_tcp_ipv4(
            src_ip=rng.getrandbits(32),
            dst_ip=victim_ip,
            src_port=rng.randint(1024, 65535),
            dst_port=victim_port,
            frame_len=frame_len,
            flags=FLAG_SYN,
            seq=rng.getrandbits(32),
        )
        for _ in range(packets)
    ]
    get_registry().counter(
        names.GEN_FRAMES, help="frames built by the generator",
        family="adversarial",
    ).inc(len(frames))
    return frames


def spoofed_udp_flood(
    packets: int,
    seed: int = 1,
    num_victims: int = 4,
    frame_len: int = 64,
) -> List[bytearray]:
    """A spoofed-source UDP flood: unique forged 5-tuple per packet.

    Aimed at reactive flow installation — every packet is a table miss,
    a controller punt, and an install attempt, so an unbounded exact
    table grows by one entry per packet.
    """
    if packets < 0 or num_victims < 1:
        raise ValueError("packets must be >= 0 and num_victims >= 1")
    rng = random.Random(f"udp-flood:{seed}")
    victims = [0x0A000100 + v for v in range(num_victims)]
    frames = [
        build_udp_ipv4(
            src_ip=rng.getrandbits(32),
            dst_ip=victims[i % num_victims],
            src_port=rng.randint(1024, 65535),
            dst_port=rng.randint(1, 65535),
            frame_len=frame_len,
        )
        for i in range(packets)
    ]
    get_registry().counter(
        names.GEN_FRAMES, help="frames built by the generator",
        family="adversarial",
    ).inc(len(frames))
    return frames


# ----------------------------------------------------------------------
# Established (legitimate) background traffic.
# ----------------------------------------------------------------------


class EstablishedFlows:
    """A fixed set of long-lived flows emitting steady traffic.

    The goodput the overload controller must protect: the flow set is
    known up front, so chaos runs can count exactly how many established
    frames made it to the wire.
    """

    def __init__(
        self,
        num_flows: int = 32,
        seed: int = 1,
        frame_len: int = 64,
        dst_pool: Optional[List[int]] = None,
    ) -> None:
        if num_flows < 1:
            raise ValueError("num_flows must be >= 1")
        rng = random.Random(f"established:{seed}")
        self.flows: List[FlowId] = []
        for i in range(num_flows):
            dst = rng.getrandbits(32)
            if dst_pool:
                dst = dst_pool[dst % len(dst_pool)]
            self.flows.append(_flow_id_of(
                src_ip=0xC0A80000 + i,
                dst_ip=dst,
                src_port=rng.randint(1024, 65535),
                dst_port=rng.randint(1, 65535),
                proto=PROTO_UDP,
            ))
        self.frame_len = frame_len
        self._cursor = 0

    @property
    def flow_set(self) -> FrozenSet[FlowId]:
        return frozenset(self.flows)

    def frames(self, count: int) -> List[bytearray]:
        """``count`` frames round-robin across the flow set."""
        if count < 0:
            raise ValueError("count must be non-negative")
        out = []
        for _ in range(count):
            src, dst, sport, dport, _ = self.flows[
                self._cursor % len(self.flows)
            ]
            self._cursor += 1
            out.append(build_udp_ipv4(
                src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport,
                frame_len=self.frame_len,
            ))
        return out


# ----------------------------------------------------------------------
# Schedules: what the chaos runner and the workloads benchmark inject.
# ----------------------------------------------------------------------


@dataclass
class TrafficSchedule:
    """An injection plan: bursts of frames plus the protected flow set.

    ``sum(len(b) for b in bursts)`` equals the requested packet count
    exactly (conservation starts at the generator).  ``established``
    names the flows whose goodput the overload controller must preserve;
    ``established_packets`` is how many of the scheduled frames belong
    to them.
    """

    name: str
    bursts: List[List[bytearray]]
    established: FrozenSet[FlowId] = frozenset()
    established_packets: int = 0
    attack_packets: int = 0

    @property
    def total_packets(self) -> int:
        return sum(len(burst) for burst in self.bursts)


def _interleave(*groups: List[bytearray]) -> List[bytearray]:
    """Deterministically interleave frame lists (round-robin merge)."""
    out: List[bytearray] = []
    cursors = [0] * len(groups)
    remaining = sum(len(g) for g in groups)
    while remaining:
        for i, group in enumerate(groups):
            if cursors[i] < len(group):
                out.append(group[cursors[i]])
                cursors[i] += 1
                remaining -= 1
    return out


def uniform_schedule(packets: int, seed: int = 1,
                     burst: int = 256) -> TrafficSchedule:
    """The historical chaos traffic: uniform random-destination IPv4."""
    from repro.gen.packetgen import PacketGenerator

    frames = PacketGenerator(seed).ipv4_burst(packets)
    bursts = [frames[i:i + burst] for i in range(0, len(frames), burst)]
    return TrafficSchedule(name="uniform", bursts=bursts)


def heavy_tail_schedule(
    packets: int,
    seed: int = 1,
    burst: int = 256,
    num_flows: int = 2_000,
    exponent: float = 1.2,
    dst_pool: Optional[List[int]] = None,
) -> TrafficSchedule:
    """Zipf flow mix delivered in self-similar (heavy-tailed) bursts.

    A short uniform warmup lets the controller learn the mix's top
    flows, then the remainder arrives in Pareto-sized bursts — the
    traffic shape that makes adaptive chunk sizing earn its keep.
    """
    mix = ZipfFlowMix(num_flows=num_flows, exponent=exponent, seed=seed,
                      dst_pool=dst_pool)
    warmup = min(packets, burst)
    flood = packets - warmup
    bursts = []
    if warmup:
        bursts.append(mix.frames(warmup))
    if flood:
        num_bursts = max(1, flood // burst)
        for size in burst_sizes(num_bursts, flood, seed=seed):
            if size:
                bursts.append(mix.frames(size))
    schedule = TrafficSchedule(name="heavy-tail", bursts=bursts)
    log.debug("heavy-tail schedule: %d bursts, %d packets",
              len(bursts), schedule.total_packets)
    return schedule


def _flood_schedule(
    name: str,
    packets: int,
    seed: int,
    burst: int,
    attack_frames: Callable[[int, int], List[bytearray]],
    established_share: float = 0.25,
    num_established: int = 32,
    dst_pool: Optional[List[int]] = None,
) -> TrafficSchedule:
    """Warmup of legitimate flows, then attack bursts with background.

    Phase 1 (one burst) carries only established traffic so admission
    control learns the protected set under low pressure; phase 2 mixes
    steady established background into large attack bursts — the attack
    arrives in ring-filling slabs (four times the nominal burst) so RX
    occupancy actually climbs.
    """
    legit = EstablishedFlows(num_flows=num_established, seed=seed,
                             dst_pool=dst_pool)
    warmup = min(packets, burst)
    rest = packets - warmup
    established_rest = int(rest * established_share)
    attack_total = rest - established_rest
    bursts = []
    if warmup:
        bursts.append(legit.frames(warmup))
    attack = attack_frames(attack_total, seed)
    background = legit.frames(established_rest)
    slab = burst * 4
    cursor_a = cursor_b = 0
    while cursor_a < len(attack) or cursor_b < len(background):
        take_a = attack[cursor_a:cursor_a + slab]
        share = max(1, int(slab * established_share)) if background else 0
        take_b = background[cursor_b:cursor_b + share]
        cursor_a += len(take_a)
        cursor_b += len(take_b)
        bursts.append(_interleave(take_b, take_a))
    return TrafficSchedule(
        name=name,
        bursts=[b for b in bursts if b],
        established=legit.flow_set,
        established_packets=warmup + established_rest,
        attack_packets=attack_total,
    )


def syn_flood_schedule(
    packets: int, seed: int = 1, burst: int = 256,
    dst_pool: Optional[List[int]] = None,
) -> TrafficSchedule:
    """SYN flood over established background (attack-classified shed)."""
    return _flood_schedule(
        "syn-flood", packets, seed, burst,
        lambda count, s: syn_flood(count, seed=s),
        dst_pool=dst_pool,
    )


def ddos_schedule(
    packets: int, seed: int = 1, burst: int = 256,
    dst_pool: Optional[List[int]] = None,
) -> TrafficSchedule:
    """Spoofed-source UDP DDoS over established background."""
    return _flood_schedule(
        "ddos", packets, seed, burst,
        lambda count, s: spoofed_udp_flood(count, seed=s),
        established_share=0.2,
        dst_pool=dst_pool,
    )


def pcap_schedule(path: str, burst: int = 256,
                  name: Optional[str] = None) -> TrafficSchedule:
    """Replay a capture as an injection schedule (trace ingest).

    Pairs with :func:`repro.net.pcap.write_pcap` /
    :meth:`repro.gen.packetgen.PacketGenerator.replay_pcap`: any capture
    — a previous run's sink, a trimmed real trace — becomes a schedule
    the chaos runner and benchmarks can inject.
    """
    from repro.gen.packetgen import PacketGenerator

    if burst < 1:
        raise ValueError("burst must be >= 1")
    frames = PacketGenerator.replay_pcap(path)
    bursts = [frames[i:i + burst] for i in range(0, len(frames), burst)]
    return TrafficSchedule(name=name or "pcap-replay", bursts=bursts)


#: Named profiles.  The chaos scenarios and the workloads benchmark
#: select traffic by these keys; every builder takes
#: ``(packets, seed, burst, dst_pool)``.
TRAFFIC_PROFILES: Dict[str, Callable[..., TrafficSchedule]] = {
    "uniform": lambda packets, seed, burst, dst_pool=None: (
        uniform_schedule(packets, seed, burst)
    ),
    "heavy-tail": heavy_tail_schedule,
    "syn-flood": syn_flood_schedule,
    "ddos": ddos_schedule,
}


def build_schedule(
    profile: str,
    packets: int,
    seed: int = 1,
    burst: int = 256,
    dst_pool: Optional[List[int]] = None,
) -> TrafficSchedule:
    """Build a named profile's schedule for ``(packets, seed, burst)``.

    ``dst_pool`` optionally pins destination addresses to ones the run's
    FIB routes (ignored by the uniform profile, which reproduces the
    historical chaos traffic byte for byte).
    """
    try:
        builder = TRAFFIC_PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown traffic profile {profile!r} "
            f"(choose from {', '.join(sorted(TRAFFIC_PROFILES))})"
        ) from None
    if packets < 0 or burst < 1:
        raise ValueError("packets must be >= 0 and burst >= 1")
    return builder(packets, seed, burst, dst_pool=dst_pool)
