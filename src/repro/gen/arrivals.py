"""Arrival processes for the latency experiment (Figure 12) and floods.

The throughput experiments offer backlogged traffic (constant
interarrivals at line rate); the latency sweep offers a range of loads.
Poisson arrivals model the generator's randomised send process and excite
the queueing behaviour the figure shows.  The self-similar processes
below feed the adversarial workloads (:mod:`repro.gen.adversarial`):
Internet traffic is bursty at every timescale (Leland et al.), which
Poisson smoothing hides — an overload controller tested only against
Poisson arrivals never sees the queue excursions that break its SLO.
"""

from __future__ import annotations

import random
from typing import Iterator, List


def constant_interarrivals_ns(rate_pps: float) -> Iterator[float]:
    """Deterministic interarrival gaps at ``rate_pps`` packets/s."""
    if rate_pps <= 0:
        raise ValueError("rate must be positive")
    gap = 1e9 / rate_pps
    while True:
        yield gap


def poisson_interarrivals_ns(rate_pps: float, seed: int = 1) -> Iterator[float]:
    """Exponential interarrival gaps with mean ``1/rate`` (Poisson process)."""
    if rate_pps <= 0:
        raise ValueError("rate must be positive")
    rng = random.Random(seed)
    mean_ns = 1e9 / rate_pps
    while True:
        yield rng.expovariate(1.0) * mean_ns


def pareto_on_off_interarrivals_ns(
    rate_pps: float,
    seed: int = 1,
    alpha: float = 1.5,
    burst_scale: float = 16.0,
) -> Iterator[float]:
    """Self-similar arrivals: Pareto-distributed ON bursts and OFF gaps.

    The classic construction (Willinger et al.): an ON period emits a
    heavy-tailed run of back-to-back packets, then a heavy-tailed OFF
    gap follows.  ``alpha`` in (1, 2) gives infinite-variance periods —
    the regime where superposed sources produce long-range-dependent
    aggregate traffic.  The long-run mean rate still equals
    ``rate_pps``: ON packets are spaced one tenth of the mean gap apart
    and the OFF gap absorbs the balance of the burst's time budget.
    """
    if rate_pps <= 0:
        raise ValueError("rate must be positive")
    if not 1.0 < alpha < 2.0:
        raise ValueError("alpha must be in (1, 2) for self-similarity")
    if burst_scale < 1.0:
        raise ValueError("burst_scale must be >= 1")
    rng = random.Random(seed)
    mean_ns = 1e9 / rate_pps
    on_gap = mean_ns / 10.0
    # Pareto(alpha) has mean alpha/(alpha-1); normalise so the mean
    # burst length is ``burst_scale`` packets.
    mean_pareto = alpha / (alpha - 1.0)
    while True:
        burst = max(1, round(rng.paretovariate(alpha)
                             * burst_scale / mean_pareto))
        for _ in range(burst - 1):
            yield on_gap
        # The OFF gap returns the long-run average to ``rate_pps``:
        # the burst consumed (burst-1) * on_gap of its
        # burst * mean_ns time budget.
        off_scale = max(0.0, burst * mean_ns - (burst - 1) * on_gap)
        yield off_scale * (rng.paretovariate(alpha) / mean_pareto)


def burst_sizes(
    count: int,
    total_packets: int,
    seed: int = 1,
    alpha: float = 1.5,
) -> List[int]:
    """Split ``total_packets`` into ``count`` heavy-tailed burst sizes.

    Exact conservation: the sizes are non-negative and sum to
    ``total_packets`` (largest-remainder apportionment of Pareto
    weights), so injection loops can use them directly without losing
    or inventing packets.
    """
    if count < 1 or total_packets < 0:
        raise ValueError("count must be >= 1 and total_packets >= 0")
    rng = random.Random(seed)
    weights = [rng.paretovariate(alpha) for _ in range(count)]
    scale = total_packets / sum(weights)
    sizes = [int(w * scale) for w in weights]
    shortfall = total_packets - sum(sizes)
    # Hand the remainder out by descending fractional part (ties broken
    # by index, keeping the split deterministic).
    order = sorted(
        range(count),
        key=lambda i: (weights[i] * scale) - sizes[i],
        reverse=True,
    )
    for i in order[:shortfall]:
        sizes[i] += 1
    return sizes
