"""Arrival processes for the latency experiment (Figure 12).

The throughput experiments offer backlogged traffic (constant
interarrivals at line rate); the latency sweep offers a range of loads.
Poisson arrivals model the generator's randomised send process and excite
the queueing behaviour the figure shows.
"""

from __future__ import annotations

import random
from typing import Iterator


def constant_interarrivals_ns(rate_pps: float) -> Iterator[float]:
    """Deterministic interarrival gaps at ``rate_pps`` packets/s."""
    if rate_pps <= 0:
        raise ValueError("rate must be positive")
    gap = 1e9 / rate_pps
    while True:
        yield gap


def poisson_interarrivals_ns(rate_pps: float, seed: int = 1) -> Iterator[float]:
    """Exponential interarrival gaps with mean ``1/rate`` (Poisson process)."""
    if rate_pps <= 0:
        raise ValueError("rate must be positive")
    rng = random.Random(seed)
    mean_ns = 1e9 / rate_pps
    while True:
        yield rng.expovariate(1.0) * mean_ns
