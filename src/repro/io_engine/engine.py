"""User-level packet I/O: virtual per-queue interfaces and capacities.

Two layers live here:

* the **functional API** (:class:`PacketIOEngine`, :class:`VirtualInterface`)
  — the Section 5.2 user-level interface.  A virtual interface is a
  ``(NIC id, RX queue id)`` pair dedicated to one user thread, so queues
  are never shared across cores (Figure 8b); a thread fetches from its
  interfaces round-robin "for fairness".  Chunks of real frames flow
  through real huge-buffer cells.
* the **capacity model** (:func:`io_throughput_report`) — computes the
  Figure 5/6 numbers by combining the per-core cycle model of
  :mod:`repro.io_engine.batching` with the IOH ceilings of
  :mod:`repro.hw.numa` and identifying the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.calib.constants import CPU, FRAMEWORK
from repro.hw.numa import SystemTopology
from repro.io_engine.batching import (
    forwarding_cycles_per_packet,
    rx_cycles_per_packet,
    tx_cycles_per_packet,
)
from repro.io_engine.driver import OptimizedDriver
from repro.io_engine.livelock import LivelockAvoider, PollState
from repro.obs import (
    BATCH_SIZE_BUCKETS,
    Events,
    Stages,
    get_flightrec,
    get_profiler,
    get_registry,
    get_tracer,
    names,
)
from repro.sim.metrics import ThroughputReport, gbps_to_pps
from repro.sim.pipeline import PipelineModel, Stage


@dataclass
class VirtualInterface:
    """A (NIC id, RX queue id) pair owned by exactly one user thread."""

    nic_id: int
    queue_id: int
    owner_thread: int
    livelock: LivelockAvoider = field(default_factory=LivelockAvoider)


class PacketIOEngine:
    """The user-mode packet API over one or more optimized drivers.

    ``attach`` dedicates a queue to a thread; ``recv_chunk`` fetches a
    batched chunk from the thread's interfaces in round-robin order;
    ``send_chunk`` posts frames to a port's TX queue.  Double-attaching a
    queue is rejected — the no-sharing guarantee is the whole point of
    the multiqueue-aware interface (Figure 8).
    """

    def __init__(
        self,
        drivers: Dict[int, OptimizedDriver],
        fault_injector=None,
        overload=None,
    ) -> None:
        if not drivers:
            raise ValueError("engine needs at least one driver")
        self.drivers = drivers
        #: Optional :class:`repro.faults.plan.FaultInjector` modelling
        #: corruption on the host read side of the RX DMA (frames that
        #: were fine on the wire but arrive damaged in the huge buffer).
        self.fault_injector = fault_injector
        #: Optional :class:`repro.core.overload.OverloadController`: every
        #: RX fetch runs through its priority shedding ladder, and under
        #: pressure the livelock scheme stays in polling mode.
        self.overload = overload
        self._interfaces: Dict[Tuple[int, int], VirtualInterface] = {}
        self._by_thread: Dict[int, List[VirtualInterface]] = {}
        self._rr_cursor: Dict[int, int] = {}
        self._recorder = get_flightrec()
        #: Seq of the most recent RX event this engine noted — the
        #: trace-context anchor the testbed stamps onto the chunk built
        #: from that fetch (``Chunk.trace_ctx``).
        self.last_rx_seq = 0
        self._profiler = get_profiler()
        registry = get_registry()
        self._m_rx_packets = registry.counter(
            names.IO_ENGINE_RX_PACKETS, help="packets fetched through recv_chunk"
        )
        self._m_rx_chunks = registry.counter(
            names.IO_ENGINE_RX_CHUNKS, help="non-empty recv_chunk fetches"
        )
        self._h_chunk_size = registry.histogram(
            names.IO_ENGINE_CHUNK_SIZE, buckets=BATCH_SIZE_BUCKETS,
            help="packets per recv_chunk fetch",
        )

    def attach(self, nic_id: int, queue_id: int, thread: int) -> VirtualInterface:
        """Dedicate (nic, queue) to ``thread``; returns the interface."""
        key = (nic_id, queue_id)
        if key in self._interfaces:
            raise ValueError(f"queue {key} is already attached")
        if nic_id not in self.drivers:
            raise KeyError(f"unknown NIC {nic_id}")
        if not 0 <= queue_id < len(self.drivers[nic_id].buffers):
            raise ValueError(f"NIC {nic_id} has no queue {queue_id}")
        interface = VirtualInterface(nic_id, queue_id, thread)
        self._interfaces[key] = interface
        self._by_thread.setdefault(thread, []).append(interface)
        self._rr_cursor.setdefault(thread, 0)
        return interface

    def interfaces_of(self, thread: int) -> List[VirtualInterface]:
        return list(self._by_thread.get(thread, []))

    def recv_chunk(self, thread: int, max_packets: int = 0) -> List[bytes]:
        """Fetch one chunk for ``thread``, round-robin over its queues.

        The chunk size is capped, never waited for (Section 5.3).  Walks
        the thread's interfaces starting after the last one served and
        returns the first non-empty fetch; an empty list means all queues
        are drained (the caller would block per the livelock scheme).
        """
        interfaces = self._by_thread.get(thread)
        if not interfaces:
            raise KeyError(f"thread {thread} has no attached queues")
        cap = max_packets or FRAMEWORK.chunk_capacity
        start = self._rr_cursor[thread]
        with self._profiler.track(Stages.RX):
            return self._recv_chunk(thread, interfaces, cap, start)

    def _recv_chunk(
        self,
        thread: int,
        interfaces: List[VirtualInterface],
        cap: int,
        start: int,
    ) -> List[bytes]:
        for step in range(len(interfaces)):
            interface = interfaces[(start + step) % len(interfaces)]
            driver = self.drivers[interface.nic_id]
            if interface.livelock.state is PollState.BLOCKED:
                if not driver.buffers[interface.queue_id]:
                    continue
                # Pending packets: the interrupt path wakes the thread.
                if interface.livelock.on_interrupt():
                    interface.livelock.resume()
            elif interface.livelock.state is PollState.WAKING:
                interface.livelock.resume()
            frames = driver.fetch_batch(interface.queue_id, cap)
            buffer = driver.buffers[interface.queue_id]
            remaining = len(buffer)
            keep_polling = (
                self.overload is not None
                and self.overload.rx_keep_polling()
            )
            interface.livelock.on_fetch(
                len(frames), remaining, keep_polling=keep_polling
            )
            if frames and self.fault_injector is not None:
                # Chaos-only path: per-frame corruption hooks fire off
                # the hot path (the injector is None in production runs).
                frames = [  # reprolint: ignore[RL006]
                    bytes(self.fault_injector.corrupt_frame(f)[0])
                    for f in frames
                ]
            if frames and self.overload is not None:
                # The shedding ladder runs before the RX event is noted,
                # so RX event sums stay equal to what the router
                # receives.  Pressure is the ring occupancy at poll
                # time: what was fetched plus what is still waiting.
                frames = self.overload.admit(
                    frames,
                    backlog=remaining + len(frames),
                    ring_size=buffer.ring_size,
                )
            if frames:
                self._rr_cursor[thread] = (start + step + 1) % len(interfaces)
                self._m_rx_packets.inc(len(frames))
                self._m_rx_chunks.inc()
                self._h_chunk_size.observe(len(frames))
                self.last_rx_seq = self._recorder.note(
                    Events.RX,
                    f"{interface.nic_id}:{interface.queue_id}",
                    len(frames),
                )
                get_tracer().record(
                    Stages.RX,
                    packets=len(frames),
                    cycles=rx_cycles_per_packet(len(frames)) * len(frames),
                )
                return frames
        return []

    @staticmethod
    def send_chunk(port, frames: List[bytes], queue_id: int = 0) -> int:
        """Post a chunk to a port's TX queue; returns packets accepted."""
        with get_profiler().track(Stages.TX):
            accepted = port.tx_queues[queue_id].post_batch(frames)
        if accepted:
            get_registry().counter(
                names.IO_ENGINE_TX_PACKETS, help="packets posted through send_chunk"
            ).inc(accepted)
            get_tracer().record(
                Stages.TX,
                packets=accepted,
                cycles=tx_cycles_per_packet(max(1, accepted)) * accepted,
            )
        return accepted


def io_throughput_report(
    frame_len: int,
    topology: Optional[SystemTopology] = None,
    mode: str = "forward",
    batch_size: int = 64,
    cores: int = 0,
    node_crossing: bool = False,
    numa_aware: bool = True,
) -> ThroughputReport:
    """Throughput of the bare I/O engine — the Figure 6 generator.

    ``mode`` is ``rx`` (receive and drop), ``tx`` (transmit prebuilt
    frames), or ``forward`` (RX + TX without IP lookup).  The CPU
    capacity (cores x clock / cycles-per-packet) and the relevant I/O
    ceiling become a two-stage pipeline whose bottleneck the
    observability analyzer identifies.
    """
    topology = topology or SystemTopology()
    cores = cores or topology.total_cores
    if mode == "rx":
        cycles = rx_cycles_per_packet(batch_size)
        io_gbps = topology.rx_capacity_gbps(frame_len)
    elif mode == "tx":
        cycles = tx_cycles_per_packet(batch_size)
        io_gbps = topology.tx_capacity_gbps(frame_len)
    elif mode == "forward":
        cycles = forwarding_cycles_per_packet(
            batch_size, aligned_queues=True, num_cores=cores
        )
        io_gbps = topology.forwarding_capacity_gbps(
            frame_len, numa_aware=numa_aware, node_crossing=node_crossing
        )
    else:
        raise ValueError(f"unknown mode {mode!r}")
    pipeline = PipelineModel(
        [
            Stage(name="cpu", capacity_pps=CPU.clock_hz / cycles,
                  parallelism=cores),
            Stage(name="io", capacity_pps=gbps_to_pps(io_gbps, frame_len)),
        ],
        frame_len,
    )
    return pipeline.report()
