"""Receive-livelock avoidance: explicit interrupt/poll switching.

Paper Section 5.2: user-context packet processing cannot rely on NAPI
(which protects only kernel context), so PacketShader "actively takes
control over switching between interrupt and polling": while packets are
pending it polls with interrupts disabled; when it drains the RX queue it
blocks and re-enables the queue's RX interrupt; the interrupt wakes it and
is immediately disabled again.

This module is that state machine, factored out so the engine and the
event-driven simulator share one implementation and the tests can verify
the two livelock-freedom properties: interrupts are never enabled while
packets are pending, and the thread never busy-waits on an empty queue.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.obs.flightrec import Events, FlightRecorder, get_flightrec


class PollState(enum.Enum):
    """The three states of a queue's RX processing loop."""

    #: Interrupts disabled, actively fetching packets.
    POLLING = "polling"
    #: Queue drained; interrupt enabled, thread blocked.
    BLOCKED = "blocked"
    #: Interrupt fired; about to disable it and resume polling.
    WAKING = "waking"


@dataclass
class LivelockAvoider:
    """Interrupt/poll controller for one RX queue."""

    state: PollState = PollState.BLOCKED
    interrupt_enabled: bool = True
    wakeups: int = 0
    drains: int = 0
    polls: int = 0
    #: Drains deferred because overload pressure kept the loop polling.
    pressure_holds: int = 0
    #: Interrupt/poll transitions are exactly what a livelock post-mortem
    #: needs on its timeline, so the controller notes them directly.
    recorder: FlightRecorder = field(
        default_factory=get_flightrec, repr=False, compare=False
    )

    def on_interrupt(self) -> bool:
        """Hardware RX interrupt.  Returns True if it wakes the thread.

        An interrupt while polling would be a spurious wakeup source; the
        scheme prevents it by keeping the interrupt line disabled during
        polling, so receiving one in that state is a protocol error.
        """
        if not self.interrupt_enabled:
            return False
        if self.state is not PollState.BLOCKED:
            raise RuntimeError(
                f"interrupt delivered in state {self.state}; it must be "
                "disabled outside BLOCKED"
            )
        self.interrupt_enabled = False
        self.state = PollState.WAKING
        self.wakeups += 1
        self.recorder.note(Events.LIVELOCK, "wakeup")
        return True

    def resume(self) -> None:
        """The woken thread starts its polling loop."""
        if self.state is not PollState.WAKING:
            raise RuntimeError(f"resume from state {self.state}")
        self.state = PollState.POLLING

    def on_fetch(
        self,
        packets_fetched: int,
        queue_remaining: int,
        *,
        keep_polling: bool = False,
    ) -> None:
        """Account one fetch; switch to BLOCKED when the queue drains.

        ``queue_remaining`` is the RX queue depth after the fetch.  The
        paper's rule: "when it drains all the packets in the RX queue,
        the thread blocks and enables the RX interrupt".  With
        ``keep_polling`` (the overload controller under pressure) a
        drained queue stays in POLLING with the interrupt masked: during
        a flood the next burst is imminent, and taking an interrupt per
        micro-drain is exactly the receive livelock the scheme exists to
        avoid.  The invariant is untouched — the interrupt stays
        disabled while POLLING.
        """
        if self.state is not PollState.POLLING:
            raise RuntimeError(f"fetch in state {self.state}")
        if packets_fetched < 0 or queue_remaining < 0:
            raise ValueError("counts must be non-negative")
        self.polls += 1
        if queue_remaining == 0:
            if keep_polling:
                self.pressure_holds += 1
                self.recorder.note(Events.LIVELOCK, "hold")
                return
            self.state = PollState.BLOCKED
            self.interrupt_enabled = True
            self.drains += 1
            self.recorder.note(Events.LIVELOCK, "drain")

    @property
    def is_polling(self) -> bool:
        return self.state is PollState.POLLING

    def invariant_ok(self, queue_depth: int) -> bool:
        """The livelock-freedom invariant for tests.

        Interrupts enabled implies the thread is blocked (so user work is
        never preempted by RX interrupts while it is making progress —
        the user-context starvation the scheme eliminates).
        """
        if self.interrupt_enabled and self.state is PollState.POLLING:
            return False
        return True
