"""The NIC device drivers: unmodified baseline and the optimized engine.

Two functional drivers over the same :class:`repro.hw.nic.NICPort`:

* :class:`UnmodifiedDriver` — the stock ixgbe-like RX path: per-packet
  skb allocation, initialization, and free, with DMA cache invalidation.
  Exists to *measure* the Table 3 breakdown and to be the "before" of the
  huge-buffer comparison.
* :class:`OptimizedDriver` — Section 4's engine: huge packet buffer per
  queue, batched fetch with software prefetch through the cache model,
  cache-line-aligned per-queue state, and per-queue statistics.

Both drivers really move frame bytes; the cache model really tracks lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.calib.constants import NIC, NICModel
from repro.faults.plan import FaultInjector, Sites
from repro.hw.cache import CacheModel
from repro.hw.nic import QueueStats
from repro.io_engine.hugebuf import HugePacketBuffer
from repro.io_engine.skb import SkbAllocator
from repro.obs import BATCH_SIZE_BUCKETS, get_registry, names


class UnmodifiedDriver:
    """Stock Linux RX path: allocate, initialize, deliver, free.

    ``receive_and_drop`` is the exact Table 3 experiment: "have the
    unmodified ixgbe NIC driver receive 64B packets and silently drop
    them", accumulating cycles per functional bin in the allocator's
    breakdown.
    """

    def __init__(self, cache: Optional[CacheModel] = None) -> None:
        self.allocator = SkbAllocator()
        self.cache = cache if cache is not None else CacheModel(num_cores=1)
        self.received = 0

    def receive_and_drop(self, frame: bytes, core: int = 0) -> None:
        """Process one received frame the stock way, then drop it."""
        skb = self.allocator.allocate()
        # DMA wrote the frame: the covered lines are invalid in all caches.
        dma_base = self.received * NIC.buffer_cell_size
        self.cache.dma_invalidate(dma_base, len(frame))
        self.allocator.initialize(skb, frame)
        # First touch of the DMA'd data: compulsory misses (Table 3 13.8%).
        hits = self.cache.access_range(core, dma_base, len(frame))
        if hits < (len(frame) + 63) // 64:
            self.allocator.charge_cache_miss()
        self.allocator.charge_driver()
        self.allocator.charge_others()
        self.allocator.free(skb)
        self.received += 1

    @property
    def breakdown(self):
        """The accumulated Table 3 cycle breakdown."""
        return self.allocator.breakdown


@dataclass
class AlignedQueueState:
    """Per-queue private driver state, cache-line aligned.

    Section 4.4's first fix: "aligning every starting address of
    per-queue data to the cache line boundary" removes false sharing.
    ``base_addr`` is the modelled address of this queue's state; aligned
    construction places consecutive queues 64 B apart minimum.
    """

    queue_id: int
    base_addr: int
    stats: QueueStats = field(default_factory=QueueStats)
    #: ixgbe-style next-to-clean cursor.
    cursor: int = 0


class OptimizedDriver:
    """The Section 4 engine for one NIC port's RX queues."""

    def __init__(
        self,
        num_queues: int = 4,
        ring_size: int = 0,
        model: NICModel = NIC,
        cache: Optional[CacheModel] = None,
        aligned: bool = True,
        prefetch: bool = True,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        if num_queues <= 0:
            raise ValueError("num_queues must be positive")
        self.model = model
        self.prefetch_enabled = prefetch
        self.fault_injector = fault_injector
        self.cache = cache if cache is not None else CacheModel(num_cores=num_queues)
        self.buffers = [HugePacketBuffer(ring_size, model) for _ in range(num_queues)]
        # Aligned layout: queue states at cache-line multiples; unaligned
        # (the Section 4.4 bug): packed at the true struct size so two
        # queues share lines.
        stride = 64 if aligned else 24
        self.queues = [
            AlignedQueueState(queue_id=q, base_addr=0x10000 + q * stride)
            for q in range(num_queues)
        ]
        self._data_base = [0x1000000 * (q + 1) for q in range(num_queues)]
        # Per-queue RX observability (handles resolved once; increments
        # are one float add each, cheap enough for the per-packet path).
        registry = get_registry()
        self._m_rx = [
            registry.counter(
                names.IO_DRIVER_RX_PACKETS, help="frames DMA'd into RX rings",
                queue=str(q),
            )
            for q in range(num_queues)
        ]
        self._m_drops = [
            registry.counter(
                names.IO_DRIVER_RX_DROPS, help="RX ring tail drops", queue=str(q)
            )
            for q in range(num_queues)
        ]
        self._m_fetched = [
            registry.counter(
                names.IO_DRIVER_FETCHED_PACKETS,
                help="frames fetched by batched RX", queue=str(q),
            )
            for q in range(num_queues)
        ]
        self._h_batch = registry.histogram(
            names.IO_DRIVER_FETCH_BATCH_SIZE, buckets=BATCH_SIZE_BUCKETS,
            help="packets per non-empty fetch_batch",
        )

    def deliver(self, queue_id: int, frame: bytes) -> bool:
        """NIC-side: DMA a frame into the queue's huge buffer.

        With a fault injector attached the frame may be corrupted on the
        wire, or the ring may be forced full (tail drop) even when the
        buffer has room — the host-falling-behind case of Section 5.2.
        """
        if self.fault_injector is not None:
            corrupted, _ = self.fault_injector.corrupt_frame(frame)
            frame = bytes(corrupted)
            if self.fault_injector.should_fire(Sites.RX_RING_OVERFLOW):
                self._m_drops[queue_id].inc()
                return False
        buffer = self.buffers[queue_id]
        accepted = buffer.write(frame)
        if accepted:
            # DMA invalidates the destination lines in every core's cache.
            offset = buffer.cell_offset(buffer.writes - 1)
            self.cache.dma_invalidate(self._data_base[queue_id] + offset, len(frame))
            self._m_rx[queue_id].inc()
        else:
            self._m_drops[queue_id].inc()
        return accepted

    def fetch_batch(
        self, queue_id: int, max_packets: int, core: Optional[int] = None
    ) -> List[bytes]:
        """Host-side batched RX with software prefetch (Section 4.3).

        While processing packet *i*, the driver prefetches packet *i+1*'s
        descriptor and data, so the demand accesses hit.  Updates the
        queue's private statistics (per-queue counters, Section 4.4).
        """
        core = queue_id if core is None else core
        buffer = self.buffers[queue_id]
        state = self.queues[queue_id]
        fetched = buffer.fetch(max_packets)
        frames: List[bytes] = []
        for index, (offset, cell) in enumerate(fetched):
            if self.prefetch_enabled and index + 1 < len(fetched):
                next_offset, next_cell = fetched[index + 1]
                self.cache.prefetch(
                    core, self._data_base[queue_id] + next_offset, next_cell.length
                )
            self.cache.access_range(
                core, self._data_base[queue_id] + offset, cell.length
            )
            frames.append(buffer.read_frame(offset, cell))
            state.stats.add(cell.length)
            state.cursor += 1
            # Touch the queue's private state (the false-sharing site when
            # unaligned: a write here invalidates the neighbour queue's
            # line in its core's cache).
            self.cache.access(core, state.base_addr, write=True)
        if frames:
            self._m_fetched[queue_id].inc(len(frames))
            self._h_batch.observe(len(frames))
        return frames

    def aggregate_stats(self) -> QueueStats:
        """On-demand accumulation of per-queue counters (Section 4.4)."""
        total = QueueStats()
        for state in self.queues:
            total += state.stats
        return total

    def total_drops(self) -> int:
        return sum(buffer.drops for buffer in self.buffers)
