"""Receive-Side Scaling: the Toeplitz hash and queue indirection.

RSS (paper Section 4.4) spreads received packets across RX queues "by
hashing the five-tuples ... of a packet header", so that each CPU core
owns its queues exclusively.  The hash is the Toeplitz construction the
82599 (and the Microsoft RSS spec the paper cites) uses, implemented
bit-exactly: test vectors from the Microsoft "Verifying the RSS Hash
Calculation" documentation pass against this implementation.

Flow affinity — all packets of one flow land in one queue, preserving
intra-flow order (Section 5.3) — follows from the hash being a pure
function of the tuple.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.packet import FiveTuple, PacketParseError, parse_packet

#: The de-facto standard 40-byte RSS secret key from the Microsoft RSS
#: specification; drivers (including ixgbe) ship it as the default.
MICROSOFT_RSS_KEY = bytes(
    [
        0x6D, 0x5A, 0x56, 0xDA, 0x25, 0x5B, 0x0E, 0xC2,
        0x41, 0x67, 0x25, 0x3D, 0x43, 0xA3, 0x8F, 0xB0,
        0xD0, 0xCA, 0x2B, 0xCB, 0xAE, 0x7B, 0x30, 0xB4,
        0x77, 0xCB, 0x2D, 0xA3, 0x80, 0x30, 0xF2, 0x0C,
        0x6A, 0x42, 0xB7, 0x3B, 0xBE, 0xAC, 0x01, 0xFA,
    ]
)


class RSSHasher:
    """Toeplitz hasher plus an indirection table of queue indices.

    ``queue_map`` plays the role of the NIC's RETA (redirection table):
    hash bits index into it to select the destination RX queue.  The
    Section 4.5 NUMA fix — "configure RSS to distribute packets only to
    those CPU cores in the same node as the NICs" — is expressed by
    building the map from the local node's queues only.
    """

    def __init__(
        self,
        queue_map: Sequence[int],
        key: bytes = MICROSOFT_RSS_KEY,
    ) -> None:
        if not queue_map:
            raise ValueError("queue_map must not be empty")
        if len(key) < 16:
            raise ValueError("RSS key too short")
        self.queue_map: List[int] = list(queue_map)
        self.key = key

    def toeplitz(self, data: bytes) -> int:
        """The Toeplitz hash of ``data`` under the configured key.

        For each set bit of the input (MSB first), XOR in the 32-bit
        window of the key starting at that bit position.
        """
        if len(data) + 4 > len(self.key):
            raise ValueError(
                f"input of {len(data)}B needs a key of {len(data) + 4}B"
            )
        result = 0
        window = int.from_bytes(self.key[:4], "big")
        key_bits = int.from_bytes(self.key, "big")
        total_bits = len(self.key) * 8
        for i, byte in enumerate(data):
            for bit in range(8):
                if byte & (0x80 >> bit):
                    result ^= window
                # Slide the 32-bit window one bit right along the key.
                position = i * 8 + bit + 1
                window = (key_bits >> (total_bits - 32 - position)) & 0xFFFFFFFF
        return result

    @staticmethod
    def tuple_bytes(flow: FiveTuple) -> bytes:
        """Serialise a 5-tuple into the RSS input layout.

        IPv4: src(4) dst(4) sport(2) dport(2); IPv6: src(16) dst(16)
        sport(2) dport(2) — the orders the Microsoft spec defines.
        """
        addr_len = 16 if flow.is_ipv6 else 4
        return (
            flow.src_ip.to_bytes(addr_len, "big")
            + flow.dst_ip.to_bytes(addr_len, "big")
            + flow.src_port.to_bytes(2, "big")
            + flow.dst_port.to_bytes(2, "big")
        )

    def hash_flow(self, flow: FiveTuple) -> int:
        """32-bit RSS hash of a flow."""
        return self.toeplitz(self.tuple_bytes(flow))

    def queue_for(self, flow: FiveTuple) -> int:
        """Destination RX queue for a flow (hash LSBs through the RETA)."""
        return self.queue_map[self.hash_flow(flow) % len(self.queue_map)]


class ShardMap:
    """RSS flow steering lifted to worker *processes* (docs/SHARDING.md).

    The sharded data plane assigns each flow to exactly one worker
    process the same way the NIC assigns flows to RX queues: Toeplitz
    hash of the 5-tuple, modulo the shard count.  Flow affinity is the
    correctness keystone — every packet of a flow is pre-shaded,
    shaded, and post-shaded by one worker, so per-flow state (flow
    tables, reordering) never crosses a process boundary.

    Frames that carry no 5-tuple (ARP, malformed L3, unknown
    EtherTypes) cannot hash; they fall back to a deterministic
    round-robin over shards via an internal counter, so chaos traffic
    spreads evenly *and* a sequential re-partition of the same frame
    stream lands every frame on the same shard — the property the
    differential suite leans on.
    """

    def __init__(self, num_shards: int, key: bytes = MICROSOFT_RSS_KEY) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self._hasher = RSSHasher(queue_map=range(num_shards), key=key)
        #: Hash memo: 5-tuples repeat heavily (flows), the Toeplitz
        #: inner loop is bit-serial; caching makes steering O(1) per
        #: packet after a flow's first frame.
        self._cache: Dict[Tuple[int, int, int, int, int, bool], int] = {}
        #: Round-robin state for unhashable frames (see class docstring).
        self.fallbacks = 0

    def shard_of_flow(self, flow: FiveTuple) -> int:
        """The owning shard of a flow (pure, memoised)."""
        memo_key = (
            flow.src_ip, flow.dst_ip, flow.src_port, flow.dst_port,
            flow.protocol, flow.is_ipv6,
        )
        shard = self._cache.get(memo_key)
        if shard is None:
            shard = self._hasher.hash_flow(flow) % self.num_shards
            self._cache[memo_key] = shard
        return shard

    def shard_of_frame(self, frame) -> int:
        """The owning shard of a raw frame (round-robin if unhashable)."""
        flow: Optional[FiveTuple]
        try:
            flow = parse_packet(bytes(frame)).five_tuple()
        except PacketParseError:
            flow = None
        if flow is None:
            shard = self.fallbacks % self.num_shards
            self.fallbacks += 1
            return shard
        return self.shard_of_flow(flow)

    def partition(self, frames: Sequence) -> List[List]:
        """Split a frame stream into per-shard sub-streams.

        Relative order within each shard matches arrival order — the
        intra-flow ordering RSS guarantees (Section 5.3).
        """
        shards: List[List] = [[] for _ in range(self.num_shards)]
        for frame in frames:  # reprolint: ignore[RL006]
            shards[self.shard_of_frame(frame)].append(frame)
        return shards
