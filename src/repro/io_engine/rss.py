"""Receive-Side Scaling: the Toeplitz hash and queue indirection.

RSS (paper Section 4.4) spreads received packets across RX queues "by
hashing the five-tuples ... of a packet header", so that each CPU core
owns its queues exclusively.  The hash is the Toeplitz construction the
82599 (and the Microsoft RSS spec the paper cites) uses, implemented
bit-exactly: test vectors from the Microsoft "Verifying the RSS Hash
Calculation" documentation pass against this implementation.

Flow affinity — all packets of one flow land in one queue, preserving
intra-flow order (Section 5.3) — follows from the hash being a pure
function of the tuple.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.net.packet import FiveTuple

#: The de-facto standard 40-byte RSS secret key from the Microsoft RSS
#: specification; drivers (including ixgbe) ship it as the default.
MICROSOFT_RSS_KEY = bytes(
    [
        0x6D, 0x5A, 0x56, 0xDA, 0x25, 0x5B, 0x0E, 0xC2,
        0x41, 0x67, 0x25, 0x3D, 0x43, 0xA3, 0x8F, 0xB0,
        0xD0, 0xCA, 0x2B, 0xCB, 0xAE, 0x7B, 0x30, 0xB4,
        0x77, 0xCB, 0x2D, 0xA3, 0x80, 0x30, 0xF2, 0x0C,
        0x6A, 0x42, 0xB7, 0x3B, 0xBE, 0xAC, 0x01, 0xFA,
    ]
)


class RSSHasher:
    """Toeplitz hasher plus an indirection table of queue indices.

    ``queue_map`` plays the role of the NIC's RETA (redirection table):
    hash bits index into it to select the destination RX queue.  The
    Section 4.5 NUMA fix — "configure RSS to distribute packets only to
    those CPU cores in the same node as the NICs" — is expressed by
    building the map from the local node's queues only.
    """

    def __init__(
        self,
        queue_map: Sequence[int],
        key: bytes = MICROSOFT_RSS_KEY,
    ) -> None:
        if not queue_map:
            raise ValueError("queue_map must not be empty")
        if len(key) < 16:
            raise ValueError("RSS key too short")
        self.queue_map: List[int] = list(queue_map)
        self.key = key

    def toeplitz(self, data: bytes) -> int:
        """The Toeplitz hash of ``data`` under the configured key.

        For each set bit of the input (MSB first), XOR in the 32-bit
        window of the key starting at that bit position.
        """
        if len(data) + 4 > len(self.key):
            raise ValueError(
                f"input of {len(data)}B needs a key of {len(data) + 4}B"
            )
        result = 0
        window = int.from_bytes(self.key[:4], "big")
        key_bits = int.from_bytes(self.key, "big")
        total_bits = len(self.key) * 8
        for i, byte in enumerate(data):
            for bit in range(8):
                if byte & (0x80 >> bit):
                    result ^= window
                # Slide the 32-bit window one bit right along the key.
                position = i * 8 + bit + 1
                window = (key_bits >> (total_bits - 32 - position)) & 0xFFFFFFFF
        return result

    @staticmethod
    def tuple_bytes(flow: FiveTuple) -> bytes:
        """Serialise a 5-tuple into the RSS input layout.

        IPv4: src(4) dst(4) sport(2) dport(2); IPv6: src(16) dst(16)
        sport(2) dport(2) — the orders the Microsoft spec defines.
        """
        addr_len = 16 if flow.is_ipv6 else 4
        return (
            flow.src_ip.to_bytes(addr_len, "big")
            + flow.dst_ip.to_bytes(addr_len, "big")
            + flow.src_port.to_bytes(2, "big")
            + flow.dst_port.to_bytes(2, "big")
        )

    def hash_flow(self, flow: FiveTuple) -> int:
        """32-bit RSS hash of a flow."""
        return self.toeplitz(self.tuple_bytes(flow))

    def queue_for(self, flow: FiveTuple) -> int:
        """Destination RX queue for a flow (hash LSBs through the RETA)."""
        return self.queue_map[self.hash_flow(flow) % len(self.queue_map)]
