"""The optimized packet I/O engine (paper Section 4).

PacketShader's first contribution is a packet I/O engine that removes the
per-packet costs of the stock Linux path.  This subpackage implements both
sides of that comparison:

* the **baseline**: Linux-style per-packet ``skb`` allocation through a
  slab-model allocator (:mod:`repro.io_engine.skb`), whose cycle
  accounting reproduces the Table 3 breakdown;
* the **engine**: huge packet buffers with compact 8-byte metadata cells
  (:mod:`repro.io_engine.hugebuf`), batched RX/TX with software prefetch
  (:mod:`repro.io_engine.batching`, :mod:`repro.io_engine.driver`),
  Toeplitz RSS with core-aware queues (:mod:`repro.io_engine.rss`),
  user-level per-queue virtual interfaces
  (:mod:`repro.io_engine.engine`), and the interrupt/poll livelock
  avoidance scheme (:mod:`repro.io_engine.livelock`).
"""

from repro.io_engine.skb import LinuxSkb, SkbAllocator, RxCycleBreakdown
from repro.io_engine.hugebuf import HugePacketBuffer, MetadataCell
from repro.io_engine.rss import RSSHasher, MICROSOFT_RSS_KEY
from repro.io_engine.batching import (
    forwarding_cycles_per_packet,
    rx_cycles_per_packet,
    tx_cycles_per_packet,
)
from repro.io_engine.driver import OptimizedDriver, UnmodifiedDriver
from repro.io_engine.engine import PacketIOEngine, VirtualInterface
from repro.io_engine.livelock import PollState, LivelockAvoider

__all__ = [
    "HugePacketBuffer",
    "LinuxSkb",
    "LivelockAvoider",
    "MICROSOFT_RSS_KEY",
    "MetadataCell",
    "OptimizedDriver",
    "PacketIOEngine",
    "PollState",
    "RSSHasher",
    "RxCycleBreakdown",
    "SkbAllocator",
    "UnmodifiedDriver",
    "VirtualInterface",
    "forwarding_cycles_per_packet",
    "rx_cycles_per_packet",
    "tx_cycles_per_packet",
]
