"""Batch-processing cost model (paper Section 4.3, Figure 5).

Batching amortises the per-batch costs — the system call, PCIe doorbell
register writes, interrupt handling, bookkeeping — over many packets, and
software prefetch of the *next* packet's descriptor and data eliminates
the compulsory miss of the current one.  The paper's Figure 5 anchors the
model: a single core with two 10 GbE ports forwards 0.78 Gbps of 64 B
frames packet-by-packet and 10.5 Gbps with 64-packet batches (x13.5).

The central formula is::

    cycles/packet = per_batch_cycles / batch_size + per_packet_cycles

with the two constants fitted through the Figure 5 endpoints (see
:class:`repro.calib.constants.IOEngineCosts`).  Options model the
ablations: disabling prefetch returns the compulsory miss to every packet;
disabling the Section 4.4 alignment/per-queue-counter fixes adds the
multi-core scaling penalty.
"""

from __future__ import annotations

from repro.calib.constants import CPU, IO_ENGINE, CPUModel, IOEngineCosts
from repro.obs import BATCH_SIZE_BUCKETS, get_registry, names


def _validate(batch_size: int) -> None:
    if batch_size < 1:
        raise ValueError(f"batch size must be >= 1, got {batch_size}")


def forwarding_cycles_per_packet(
    batch_size: int,
    costs: IOEngineCosts = IO_ENGINE,
    prefetch: bool = True,
    aligned_queues: bool = True,
    num_cores: int = 1,
) -> float:
    """Per-packet CPU cycles for minimal forwarding (RX + TX, no lookup).

    ``prefetch=False`` charges the per-packet compulsory cache miss the
    software prefetch otherwise hides (Section 4.3).  ``aligned_queues=
    False`` applies the up-to-20% multi-core penalty from false sharing
    and shared statistics counters (Section 4.4), growing with core count.
    """
    _validate(batch_size)
    cycles = costs.per_batch_cycles / batch_size + costs.per_packet_cycles
    if not prefetch:
        cycles += costs.no_prefetch_extra_cycles
    if not aligned_queues and num_cores > 1:
        # Linear ramp to the full 20% penalty at 8 cores, as measured.
        penalty = costs.unaligned_scaling_penalty * min(1.0, (num_cores - 1) / 7.0)
        cycles *= 1.0 + penalty
    return cycles


def rx_cycles_per_packet(
    batch_size: int,
    costs: IOEngineCosts = IO_ENGINE,
    prefetch: bool = True,
) -> float:
    """Per-packet cycles for RX-only (receive and drop)."""
    _validate(batch_size)
    # RX pays the batch overhead alone; TX-side bookkeeping is absent.
    cycles = costs.per_batch_cycles / (2 * batch_size) + costs.rx_only_per_packet_cycles
    if not prefetch:
        cycles += costs.no_prefetch_extra_cycles
    return cycles


def tx_cycles_per_packet(
    batch_size: int,
    costs: IOEngineCosts = IO_ENGINE,
) -> float:
    """Per-packet cycles for TX-only (transmit pre-built frames)."""
    _validate(batch_size)
    return costs.per_batch_cycles / (2 * batch_size) + costs.tx_only_per_packet_cycles


def forwarding_pps_single_core(
    batch_size: int,
    cpu: CPUModel = CPU,
    costs: IOEngineCosts = IO_ENGINE,
    **kwargs,
) -> float:
    """Packets/s one core forwards at a batch size — the Figure 5 y-axis
    (converted to Gbps by the caller at the experiment's frame size)."""
    cycles = forwarding_cycles_per_packet(batch_size, costs, **kwargs)
    return cpu.clock_hz / cycles


def effective_batch_size(
    offered_pps_per_core: float,
    cap: int,
    cpu: CPUModel = CPU,
    costs: IOEngineCosts = IO_ENGINE,
) -> float:
    """Average packets found per fetch when a core polls back-to-back.

    The engine never waits for a full batch (Section 5.3: "we do not
    intentionally wait").  A fetch that processes ``b`` packets takes
    ``(per_batch + b * per_packet)`` cycles, during which ``offered * t``
    new packets accumulate; the steady-state batch is the fixed point

        b = offered * (per_batch + b * per_packet) / clock

    capped by the configured maximum.  This reproduces the paper's
    observation that "the CPU usage is elastic with the number of packets
    for each fetch" — average batch 13.6 with 8 cores vs 63.0 with 4
    cores at the same offered load (Section 4.6): fewer cores each see
    more packets per fetch.
    """
    if offered_pps_per_core < 0:
        raise ValueError("offered load must be non-negative")
    if cap < 1:
        raise ValueError("batch cap must be >= 1")
    denominator = cpu.clock_hz - offered_pps_per_core * costs.per_packet_cycles
    if denominator <= 0:
        # The core cannot keep up even with infinite batching; it always
        # finds a full ring.
        batch = float(cap)
    else:
        batch = max(
            1.0,
            min(float(cap), offered_pps_per_core * costs.per_batch_cycles
                / denominator),
        )
    # The load-adaptive batch is exactly what Section 4.6 reports by
    # hand ("average 13.6 with 8 cores vs 63.0 with 4"); keep its
    # distribution observable.
    get_registry().histogram(
        names.IO_EFFECTIVE_BATCH_SIZE, buckets=BATCH_SIZE_BUCKETS,
        help="steady-state packets per fetch at the offered load",
    ).observe(batch)
    return batch
