"""Huge packet buffer (paper Section 4.2, Figure 4b).

Instead of allocating an skb and a data buffer per packet, the modified
driver allocates *two huge buffers per RX queue*: one of fixed 2048-byte
data cells (fits a 1518-byte frame and satisfies the NIC's 1024-byte
alignment requirement) and one of compact 8-byte metadata cells (down from
Linux's 208 bytes — the fast path needs only length and offset/status).
Cells are recycled in ring order as the circular RX queue wraps; nothing
is ever allocated per packet, and the whole region is DMA-mapped once.

The implementation is genuinely circular: writing packet ``i + ring_size``
reuses the cell of packet ``i``, and the class enforces the invariant that
a cell is not reused while the host still holds it (an un-fetched cell
being overwritten is an RX ring overflow, reported as a drop — exactly
the hardware behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.calib.constants import NIC, NICModel


@dataclass
class MetadataCell:
    """The 8-byte metadata cell: frame length + status bits.

    The real cell packs into 8 bytes; we keep named fields and provide
    :meth:`pack` to prove they fit.
    """

    length: int = 0
    status: int = 0

    #: Status flag bits the NIC sets (82599 RX descriptor write-back).
    STATUS_DONE = 0x1
    STATUS_BAD_CHECKSUM = 0x2

    def pack(self) -> bytes:
        """Serialise to exactly 8 bytes (2-byte length, 2-byte status,
        4 bytes reserved) — demonstrating the compact layout."""
        if not 0 <= self.length <= 0xFFFF:
            raise ValueError(f"length {self.length} does not fit the cell")
        if not 0 <= self.status <= 0xFFFF:
            raise ValueError(f"status {self.status} does not fit the cell")
        return (
            self.length.to_bytes(2, "little")
            + self.status.to_bytes(2, "little")
            + bytes(4)
        )

    @classmethod
    def unpack(cls, data: bytes) -> "MetadataCell":
        if len(data) != 8:
            raise ValueError("metadata cell must be exactly 8 bytes")
        return cls(
            length=int.from_bytes(data[0:2], "little"),
            status=int.from_bytes(data[2:4], "little"),
        )


class HugePacketBuffer:
    """One RX queue's pair of huge buffers with circular cell reuse."""

    def __init__(self, ring_size: int = 0, model: NICModel = NIC) -> None:
        self.model = model
        self.ring_size = ring_size or model.rx_ring_size
        if self.ring_size <= 0:
            raise ValueError("ring size must be positive")
        self.cell_size = model.buffer_cell_size
        # The single contiguous data region, DMA-mapped once.
        self.data = bytearray(self.ring_size * self.cell_size)
        self.metadata: List[MetadataCell] = [
            MetadataCell() for _ in range(self.ring_size)
        ]
        # NIC-side write cursor and host-side read cursor (ring indices
        # grow without bound; cell index is cursor % ring_size).
        self._write_cursor = 0
        self._read_cursor = 0
        self.drops = 0
        self.writes = 0

    def __len__(self) -> int:
        """Packets received but not yet fetched by the host."""
        return self._write_cursor - self._read_cursor

    @property
    def full(self) -> bool:
        return len(self) >= self.ring_size

    def cell_offset(self, cursor: int) -> int:
        """Byte offset of a cursor's cell in the data region."""
        return (cursor % self.ring_size) * self.cell_size

    def write(self, frame: bytes, status: int = MetadataCell.STATUS_DONE) -> bool:
        """NIC-side: DMA a received frame into the next cell.

        Returns False and counts a drop when the ring is full (the host
        has not consumed the oldest cell yet) — cells are never clobbered.
        """
        if len(frame) > self.cell_size:
            raise ValueError(
                f"frame of {len(frame)}B exceeds the {self.cell_size}B cell"
            )
        if self.full:
            self.drops += 1
            return False
        offset = self.cell_offset(self._write_cursor)
        self.data[offset:offset + len(frame)] = frame
        cell = self.metadata[self._write_cursor % self.ring_size]
        cell.length = len(frame)
        cell.status = status
        self._write_cursor += 1
        self.writes += 1
        return True

    def fetch(self, max_packets: int) -> List[Tuple[int, MetadataCell]]:
        """Host-side: consume up to ``max_packets`` cells in ring order.

        Returns ``(data_offset, metadata)`` pairs; the caller copies the
        bytes out (the Section 4.3 kernel-to-user copy) after which the
        cells are implicitly recycled — the cursor advance *is* the
        recycling, no deallocation happens.
        """
        if max_packets <= 0:
            raise ValueError("max_packets must be positive")
        count = min(max_packets, len(self))
        out = []
        for _ in range(count):
            offset = self.cell_offset(self._read_cursor)
            cell = self.metadata[self._read_cursor % self.ring_size]
            out.append((offset, cell))
            self._read_cursor += 1
        return out

    def read_frame(self, offset: int, cell: MetadataCell) -> bytes:
        """Copy one frame out of its cell (the user-buffer copy)."""
        return bytes(self.data[offset:offset + cell.length])

    def copy_batch_to_user(self, fetched) -> Tuple[bytearray, List[Tuple[int, int]]]:
        """Copy a fetched batch into one consecutive user buffer.

        Mirrors the engine's user API: "we copy the data in the huge
        packet buffer into a consecutive user-level buffer along with an
        array of offset and length for each packet" (Section 4.3).
        Returns the user buffer and the (offset, length) array.
        """
        total = sum(cell.length for _, cell in fetched)
        user_buffer = bytearray(total)
        index = []
        cursor = 0
        for offset, cell in fetched:
            user_buffer[cursor:cursor + cell.length] = self.data[
                offset:offset + cell.length
            ]
            index.append((cursor, cell.length))
            cursor += cell.length
        return user_buffer, index
