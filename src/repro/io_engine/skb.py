"""Linux-style per-packet buffer allocation — the baseline (Section 4.1).

Linux allocates two buffers per packet: an ``skb`` carrying 208 bytes of
metadata "required by all protocols in various layers", and the packet data
buffer.  Both come from the slab allocator on every packet and go back on
every free.  The paper measures where the cycles go (Table 3): 63.1% in
skb-related operations, 13.8% in DMA-induced compulsory cache misses.

This module models that path functionally (objects really are allocated
and recycled through a slab-like free list) and temporally (every
operation charges cycles in the Table 3 proportions), so the Table 3
benchmark *measures* the breakdown from the model rather than restating
constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.calib.constants import LINUX_STACK, LinuxStackCosts

#: sk_buff metadata size in Linux 2.6.28 (Section 4.1).
SKB_METADATA_BYTES = 208
#: Fields a real skb initialization must zero/set; initialising them is the
#: "skb initialization" bin of Table 3.
SKB_FIELDS = (
    "next", "prev", "sk", "tstamp", "dev",
    "transport_header", "network_header", "mac_header",
    "dst", "sp", "cb", "len", "data_len", "mac_len", "hdr_len",
    "csum", "priority", "protocol", "truesize",
    "head", "data", "tail", "end",
)


@dataclass
class LinuxSkb:
    """A modelled sk_buff: full-size metadata plus a data buffer."""

    fields: Dict[str, int] = field(default_factory=dict)
    data: Optional[bytearray] = None

    def initialize(self, frame: bytes) -> None:
        """Zero-and-set every metadata field, attach the packet data."""
        for name in SKB_FIELDS:
            self.fields[name] = 0
        self.fields["len"] = len(frame)
        self.fields["truesize"] = SKB_METADATA_BYTES + len(frame)
        self.data = bytearray(frame)


@dataclass
class RxCycleBreakdown:
    """Accumulated cycles per Table 3 functional bin."""

    skb_initialization: float = 0.0
    skb_allocation: float = 0.0
    memory_subsystem: float = 0.0
    nic_device_driver: float = 0.0
    others: float = 0.0
    compulsory_cache_misses: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.skb_initialization
            + self.skb_allocation
            + self.memory_subsystem
            + self.nic_device_driver
            + self.others
            + self.compulsory_cache_misses
        )

    def shares(self) -> Dict[str, float]:
        """Fractional shares per bin — the Table 3 rows."""
        total = self.total
        if total == 0:
            return {}
        return {
            "skb initialization": self.skb_initialization / total,
            "skb (de)allocation": self.skb_allocation / total,
            "memory subsystem": self.memory_subsystem / total,
            "NIC device driver": self.nic_device_driver / total,
            "others": self.others / total,
            "compulsory cache misses": self.compulsory_cache_misses / total,
        }


class SkbAllocator:
    """Slab-model skb allocator with Table 3 cycle accounting.

    A bounded per-CPU free list fronts the page allocator, as the slab
    allocator [Bonwick94] does.  Allocations hitting the free list are
    cheaper than those falling through to the page allocator, but both
    charge "memory subsystem" cycles — the dominant Table 3 bin, because
    the *rate* of alloc/free in multi-10G RX (tens of millions per second)
    is what stresses the subsystem.
    """

    def __init__(
        self,
        costs: LinuxStackCosts = LINUX_STACK,
        free_list_capacity: int = 256,
    ) -> None:
        self.costs = costs
        self.free_list_capacity = free_list_capacity
        self._free_list: List[LinuxSkb] = []
        self.breakdown = RxCycleBreakdown()
        self.allocs = 0
        self.frees = 0
        self.slab_hits = 0

    def allocate(self) -> LinuxSkb:
        """Allocate an skb + data buffer, charging allocation cycles."""
        self.allocs += 1
        per_packet = self.costs.total_cycles
        # Wrapper-function cost (alloc half of the "(de)allocation" bin).
        self.breakdown.skb_allocation += per_packet * self.costs.share_skb_alloc / 2
        # Base memory subsystem work (slab + page allocator), alloc half.
        self.breakdown.memory_subsystem += (
            per_packet * self.costs.share_memory_subsystem / 2
        )
        if self._free_list:
            self.slab_hits += 1
            return self._free_list.pop()
        return LinuxSkb()

    def initialize(self, skb: LinuxSkb, frame: bytes) -> None:
        """Run skb field initialization, charging its Table 3 bin."""
        skb.initialize(frame)
        self.breakdown.skb_initialization += (
            self.costs.total_cycles * self.costs.share_skb_init
        )

    def free(self, skb: LinuxSkb) -> None:
        """Return an skb, charging the deallocation halves of the bins."""
        self.frees += 1
        per_packet = self.costs.total_cycles
        self.breakdown.skb_allocation += per_packet * self.costs.share_skb_alloc / 2
        self.breakdown.memory_subsystem += (
            per_packet * self.costs.share_memory_subsystem / 2
        )
        skb.data = None
        skb.fields.clear()
        if len(self._free_list) < self.free_list_capacity:
            self._free_list.append(skb)

    def charge_driver(self) -> None:
        """Per-packet NIC driver work (descriptor handling, DMA mapping)."""
        self.breakdown.nic_device_driver += (
            self.costs.total_cycles * self.costs.share_nic_driver
        )

    def charge_others(self) -> None:
        """Per-packet miscellaneous kernel work."""
        self.breakdown.others += self.costs.total_cycles * self.costs.share_others

    def charge_cache_miss(self) -> None:
        """Compulsory cache miss after DMA invalidation (Section 4.1)."""
        self.breakdown.compulsory_cache_misses += (
            self.costs.total_cycles * self.costs.share_cache_miss
        )

    @property
    def outstanding(self) -> int:
        """Allocations not yet freed."""
        return self.allocs - self.frees
