"""The versioned schema for benchmark artifacts.

Every perf artifact the runner writes — per-figure ``BENCH_<figure>.json``
files, the ``BENCH_manifest.json`` scorecard, ``bench-baseline.json``,
and ``bench-history.jsonl`` lines — carries ``schema_version`` so the
trajectory stays parseable as the layout evolves.  This module owns the
payload construction and the validation both the writers and the tests
round-trip through.

Design constraints:

* committed artifacts are **deterministic** — no wall-clock timestamps
  or host-speed durations in per-figure payloads or the manifest, so a
  re-run on an unchanged tree produces a byte-identical git diff; run
  timing lives only in the append-only history file;
* series rows are plain dicts keyed by column name, with the sweep
  variable named by ``x_key`` — scoring and the gate address points as
  ``(x, column)`` without positional coupling;
* saturated/undefined values are ``None`` (JSON ``null``), never
  ``inf``/``nan`` (both are invalid strict JSON).
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional

#: Bump when the artifact layout changes shape incompatibly.
SCHEMA_VERSION = 1

#: Figure payload fields, in written order.  ``divergence`` is optional:
#: the pytest adapter scores figures that have a paper reference and
#: omits the block for extension benches scored by anchors only.
_REQUIRED_FIELDS = (
    "schema_version",
    "figure",
    "kind",
    "title",
    "x_key",
    "mode",
    "units",
    "series",
    "headline",
    "bottleneck",
)

_KINDS = ("figure", "table", "extension")
_MODES = ("quick", "full")


class SchemaError(ValueError):
    """A perf artifact violated the schema; ``.issues`` lists why."""

    def __init__(self, issues: List[str]) -> None:
        self.issues = list(issues)
        super().__init__("; ".join(self.issues))


def _json_safe(value, path: str, issues: List[str]) -> None:
    """Reject non-finite floats anywhere in a payload subtree."""
    if isinstance(value, float) and not math.isfinite(value):
        issues.append(f"{path}: non-finite value {value!r} (use null)")
    elif isinstance(value, dict):
        for key, item in value.items():
            _json_safe(item, f"{path}.{key}", issues)
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            _json_safe(item, f"{path}[{i}]", issues)


def figure_payload(
    figure: str,
    kind: str,
    title: str,
    x_key: str,
    mode: str,
    units: Dict[str, str],
    series: List[Dict[str, object]],
    headline: Dict[str, float],
    bottleneck: str,
    divergence: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble and validate one per-figure payload."""
    payload: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "figure": figure,
        "kind": kind,
        "title": title,
        "x_key": x_key,
        "mode": mode,
        "units": dict(units),
        "series": [dict(row) for row in series],
        "headline": dict(headline),
        "bottleneck": bottleneck,
    }
    if divergence is not None:
        payload["divergence"] = divergence
    validate_figure_payload(payload)
    return payload


def validate_figure_payload(payload: Dict[str, object]) -> None:
    """Raise :class:`SchemaError` unless the payload is well-formed."""
    issues: List[str] = []
    if not isinstance(payload, dict):
        raise SchemaError(["payload is not an object"])
    for field in _REQUIRED_FIELDS:
        if field not in payload:
            issues.append(f"missing field {field!r}")
    if issues:
        raise SchemaError(issues)

    if payload["schema_version"] != SCHEMA_VERSION:
        issues.append(
            f"schema_version {payload['schema_version']!r} != {SCHEMA_VERSION}"
        )
    if not payload["figure"] or not isinstance(payload["figure"], str):
        issues.append("figure must be a non-empty string")
    if payload["kind"] not in _KINDS:
        issues.append(f"kind {payload['kind']!r} not in {_KINDS}")
    if payload["mode"] not in _MODES:
        issues.append(f"mode {payload['mode']!r} not in {_MODES}")
    if not isinstance(payload["units"], dict):
        issues.append("units must be an object")
    if not isinstance(payload["bottleneck"], str) or not payload["bottleneck"]:
        issues.append("bottleneck verdict must be a non-empty string")

    series = payload["series"]
    x_key = payload["x_key"]
    if not isinstance(series, list) or not series:
        issues.append("series must be a non-empty array")
    else:
        for i, row in enumerate(series):
            if not isinstance(row, dict):
                issues.append(f"series[{i}] is not an object")
            elif x_key and x_key not in row:
                issues.append(f"series[{i}] missing x_key {x_key!r}")

    headline = payload["headline"]
    if not isinstance(headline, dict) or not headline:
        issues.append("headline must be a non-empty object")
    else:
        for name, value in headline.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                issues.append(f"headline.{name}: not a number ({value!r})")

    _json_safe(payload, payload.get("figure", "payload"), issues)
    if issues:
        raise SchemaError(issues)


def dump(payload: Dict[str, object]) -> str:
    """Canonical serialisation: sorted keys, two-space indent, newline."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def load(text: str) -> Dict[str, object]:
    """Parse and validate a per-figure payload (the round-trip check)."""
    payload = json.loads(text)
    validate_figure_payload(payload)
    return payload
