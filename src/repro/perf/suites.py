"""The registered benchmark suite: one producer per figure/table.

Importing this module populates the registry with every reproduction
benchmark — the paper's figures (fig2, fig5, fig6, fig11a–d, fig12),
its tables (table1–3), and the reproduction's extension benches
(degraded, numa, divergence, ablations, extensions).  Producers return
:class:`~repro.perf.registry.BenchResult`: series rows, the headline
scalars the regression gate tracks, and the bottleneck verdict —
capacity-view (:class:`repro.sim.metrics.ThroughputReport`'s analyzer
output) where the figure is a pipeline throughput, data-derived where
it is not.

``quick=True`` shrinks workload sizes and simulation horizons only; it
never changes a calibrated model, so headline numbers agree between
modes within the gate's tolerances.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.perf.registry import BenchResult, bench

#: Figure 2's batch sweep (the crossover anchors 320/640 included).
FIG2_BATCHES = (32, 64, 128, 256, 320, 512, 640, 1024, 2048, 4096, 8192, 16384)
#: Figure 5's batch sweep.
FIG5_BATCHES = (1, 2, 4, 8, 16, 32, 64, 128)
#: Figure 12's offered-load sweep (Gbps).
FIG12_LOADS = (0.5, 1, 2, 3, 4, 6, 7.5, 12, 16, 20, 24, 28)
#: Figure 11(c)'s (exact, wildcard) table-size sweep.
FIG11C_CONFIGS = (
    (1 << 10, 32), (1 << 12, 32), (1 << 14, 32), (32 << 10, 32),
    (1 << 16, 32), (32 << 10, 128), (32 << 10, 512),
)
#: Table 1's transfer sizes.
TABLE1_SIZES = (256, 1024, 4096, 16384, 65536, 262144, 1048576)


def _finite(value: float) -> Optional[float]:
    """inf/nan -> None, so payloads stay strict JSON."""
    return value if math.isfinite(value) else None


# -- Figure 2: IPv6 lookup throughput vs batch size --------------------


@bench("fig2", "IPv6 lookup throughput vs batch size (Mpps)",
       x_key="batch", units={"gpu_mpps": "Mpps", "cpu1_mpps": "Mpps",
                             "cpu2_mpps": "Mpps"})
def produce_fig2(quick: bool = False) -> BenchResult:
    from repro.apps.lookup_only import (
        cpu_ipv6_lookup_rate_pps,
        gpu_crossover_batch,
        gpu_ipv6_lookup_rate_pps,
    )

    cpu1 = cpu_ipv6_lookup_rate_pps(1) / 1e6
    cpu2 = cpu_ipv6_lookup_rate_pps(2) / 1e6
    series = [
        {
            "batch": batch,
            "gpu_mpps": gpu_ipv6_lookup_rate_pps(batch) / 1e6,
            "cpu1_mpps": cpu1,
            "cpu2_mpps": cpu2,
        }
        for batch in FIG2_BATCHES
    ]
    gpu = {row["batch"]: row["gpu_mpps"] for row in series}
    crossover1 = gpu_crossover_batch(1)
    crossover2 = gpu_crossover_batch(2)
    # Small batches leave the GPU under-occupied behind the fixed launch
    # cost; past the crossover the kernel itself is the limit.
    small_batch_efficiency = gpu[FIG2_BATCHES[0]] / gpu[FIG2_BATCHES[-1]]
    bottleneck = (
        "kernel_launch_overhead" if small_batch_efficiency < 0.5
        else "lookup_kernel"
    )
    return BenchResult(
        series=series,
        headline={
            "gpu_peak_mpps": gpu[FIG2_BATCHES[-1]],
            "crossover_1cpu": float(crossover1),
            "crossover_2cpu": float(crossover2),
            "peak_vs_1cpu": gpu[FIG2_BATCHES[-1]] / cpu1,
        },
        bottleneck=bottleneck,
    )


# -- Figure 5: batched I/O ---------------------------------------------


@bench("fig5", "single-core 64B forwarding vs I/O batch size (Gbps)",
       x_key="batch", units={"gbps": "Gbps"})
def produce_fig5(quick: bool = False) -> BenchResult:
    from repro.io_engine.batching import (
        forwarding_cycles_per_packet,
        forwarding_pps_single_core,
    )
    from repro.sim.metrics import pps_to_gbps

    series = [
        {"batch": batch,
         "gbps": pps_to_gbps(forwarding_pps_single_core(batch), 64)}
        for batch in FIG5_BATCHES
    ]
    gbps = {row["batch"]: row["gbps"] for row in series}
    speedup = gbps[64] / gbps[1]
    return BenchResult(
        series=series,
        headline={
            "gbps_batch1": gbps[1],
            "gbps_batch64": gbps[64],
            "speedup_64": speedup,
            # The Section 4.4 ablations behind the curve.
            "cycles_optimized": forwarding_cycles_per_packet(64),
            "cycles_no_prefetch": forwarding_cycles_per_packet(
                64, prefetch=False),
            "cycles_unaligned_8core": forwarding_cycles_per_packet(
                64, aligned_queues=False, num_cores=8),
        },
        bottleneck="per_packet_overheads" if speedup > 4 else "compute",
    )


# -- Figure 6: the packet I/O engine -----------------------------------


@bench("fig6", "packet I/O engine throughput (Gbps)",
       x_key="frame_len",
       units={"rx_gbps": "Gbps", "tx_gbps": "Gbps", "forward_gbps": "Gbps",
              "node_crossing_gbps": "Gbps"})
def produce_fig6(quick: bool = False) -> BenchResult:
    from repro.gen.workloads import EVAL_FRAME_SIZES
    from repro.io_engine.engine import io_throughput_report

    series = []
    for size in EVAL_FRAME_SIZES:
        forward = io_throughput_report(size, mode="forward")
        series.append({
            "frame_len": size,
            "rx_gbps": io_throughput_report(size, mode="rx").gbps,
            "tx_gbps": io_throughput_report(size, mode="tx").gbps,
            "forward_gbps": forward.gbps,
            "node_crossing_gbps": io_throughput_report(
                size, mode="forward", node_crossing=True).gbps,
            "bottleneck": forward.bottleneck,
        })
    report_64 = io_throughput_report(64, mode="forward")
    return BenchResult(
        series=series,
        headline={
            "forward_gbps_64": report_64.gbps,
            "forward_mpps_64": report_64.mpps,
            "rx_gbps_64": series[0]["rx_gbps"],
            "tx_gbps_64": series[0]["tx_gbps"],
        },
        bottleneck=report_64.bottleneck,
    )


# -- Figure 11: the four applications ----------------------------------


def _app_sweep(app, quick: bool) -> List[Dict[str, object]]:
    from repro import app_throughput_report
    from repro.gen.workloads import EVAL_FRAME_SIZES

    series = []
    for size in EVAL_FRAME_SIZES:
        cpu = app_throughput_report(app, size, use_gpu=False)
        gpu = app_throughput_report(app, size, use_gpu=True)
        series.append({
            "frame_len": size,
            "cpu_gbps": cpu.gbps,
            "gpu_gbps": gpu.gbps,
            "speedup": gpu.gbps / cpu.gbps,
            "bottleneck": gpu.bottleneck,
        })
    return series


def _app_headline(series: List[Dict[str, object]]) -> Dict[str, float]:
    by_size = {row["frame_len"]: row for row in series}
    return {
        "cpu_gbps_64": by_size[64]["cpu_gbps"],
        "gpu_gbps_64": by_size[64]["gpu_gbps"],
        "gpu_gbps_1514": by_size[1514]["gpu_gbps"],
        "speedup_64": by_size[64]["speedup"],
    }


_FIG11_UNITS = {"cpu_gbps": "Gbps", "gpu_gbps": "Gbps", "speedup": "ratio"}


@bench("fig11a", "IPv4 forwarding throughput (Gbps)",
       x_key="frame_len", units=_FIG11_UNITS)
def produce_fig11a(quick: bool = False) -> BenchResult:
    from repro.apps.ipv4 import IPv4Forwarder
    from repro.gen.workloads import ipv4_workload

    # Full mode builds the RouteViews-sized table (282,797 prefixes);
    # the cost models don't depend on table size, so quick shrinks it.
    workload = ipv4_workload(num_routes=5_000) if quick else ipv4_workload()
    series = _app_sweep(IPv4Forwarder(workload.table), quick)
    return BenchResult(
        series=series,
        headline=_app_headline(series),
        bottleneck=series[0]["bottleneck"],
    )


@bench("fig11b", "IPv6 forwarding throughput (Gbps)",
       x_key="frame_len", units=_FIG11_UNITS)
def produce_fig11b(quick: bool = False) -> BenchResult:
    from repro.apps.ipv6 import IPv6Forwarder
    from repro.gen.workloads import ipv6_workload

    # Full mode uses the paper's 200,000 random prefixes.
    workload = ipv6_workload(num_routes=5_000) if quick else ipv6_workload()
    series = _app_sweep(IPv6Forwarder(workload.table), quick)
    return BenchResult(
        series=series,
        headline=_app_headline(series),
        bottleneck=series[0]["bottleneck"],
    )


@bench("fig11c", "OpenFlow switch throughput @64B vs table size (Gbps)",
       x_key="config", units=_FIG11_UNITS)
def produce_fig11c(quick: bool = False) -> BenchResult:
    from repro import app_throughput_report
    from repro.apps.openflow import OpenFlowApp
    from repro.gen.workloads import openflow_workload

    series = []
    for num_exact, num_wildcard in FIG11C_CONFIGS:
        # Hash tables are O(1) per packet, so build small exact tables
        # with the right wildcard count; the wildcard count is what
        # drives the cost model.
        workload = openflow_workload(
            num_exact=min(num_exact, 2048), num_wildcard=num_wildcard
        )
        app = OpenFlowApp(workload.switch)
        cpu = app_throughput_report(app, 64, use_gpu=False)
        gpu = app_throughput_report(app, 64, use_gpu=True)
        series.append({
            "config": f"{num_exact // 1024}K+{num_wildcard}",
            "exact_entries": num_exact,
            "wildcard_entries": num_wildcard,
            "cpu_gbps": cpu.gbps,
            "gpu_gbps": gpu.gbps,
            "speedup": gpu.gbps / cpu.gbps,
            "bottleneck": gpu.bottleneck,
        })
    by_config = {row["config"]: row for row in series}
    netfpga = by_config["32K+32"]["gpu_gbps"] / 4.0
    return BenchResult(
        series=series,
        headline={
            "gpu_gbps_32K32": by_config["32K+32"]["gpu_gbps"],
            "cpu_gbps_32K32": by_config["32K+32"]["cpu_gbps"],
            "netfpga_equivalents": netfpga,
            "speedup_32K512": by_config["32K+512"]["speedup"],
        },
        bottleneck=by_config["32K+32"]["bottleneck"],
    )


@bench("fig11d", "IPsec gateway input throughput (Gbps)",
       x_key="frame_len", units=_FIG11_UNITS)
def produce_fig11d(quick: bool = False) -> BenchResult:
    from repro.apps.ipsec import IPsecGateway
    from repro.gen.workloads import ipsec_workload

    series = _app_sweep(IPsecGateway(ipsec_workload().sa), quick)
    return BenchResult(
        series=series,
        headline=_app_headline(series),
        bottleneck=series[0]["bottleneck"],
    )


# -- Figure 12: latency vs offered load --------------------------------


def _fig12_percentiles_us(app, quick: bool) -> Dict[str, float]:
    """p50/p95/p99 of the event-driven simulator's sojourn times at the
    12 Gbps operating point, read back through the registry histogram's
    :meth:`~repro.obs.registry.Histogram.percentile` estimator."""
    from repro.obs import MetricsRegistry, get_registry, names, set_registry
    from repro.sim.latency import LatencySimulator
    from repro.sim.metrics import gbps_to_pps

    previous = set_registry(MetricsRegistry())
    try:
        simulator = LatencySimulator(app, 64, use_gpu=True, seed=1)
        duration = 4e6 if quick else 8e6
        simulator.run(gbps_to_pps(12, 64), duration_ns=duration,
                      warmup_ns=duration / 4)
        registry = get_registry()
        histogram = registry.get(names.SIM_SOJOURN_NS)
        return {
            f"gpu_p{p}_us": histogram.percentile(p) / 1000.0
            for p in (50, 95, 99)
        }
    finally:
        set_registry(previous)


@bench("fig12", "IPv6 round-trip latency vs offered load (us)",
       x_key="offered_gbps",
       units={"cpu_nobatch_us": "us", "cpu_batch_us": "us", "gpu_us": "us",
              "gpu_p50_us": "us", "gpu_p95_us": "us", "gpu_p99_us": "us"})
def produce_fig12(quick: bool = False) -> BenchResult:
    from repro import app_latency_ns
    from repro.apps.ipv6 import IPv6Forwarder
    from repro.gen.workloads import ipv6_workload
    from repro.sim.metrics import gbps_to_pps

    app = IPv6Forwarder(ipv6_workload(num_routes=2000).table)
    series = []
    for gbps in FIG12_LOADS:
        pps = gbps_to_pps(gbps, 64)
        series.append({
            "offered_gbps": gbps,
            "cpu_nobatch_us": _finite(app_latency_ns(
                app, 64, pps, use_gpu=False, batching=False) / 1000.0),
            "cpu_batch_us": _finite(app_latency_ns(
                app, 64, pps, use_gpu=False, batching=True) / 1000.0),
            "gpu_us": _finite(app_latency_ns(
                app, 64, pps, use_gpu=True) / 1000.0),
        })

    def saturation_gbps(key: str) -> float:
        for row in series:
            if row[key] is None:
                return float(row["offered_gbps"])
        return float("inf")

    by_load = {row["offered_gbps"]: row for row in series}
    headline: Dict[str, float] = {
        "gpu_us_12gbps": by_load[12]["gpu_us"],
        "gpu_min_us": min(row["gpu_us"] for row in series),
        "gpu_max_us": max(row["gpu_us"] for row in series),
        "cpu_nobatch_sat_gbps": saturation_gbps("cpu_nobatch_us"),
        "cpu_batch_sat_gbps": saturation_gbps("cpu_batch_us"),
    }
    headline.update(_fig12_percentiles_us(app, quick))

    from repro import app_throughput_report
    report = app_throughput_report(app, 64, use_gpu=True)
    return BenchResult(
        series=series,
        headline=headline,
        bottleneck=report.bottleneck,
    )


# -- Tables 1-3 ---------------------------------------------------------


@bench("table1", "host<->device transfer rate (MB/s)", kind="table",
       x_key="bytes", units={"h2d_mbps": "MB/s", "d2h_mbps": "MB/s"})
def produce_table1(quick: bool = False) -> BenchResult:
    from repro.hw.gpu import GPUDevice
    from repro.hw.pcie import PCIeLink

    link = PCIeLink()
    series = [
        {
            "bytes": size,
            "h2d_mbps": link.h2d_rate_mbps(size),
            "d2h_mbps": link.d2h_rate_mbps(size),
        }
        for size in TABLE1_SIZES
    ]
    device = GPUDevice()
    peak = series[-1]
    return BenchResult(
        series=series,
        headline={
            "h2d_peak_mbps": peak["h2d_mbps"],
            "d2h_peak_mbps": peak["d2h_mbps"],
            "asymmetry": peak["h2d_mbps"] / peak["d2h_mbps"],
            # The Section 2.2 kernel-launch microbenchmark rides along.
            "launch_us_1thread": device.launch_latency_ns(1) / 1000.0,
            "launch_us_4096threads": device.launch_latency_ns(4096) / 1000.0,
        },
        # The dual-IOH asymmetry: the lower direction is the ceiling.
        bottleneck="d2h_path" if peak["d2h_mbps"] < peak["h2d_mbps"]
        else "h2d_path",
    )


@bench("table2", "test system hardware specification and cost",
       kind="table", x_key="item", units={"unit_usd": "USD"})
def produce_table2(quick: bool = False) -> BenchResult:
    from repro.calib.constants import CPU, GPU, SYSTEM

    series = [
        {"item": "CPU", "qty": SYSTEM.num_nodes, "unit_usd": SYSTEM.price_cpu},
        {"item": "RAM", "qty": SYSTEM.ram_modules, "unit_usd": SYSTEM.price_ram},
        {"item": "M/B", "qty": 1, "unit_usd": SYSTEM.price_motherboard},
        {"item": "GPU", "qty": SYSTEM.num_nodes, "unit_usd": SYSTEM.price_gpu},
        {"item": "NIC", "qty": SYSTEM.num_nodes * SYSTEM.nics_per_node,
         "unit_usd": SYSTEM.price_nic},
        {"item": "misc", "qty": 1, "unit_usd": SYSTEM.price_misc},
    ]
    priciest = max(series, key=lambda row: row["qty"] * row["unit_usd"])
    return BenchResult(
        series=series,
        headline={
            "total_cost_usd": float(SYSTEM.total_cost),
            "gpu_unit_usd": float(SYSTEM.price_gpu),
            "total_ports": float(SYSTEM.total_ports),
            "cpu_cores": float(CPU.cores * SYSTEM.num_nodes),
            "gpu_cores": float(GPU.total_cores),
        },
        # The Section 7 price argument: where the dollars actually go.
        bottleneck=f"cost_{priciest['item'].lower().replace('/', '')}",
    )


@bench("table3", "CPU cycle breakdown in packet RX", kind="table",
       x_key="bin", units={"share": "fraction"})
def produce_table3(quick: bool = False) -> BenchResult:
    from repro.io_engine.driver import UnmodifiedDriver

    driver = UnmodifiedDriver()
    frame = bytes(64)
    for _ in range(800 if quick else 2000):
        driver.receive_and_drop(frame)
    shares = driver.breakdown.shares()
    series = [{"bin": name, "share": share} for name, share in shares.items()]
    skb_related = (
        shares["skb initialization"]
        + shares["skb (de)allocation"]
        + shares["memory subsystem"]
    )
    top = max(series, key=lambda row: row["share"])
    return BenchResult(
        series=series,
        headline={
            "skb_related_share": skb_related,
            "top_bin_share": top["share"],
        },
        # The Table 3 verdict is the dominant functional bin.
        bottleneck=str(top["bin"]),
    )


# -- Extension benches --------------------------------------------------


@bench("degraded", "breaker-open degraded throughput vs CPU-only baseline",
       kind="extension", x_key="case",
       units={"clean_gbps": "Gbps", "cpu_only_gbps": "Gbps",
              "degraded_gbps": "Gbps", "ratio": "ratio"})
def produce_degraded(quick: bool = False) -> BenchResult:
    from repro import app_throughput_report
    from repro.apps.ipv4 import IPv4Forwarder
    from repro.apps.ipv6 import IPv6Forwarder
    from repro.core.solver import degraded_throughput_report
    from repro.gen.workloads import EVAL_FRAME_SIZES, ipv4_workload, ipv6_workload

    routes = 2_000 if quick else 5_000
    apps = {
        "ipv4": IPv4Forwarder(ipv4_workload(num_routes=routes).table),
        "ipv6": IPv6Forwarder(ipv6_workload(num_routes=routes).table),
    }
    series = []
    verdict = ""
    for name, app in apps.items():
        for size in EVAL_FRAME_SIZES:
            clean = app_throughput_report(app, size, use_gpu=True)
            cpu_only = app_throughput_report(app, size, use_gpu=False)
            degraded = degraded_throughput_report(app, size)
            series.append({
                "case": f"{name}@{size}",
                "app": name,
                "frame_len": size,
                "clean_gbps": clean.gbps,
                "cpu_only_gbps": cpu_only.gbps,
                "degraded_gbps": degraded.gbps,
                "ratio": degraded.gbps / cpu_only.gbps,
            })
            if name == "ipv4" and size == 64:
                verdict = degraded.bottleneck
    ratios = [row["ratio"] for row in series]
    return BenchResult(
        series=series,
        headline={
            "min_ratio": min(ratios),
            "mean_ratio": sum(ratios) / len(ratios),
            "ipv4_degraded_gbps_64": series[0]["degraded_gbps"],
        },
        bottleneck=verdict,
    )


@bench("numa", "NUMA-aware vs NUMA-blind forwarding", kind="extension",
       x_key="configuration", units={"io_gbps": "Gbps", "app_gbps": "Gbps"})
def produce_numa(quick: bool = False) -> BenchResult:
    from repro import app_throughput_report
    from repro.apps.ipv6 import IPv6Forwarder
    from repro.core.config import RouterConfig
    from repro.gen.workloads import ipv6_workload
    from repro.io_engine.engine import io_throughput_report

    app = IPv6Forwarder(ipv6_workload(num_routes=1000).table)
    aware = io_throughput_report(64, mode="forward", numa_aware=True)
    blind = io_throughput_report(64, mode="forward", numa_aware=False)
    app_aware = app_throughput_report(app, 64, use_gpu=True)
    app_blind = app_throughput_report(
        app, 64, use_gpu=True, config=RouterConfig(numa_aware=False)
    )
    series = [
        {"configuration": "aware", "io_gbps": aware.gbps,
         "app_gbps": app_aware.gbps},
        {"configuration": "blind", "io_gbps": blind.gbps,
         "app_gbps": app_blind.gbps},
    ]
    return BenchResult(
        series=series,
        headline={
            "aware_over_blind": aware.gbps / blind.gbps,
            "aware_gbps": aware.gbps,
            "blind_gbps": blind.gbps,
        },
        # NUMA-blind crossings move the ceiling to the interconnect.
        bottleneck=blind.bottleneck,
    )


@bench("divergence", "warp divergence and the classify-and-sort fix",
       kind="extension", x_key="mix",
       units={"unsorted_us": "us", "sorted_us": "us",
              "divergence_factor": "ratio"})
def produce_divergence(quick: bool = False) -> BenchResult:
    import random

    from repro.hw.divergence import divergent_execution_factor, sort_for_warps
    from repro.hw.gpu import GPUDevice, KernelSpec

    rng = random.Random(55)
    device = GPUDevice()
    n = 1024 if quick else 3072
    series = []
    for paths, mix in ((1, "single suite"), (2, "two suites"),
                       (4, "four suites")):
        labels = [rng.randrange(paths) for _ in range(n)]
        unsorted_factor = divergent_execution_factor(labels)
        sorted_labels = [labels[i] for i in sort_for_warps(labels)]
        sorted_factor = divergent_execution_factor(sorted_labels)
        time_unsorted = device.execution_time_ns(
            KernelSpec(name="mix", compute_cycles=400.0,
                       divergence_factor=unsorted_factor), n)
        time_sorted = device.execution_time_ns(
            KernelSpec(name="mix", compute_cycles=400.0,
                       divergence_factor=sorted_factor), n)
        series.append({
            "mix": mix,
            "paths": paths,
            "divergence_factor": unsorted_factor,
            "unsorted_us": time_unsorted / 1000.0,
            "sorted_us": time_sorted / 1000.0,
        })
    by_mix = {row["mix"]: row for row in series}
    baseline = by_mix["single suite"]["sorted_us"]
    penalty = by_mix["four suites"]["unsorted_us"] / baseline
    recovery = by_mix["four suites"]["sorted_us"] / baseline
    return BenchResult(
        series=series,
        headline={
            "four_suite_penalty": penalty,
            "sorted_recovery": recovery,
        },
        bottleneck="warp_divergence" if penalty > 1.5 else "gpu_kernel",
    )


@bench("ablations", "Section 7 / 2.4 quantitative claims", kind="extension",
       x_key="machine_class", units={"usd_per_ghz": "USD/GHz"})
def produce_ablations(quick: bool = False) -> BenchResult:
    from repro import app_throughput_report
    from repro.apps.ipv6 import IPv6Forwarder
    from repro.calib.constants import CPU, GPU, SYSTEM
    from repro.gen.workloads import ipv6_workload
    from repro.hw.cpu import memory_access_time

    # The paper's own price points: $/GHz of aggregate clock.
    series = [
        {"machine_class": "single-socket", "usd_per_ghz": 240 / (2.66 * 4)},
        {"machine_class": "dual-socket", "usd_per_ghz": 925 / (2.66 * 4)},
        {"machine_class": "quad-socket", "usd_per_ghz": 2190 / (2.00 * 6)},
    ]
    app = IPv6Forwarder(ipv6_workload(num_routes=1000).table)
    gpu_gbps = app_throughput_report(app, 64, use_gpu=True).gbps
    cpu_gbps = app_throughput_report(app, 64, use_gpu=False).gbps

    accesses = 16.0
    serial = memory_access_time(accesses)
    alone = memory_access_time(0.0, independent_accesses=accesses,
                               all_cores_busy=False)
    bursting = memory_access_time(0.0, independent_accesses=accesses,
                                  all_cores_busy=True)
    bw_ratio = GPU.mem_bandwidth / CPU.mem_bandwidth
    return BenchResult(
        series=series,
        headline={
            "power_increase": SYSTEM.power_full_gpu_w / SYSTEM.power_full_cpu_w
            - 1.0,
            "gpu_gbps_per_watt": gpu_gbps / SYSTEM.power_full_gpu_w,
            "cpu_gbps_per_watt": cpu_gbps / SYSTEM.power_full_cpu_w,
            "mshr_one_core": serial / alone,
            "mshr_all_cores": serial / bursting,
            "gpu_bw_ratio": bw_ratio,
        },
        # The Section 2.4 argument: random 4B lookups starve on CPU
        # memory bandwidth; the GPU brings 5.5x of it.
        bottleneck="cpu_memory_bandwidth" if bw_ratio > 4 else "compute",
    )


@bench("workloads", "adversarial workloads: goodput and p99 under flood",
       kind="extension", x_key="scenario",
       units={"goodput": "ratio", "p99_us": "us", "slo_headroom": "ratio",
              "shed_share": "ratio", "table_occupancy": "ratio"})
def produce_workloads(quick: bool = False) -> BenchResult:
    """The overload-control figure: each flood scenario scored on both
    axes the SLO cares about — established goodput (throughput the
    ladder must protect) and windowed p99 vs the budget (latency the
    adaptive chunking must respect).  Scenario runs are deterministic
    from their seed, so quick and full modes agree exactly.
    """
    from repro.faults.scenarios import run_scenario
    from repro.obs import MetricsRegistry, set_registry

    previous = set_registry(MetricsRegistry())
    try:
        series = []
        for name in ("heavy-tail", "syn-flood", "ddos"):
            report = run_scenario(name, seed=1)
            goodput = (
                report.established_goodput
                if report.established_packets
                else report.forwarded / report.injected
            )
            series.append({
                "scenario": name,
                "goodput": goodput,
                "p99_us": report.p99_ns / 1000.0,
                "slo_headroom": report.slo_budget_ns / report.p99_ns,
                "shed_share": report.rx_shed / report.injected,
                "table_occupancy": (
                    report.flow_table_len / report.flow_table_cap
                    if report.flow_table_cap else None
                ),
                "conservation_ok": report.conservation_ok,
            })
    finally:
        set_registry(previous)
    headroom = {row["scenario"]: row["slo_headroom"] for row in series}
    min_headroom = min(headroom.values())
    return BenchResult(
        series=series,
        headline={
            "min_goodput": min(row["goodput"] for row in series),
            "min_slo_headroom": min_headroom,
            "heavy_tail_p99_us": next(
                row["p99_us"] for row in series
                if row["scenario"] == "heavy-tail"
            ),
            "ddos_table_occupancy": next(
                row["table_occupancy"] for row in series
                if row["scenario"] == "ddos"
            ),
            "total_shed_share": sum(row["shed_share"] for row in series)
            / len(series),
        },
        # The binding axis: latency headroom when the AIMD loop is the
        # constraint, shedding when the ladder is doing the work.
        bottleneck="slo_p99" if min_headroom < 1.5 else "rx_shedding",
    )


@bench("scaling", "sharded data-plane throughput vs worker processes",
       kind="extension", x_key="workers",
       units={"ipv4_gbps": "Gbps", "ipv6_gbps": "Gbps",
              "ipv4_speedup": "ratio", "ipv6_speedup": "ratio"})
def produce_scaling(quick: bool = False) -> BenchResult:
    """Throughput vs shard count for the multi-process plane.

    This is the *capacity model's* view of docs/SHARDING.md: each
    worker process is one logical worker of one node, so the sweep sets
    ``workers_per_node_gpu_mode`` and reads the pipeline solver — the
    same model every Figure 11 number comes from.  The committed figure
    is deterministic by design; measured wall-clock scaling depends on
    how many cores the host actually has (CI runners may have one), so
    it lives only in the git-ignored history via
    ``python -m repro bench --wallclock --workers N``.

    The expected shape: linear through 4 workers (the worker stage is
    the bottleneck), then the I/O engine caps the curve at 8 — shading
    scales out, the NICs do not.
    """
    from dataclasses import replace

    from repro import app_throughput_report
    from repro.apps.ipv4 import IPv4Forwarder
    from repro.apps.ipv6 import IPv6Forwarder
    from repro.calib.constants import SYSTEM
    from repro.core.config import RouterConfig
    from repro.gen.workloads import ipv4_workload, ipv6_workload

    routes = 2_000 if quick else 5_000
    apps = {
        "ipv4": IPv4Forwarder(ipv4_workload(num_routes=routes).table),
        "ipv6": IPv6Forwarder(ipv6_workload(num_routes=routes).table),
    }
    series = []
    bottleneck_8w = ""
    for workers in (1, 2, 4, 8):
        config = RouterConfig(
            use_gpu=True,
            system=replace(
                SYSTEM, num_nodes=1, workers_per_node_gpu_mode=workers
            ),
        )
        row: Dict[str, object] = {"workers": workers}
        for name, app in apps.items():
            report = app_throughput_report(app, 64, use_gpu=True,
                                           config=config)
            row[f"{name}_gbps"] = report.gbps
            row[f"{name}_bottleneck"] = report.bottleneck
            if name == "ipv4" and workers == 8:
                bottleneck_8w = report.bottleneck
        series.append(row)
    by_workers = {row["workers"]: row for row in series}
    for row in series:
        for name in apps:
            row[f"{name}_speedup"] = (
                row[f"{name}_gbps"] / by_workers[1][f"{name}_gbps"]
            )
    return BenchResult(
        series=series,
        headline={
            "ipv4_speedup_4w": by_workers[4]["ipv4_speedup"],
            "ipv6_speedup_4w": by_workers[4]["ipv6_speedup"],
            "ipv4_speedup_8w": by_workers[8]["ipv4_speedup"],
            "ipv4_gbps_8w": by_workers[8]["ipv4_gbps"],
            "ipv4_gbps_1w": by_workers[1]["ipv4_gbps"],
        },
        # Where the linear region ends: shading scales out until the
        # packet I/O engine becomes the ceiling.
        bottleneck=bottleneck_8w,
    )


@bench("extensions", "huge buffers, composition, and VLB scaling",
       kind="extension", x_key="nodes",
       units={"direct_gbps": "Gbps", "classic_gbps": "Gbps"})
def produce_extensions(quick: bool = False) -> BenchResult:
    from repro import app_throughput_report
    from repro.apps.ipsec import IPsecGateway
    from repro.apps.ipv4 import IPv4Forwarder
    from repro.calib.constants import IO_ENGINE, LINUX_STACK
    from repro.core.composite import CompositeApplication
    from repro.core.scaling import VLBCluster, packetshader_vs_rb4
    from repro.gen.workloads import ipsec_workload, ipv4_workload

    series = []
    for nodes in (1, 2, 4, 8):
        direct = VLBCluster(num_nodes=nodes, node_capacity_gbps=40.0,
                            mesh_link_gbps=10.0, direct=True)
        classic = VLBCluster(num_nodes=nodes, node_capacity_gbps=40.0,
                             mesh_link_gbps=10.0, direct=False)
        series.append({
            "nodes": nodes,
            "direct_gbps": direct.external_capacity_gbps(),
            "classic_gbps": classic.external_capacity_gbps(),
        })
    comparison = packetshader_vs_rb4()

    ipv4 = IPv4Forwarder(ipv4_workload(num_routes=1000).table)
    ipsec = IPsecGateway(ipsec_workload().sa)
    composite = CompositeApplication([ipv4, ipsec])
    composite_gpu = app_throughput_report(composite, 64, use_gpu=True).gbps
    composite_cpu = app_throughput_report(composite, 64, use_gpu=False).gbps

    skb_ratio = LINUX_STACK.total_cycles / IO_ENGINE.rx_only_per_packet_cycles
    return BenchResult(
        series=series,
        headline={
            "skb_engine_ratio": skb_ratio,
            "ps_vs_rb4_ratio": comparison["packetshader_single_box"]
            / comparison["routebricks_rb4"],
            "vlb8_direct_gbps": series[-1]["direct_gbps"],
            "composite_gpu_gbps_64": composite_gpu,
            "composite_speedup_64": composite_gpu / composite_cpu,
        },
        # Classic VLB halves external capacity into the mesh.
        bottleneck="mesh_links"
        if series[-1]["classic_gbps"] < series[-1]["direct_gbps"]
        else "node_capacity",
    )
