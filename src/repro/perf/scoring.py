"""Paper-fidelity divergence scoring.

Given one benchmark's measured :class:`~repro.perf.registry.BenchResult`
and its :class:`~repro.perf.reference.FigureRef`, compute how far the
reproduction sits from the published numbers:

* **per-point relative error** for every digitised series point and
  headline anchor (denominator floored by the reference's ``abs_floor``
  so tiny expected values don't explode the ratio);
* **shape checks** — monotonicity of measured series the paper draws as
  monotone curves (Figure 5's batching curve, Table 1's rate ramps);
* a scalar **fidelity** in [0, 1]: ``max(0, 1 - mean_rel_error)``,
  halved if any shape check fails, zeroed by missing points.

Fidelity is deliberately continuous: the regression gate trips only
past tolerances, but the scorecard trajectory shows drift long before.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.perf.reference import FigureRef, SeriesRef, get_reference
from repro.perf.registry import BenchResult

#: Penalty applied to the fidelity score when a shape check fails: the
#: curve's character is wrong even if individual points sit close.
SHAPE_PENALTY = 0.5
#: Relative error charged for a reference point the measured series does
#: not contain at all (missing x, missing column, or null value).
MISSING_POINT_ERROR = 1.0


@dataclass
class PointScore:
    """One digitised point compared against its measured value."""

    x: object
    expected: float
    measured: Optional[float]
    rel_error: float
    within_tol: bool


@dataclass
class SeriesScore:
    key: str
    rel_tol: float
    points: List[PointScore] = field(default_factory=list)
    monotonic: Optional[str] = None
    monotonic_ok: bool = True

    @property
    def mean_rel_error(self) -> float:
        if not self.points:
            return 0.0
        return sum(p.rel_error for p in self.points) / len(self.points)

    @property
    def max_rel_error(self) -> float:
        return max((p.rel_error for p in self.points), default=0.0)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rel_tol": self.rel_tol,
            "mean_rel_error": round(self.mean_rel_error, 6),
            "max_rel_error": round(self.max_rel_error, 6),
            "points": len(self.points),
            "within_tol": all(p.within_tol for p in self.points),
            "monotonic": self.monotonic,
            "monotonic_ok": self.monotonic_ok,
        }


@dataclass
class DivergenceScore:
    """The verdict scoring hands the runner for one figure."""

    figure: str
    source: str
    fidelity: float
    mean_rel_error: float
    max_rel_error: float
    points: int
    missing: int
    shape_ok: bool
    within_tol: bool
    series: Dict[str, SeriesScore] = field(default_factory=dict)
    anchors: Dict[str, PointScore] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "source": self.source,
            "fidelity": round(self.fidelity, 4),
            "mean_rel_error": round(self.mean_rel_error, 6),
            "max_rel_error": round(self.max_rel_error, 6),
            "points": self.points,
            "missing": self.missing,
            "shape_ok": self.shape_ok,
            "within_tol": self.within_tol,
            "series": {k: s.to_dict() for k, s in sorted(self.series.items())},
            "anchors": {
                k: {
                    "expected": p.expected,
                    "measured": p.measured,
                    "rel_error": round(p.rel_error, 6),
                    "within_tol": p.within_tol,
                }
                for k, p in sorted(self.anchors.items())
            },
        }


def _rel_error(measured: float, expected: float, abs_floor: float) -> float:
    denominator = max(abs(expected), abs_floor)
    if denominator == 0.0:
        return 0.0 if measured == expected else MISSING_POINT_ERROR
    return abs(measured - expected) / denominator


def _series_values(
    series: List[Dict[str, object]], x_key: str, key: str
) -> Dict[object, float]:
    """Measured ``x -> value`` for one column (None/missing dropped)."""
    values: Dict[object, float] = {}
    for row in series:
        value = row.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool) \
                and math.isfinite(value):
            values[row.get(x_key)] = float(value)
    return values


def _monotonic_ok(values: List[float], direction: str) -> bool:
    if direction == "increasing":
        return all(b >= a for a, b in zip(values, values[1:]))
    if direction == "decreasing":
        return all(b <= a for a, b in zip(values, values[1:]))
    raise ValueError(f"unknown monotonic direction {direction!r}")


def _score_series(
    ref: SeriesRef,
    series: List[Dict[str, object]],
    x_key: str,
) -> SeriesScore:
    measured = _series_values(series, x_key, ref.key)
    score = SeriesScore(key=ref.key, rel_tol=ref.rel_tol, monotonic=ref.monotonic)
    for x, expected in ref.points:
        value = measured.get(x)
        if value is None:
            score.points.append(PointScore(
                x=x, expected=expected, measured=None,
                rel_error=MISSING_POINT_ERROR, within_tol=False,
            ))
            continue
        error = _rel_error(value, expected, ref.abs_floor)
        score.points.append(PointScore(
            x=x, expected=expected, measured=value,
            rel_error=error, within_tol=error <= ref.rel_tol,
        ))
    if ref.monotonic is not None:
        # Shape is judged on the measured curve in sweep order.
        ordered = [
            float(row[ref.key]) for row in series
            if isinstance(row.get(ref.key), (int, float))
            and not isinstance(row.get(ref.key), bool)
            and math.isfinite(row[ref.key])
        ]
        score.monotonic_ok = _monotonic_ok(ordered, ref.monotonic)
    return score


def score_result(
    figure: str,
    result: BenchResult,
    x_key: str,
    reference: Optional[FigureRef] = None,
) -> DivergenceScore:
    """Score one measured result against the paper-reference table."""
    ref = reference if reference is not None else get_reference(figure)
    if ref is None:
        raise KeyError(f"no reference entry for benchmark {figure!r}")

    series_scores: Dict[str, SeriesScore] = {}
    anchor_scores: Dict[str, PointScore] = {}
    errors: List[float] = []
    missing = 0
    shape_ok = True

    for series_ref in ref.series:
        score = _score_series(series_ref, result.series, x_key)
        series_scores[series_ref.key] = score
        for point in score.points:
            errors.append(point.rel_error)
            if point.measured is None:
                missing += 1
        if not score.monotonic_ok:
            shape_ok = False

    for anchor in ref.anchors:
        value = result.headline.get(anchor.key)
        if value is None or not math.isfinite(value):
            point = PointScore(
                x=anchor.key, expected=anchor.expected, measured=None,
                rel_error=MISSING_POINT_ERROR, within_tol=False,
            )
            missing += 1
        else:
            error = _rel_error(float(value), anchor.expected, 0.0)
            point = PointScore(
                x=anchor.key, expected=anchor.expected, measured=float(value),
                rel_error=error, within_tol=error <= anchor.rel_tol,
            )
        anchor_scores[anchor.key] = point
        errors.append(point.rel_error)

    mean_error = sum(errors) / len(errors) if errors else 0.0
    max_error = max(errors, default=0.0)
    fidelity = max(0.0, 1.0 - mean_error)
    if not shape_ok:
        fidelity *= SHAPE_PENALTY
    within = (
        all(p.within_tol for s in series_scores.values() for p in s.points)
        and all(p.within_tol for p in anchor_scores.values())
        and shape_ok
    )
    return DivergenceScore(
        figure=figure,
        source=ref.source,
        fidelity=fidelity,
        mean_rel_error=mean_error,
        max_rel_error=max_error,
        points=len(errors),
        missing=missing,
        shape_ok=shape_ok,
        within_tol=within,
        series=series_scores,
        anchors=anchor_scores,
    )
