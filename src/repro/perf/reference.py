"""The machine-readable paper-reference table.

Digitised expected values for every registered benchmark, in one place
that scoring, the gate, and the docs all read.  Two provenance classes,
flagged by ``source``:

* **paper** figures/tables (fig2/fig5/fig6/fig11a–d/fig12/table1–3):
  the numbers are the published ones — table cells verbatim, figure
  anchors as quoted in the prose or read off the named points the
  evaluation discusses.  Only points the paper actually states are
  digitised; interpolating a curve we cannot read precisely would
  launder model output into "reference" data.
* **extension** benches (degraded/numa/divergence/ablations/extensions):
  where the paper states the number (NUMA +60%, power +68%, $/GHz) it
  is used; otherwise the entry pins the reproduction's accepted value
  as a regression reference and says so in ``note``.

Tolerances are per-series/anchor relative errors: inside the tolerance
a point counts as reproduced; the continuous distance still feeds the
fidelity score, so drift *within* tolerance is visible in the scorecard
trajectory before it ever trips the gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class SeriesRef:
    """Expected points of one series, addressed by x value.

    ``abs_floor`` bounds the denominator of the relative error so
    near-zero expected values (Table 3's 4.9% share) don't turn a
    one-point absolute miss into a huge relative one.
    """

    key: str
    points: Tuple[Tuple[object, float], ...] = ()
    rel_tol: float = 0.05
    abs_floor: float = 0.0
    monotonic: Optional[str] = None  # "increasing" | "decreasing" | None


@dataclass(frozen=True)
class AnchorRef:
    """One expected headline scalar."""

    key: str
    expected: float
    rel_tol: float = 0.05


@dataclass(frozen=True)
class FigureRef:
    figure: str
    source: str  # "Figure 6", "Table 1", "extension", ...
    series: Tuple[SeriesRef, ...] = ()
    anchors: Tuple[AnchorRef, ...] = ()
    note: str = ""


REFERENCE: Dict[str, FigureRef] = {}


def _ref(ref: FigureRef) -> None:
    REFERENCE[ref.figure] = ref


def get_reference(figure: str) -> Optional[FigureRef]:
    return REFERENCE.get(figure)


# -- the paper's figures ------------------------------------------------

_ref(FigureRef(
    figure="fig2",
    source="Figure 2",
    series=(
        SeriesRef(key="gpu_mpps", monotonic="increasing"),
    ),
    anchors=(
        # "the GPU throughput crosses one quad-core X5550 past ~320
        # packets, two past ~640, and saturates around ten X5550s".
        AnchorRef(key="crossover_1cpu", expected=320.0, rel_tol=0.45),
        AnchorRef(key="crossover_2cpu", expected=640.0, rel_tol=0.60),
        AnchorRef(key="peak_vs_1cpu", expected=10.0, rel_tol=0.25),
    ),
))

_ref(FigureRef(
    figure="fig5",
    source="Figure 5",
    series=(
        # 0.78 Gbps packet-by-packet, 10.5 Gbps at batch 64.
        SeriesRef(key="gbps", points=((1, 0.78), (64, 10.5)),
                  rel_tol=0.03, monotonic="increasing"),
    ),
    anchors=(
        AnchorRef(key="speedup_64", expected=13.5, rel_tol=0.05),
    ),
))

_ref(FigureRef(
    figure="fig6",
    source="Figure 6",
    series=(
        SeriesRef(key="rx_gbps", points=((64, 53.1), (1514, 59.9)),
                  rel_tol=0.03),
        SeriesRef(key="tx_gbps", points=((64, 79.3), (1514, 80.0)),
                  rel_tol=0.03),
        SeriesRef(key="forward_gbps", points=((64, 41.1), (1514, 40.0)),
                  rel_tol=0.04),
    ),
    anchors=(
        # 41.1 Gbps / 58.4 Mpps minimal forwarding at 64B.
        AnchorRef(key="forward_mpps_64", expected=58.4, rel_tol=0.03),
    ),
))

_ref(FigureRef(
    figure="fig11a",
    source="Figure 11(a)",
    series=(
        SeriesRef(key="gpu_gbps", points=((64, 39.0), (1514, 40.0)),
                  rel_tol=0.03),
        SeriesRef(key="cpu_gbps", points=((64, 28.0),), rel_tol=0.06),
    ),
))

_ref(FigureRef(
    figure="fig11b",
    source="Figure 11(b)",
    series=(
        SeriesRef(key="gpu_gbps", points=((64, 38.2),), rel_tol=0.04),
        SeriesRef(key="cpu_gbps", points=((64, 8.0),), rel_tol=0.12),
    ),
    anchors=(
        AnchorRef(key="speedup_64", expected=4.8, rel_tol=0.20),
    ),
))

_ref(FigureRef(
    figure="fig11c",
    source="Figure 11(c)",
    series=(
        # 32 Gbps at the NetFPGA-comparison configuration (32K+32).
        SeriesRef(key="gpu_gbps", points=(("32K+32", 32.0),), rel_tol=0.04),
    ),
    anchors=(
        # "about eight NetFPGA cards (4 Gbps line rate each)".
        AnchorRef(key="netfpga_equivalents", expected=8.0, rel_tol=0.06),
    ),
))

_ref(FigureRef(
    figure="fig11d",
    source="Figure 11(d)",
    series=(
        SeriesRef(key="gpu_gbps", points=((64, 10.2), (1514, 20.0)),
                  rel_tol=0.12, monotonic="increasing"),
    ),
    anchors=(
        # "improves ... by a factor of 3.5, regardless of packet sizes".
        AnchorRef(key="speedup_64", expected=3.5, rel_tol=0.35),
    ),
))

_ref(FigureRef(
    figure="fig12",
    source="Figure 12",
    anchors=(
        # "yet still showing a reasonable range (200-400us in the
        # figure)": the band's midpoint, tolerance spanning the band.
        AnchorRef(key="gpu_us_12gbps", expected=300.0, rel_tol=0.35),
        # Saturation points read off the figure: no-batch dies between
        # 3 and 4 Gbps, CPU+batch at its ~8 Gbps capacity.
        AnchorRef(key="cpu_nobatch_sat_gbps", expected=4.0, rel_tol=0.25),
        AnchorRef(key="cpu_batch_sat_gbps", expected=12.0, rel_tol=0.40),
    ),
    note="latency percentiles (p50/p95/p99) are tracked as headline "
         "metrics without a published reference",
))

# -- the paper's tables -------------------------------------------------

_ref(FigureRef(
    figure="table1",
    source="Table 1",
    series=(
        SeriesRef(
            key="h2d_mbps",
            points=((256, 55), (1024, 185), (4096, 759), (16384, 2069),
                    (65536, 4046), (262144, 5142), (1048576, 5577)),
            rel_tol=0.20, monotonic="increasing",
        ),
        SeriesRef(
            key="d2h_mbps",
            points=((256, 63), (1024, 211), (4096, 786), (16384, 1743),
                    (65536, 2848), (262144, 3242), (1048576, 3394)),
            rel_tol=0.20, monotonic="increasing",
        ),
    ),
))

_ref(FigureRef(
    figure="table2",
    source="Table 2",
    anchors=(
        AnchorRef(key="total_cost_usd", expected=7000.0, rel_tol=0.05),
    ),
))

_ref(FigureRef(
    figure="table3",
    source="Table 3",
    series=(
        SeriesRef(
            key="share",
            points=(
                ("skb initialization", 0.049),
                ("skb (de)allocation", 0.080),
                ("memory subsystem", 0.502),
                ("NIC device driver", 0.133),
                ("others", 0.098),
                ("compulsory cache misses", 0.138),
            ),
            rel_tol=0.25, abs_floor=0.05,
        ),
    ),
    anchors=(
        # "skb-related operations take 63.1% of the cycles".
        AnchorRef(key="skb_related_share", expected=0.631, rel_tol=0.03),
    ),
))

# -- the reproduction's extension benches -------------------------------

_ref(FigureRef(
    figure="degraded",
    source="extension",
    anchors=(
        # The resilience bar: breaker-open capacity within 10% of the
        # Figure 11 CPU-only baseline (docs/RESILIENCE.md).
        AnchorRef(key="min_ratio", expected=1.0, rel_tol=0.10),
    ),
    note="regression reference for the recovery ladder's floor",
))

_ref(FigureRef(
    figure="numa",
    source="Section 4.5",
    anchors=(
        # "NUMA-blind stays below 25 Gbps, aware around 40 (+60%)".
        AnchorRef(key="aware_over_blind", expected=1.6, rel_tol=0.05),
    ),
))

_ref(FigureRef(
    figure="divergence",
    source="Section 5.5",
    anchors=(
        AnchorRef(key="four_suite_penalty", expected=4.0, rel_tol=0.30),
        AnchorRef(key="sorted_recovery", expected=1.0, rel_tol=0.20),
    ),
    note="classify-and-sort must recover (almost) all of the mixed-"
         "suite divergence penalty",
))

_ref(FigureRef(
    figure="ablations",
    source="Section 7 / Section 2.4",
    series=(
        # "$23, $87, $183 per GHz" across the machine classes.
        SeriesRef(
            key="usd_per_ghz",
            points=(("single-socket", 23.0), ("dual-socket", 87.0),
                    ("quad-socket", 183.0)),
            rel_tol=0.05, monotonic="increasing",
        ),
    ),
    anchors=(
        # 594 W with GPUs vs 353 W without: +68%.
        AnchorRef(key="power_increase", expected=0.68, rel_tol=0.03),
        # "177.4 vs 32 GB/s" memory bandwidth.
        AnchorRef(key="gpu_bw_ratio", expected=5.54, rel_tol=0.02),
        # "about 6 outstanding cache misses ... only 4 when all four
        # cores burst memory references".
        AnchorRef(key="mshr_one_core", expected=6.0, rel_tol=0.05),
        AnchorRef(key="mshr_all_cores", expected=4.0, rel_tol=0.05),
    ),
))

_ref(FigureRef(
    figure="workloads",
    source="extension",
    series=(
        # Established goodput must not collapse under any flood.
        SeriesRef(
            key="goodput",
            points=(("heavy-tail", 1.0), ("syn-flood", 1.0), ("ddos", 1.0)),
            rel_tol=0.10,
        ),
    ),
    anchors=(
        # The overload-control acceptance bar (docs/RESILIENCE.md):
        # goodput protected, p99 inside the SLO budget (headroom > 1),
        # and the bounded flow table churning right at its cap.
        AnchorRef(key="min_goodput", expected=1.0, rel_tol=0.10),
        AnchorRef(key="min_slo_headroom", expected=1.2, rel_tol=0.20),
        AnchorRef(key="ddos_table_occupancy", expected=1.0, rel_tol=0.01),
        # Regression reference: the healthy heavy-tail mix's p99.
        AnchorRef(key="heavy_tail_p99_us", expected=222.3, rel_tol=0.25),
    ),
    note="regression references for the overload-control subsystem; "
         "goodput and occupancy bars are the chaos-suite acceptance "
         "criteria",
))

_ref(FigureRef(
    figure="scaling",
    source="extension",
    series=(
        SeriesRef(key="ipv4_gbps", monotonic="increasing"),
        SeriesRef(key="ipv6_gbps", monotonic="increasing"),
    ),
    anchors=(
        # The sharding acceptance bar (docs/SHARDING.md): near-linear
        # through four workers, I/O-capped by eight.
        AnchorRef(key="ipv4_speedup_4w", expected=4.0, rel_tol=0.25),
        AnchorRef(key="ipv6_speedup_4w", expected=4.0, rel_tol=0.25),
        AnchorRef(key="ipv4_gbps_8w", expected=39.8, rel_tol=0.05),
    ),
    note="regression references for the multi-process shard plane; "
         "the committed curve is the capacity model (wall-clock scaling "
         "is host-dependent and history-only)",
))

_ref(FigureRef(
    figure="extensions",
    source="extension",
    anchors=(
        # Section 4 redesign: an order of magnitude off the skb path
        # (the reproduction's calibrated ratio is 16x; regression ref).
        AnchorRef(key="skb_engine_ratio", expected=16.0, rel_tol=0.10),
        # "PacketShader could replace RB4 ... with better performance":
        # 40 Gbps single box vs the modelled 26.6 Gbps RB4 cluster.
        AnchorRef(key="ps_vs_rb4_ratio", expected=1.5, rel_tol=0.10),
        AnchorRef(key="vlb8_direct_gbps", expected=160.0, rel_tol=0.05),
    ),
    note="regression references for the reproduction's own extensions",
))
