"""Perf scorecard: benchmark registry, paper-fidelity scoring, gate.

The pipeline every figure/table reproduction flows through:

* :mod:`repro.perf.registry` — the benchmark registry (specs, producers);
* :mod:`repro.perf.suites` — the registered producers (fig2..table3 and
  the extension benches), imported lazily on first enumeration;
* :mod:`repro.perf.schema` — versioned payload schema + validation;
* :mod:`repro.perf.reference` — the machine-readable paper-reference
  table (digitised series and anchors with tolerances);
* :mod:`repro.perf.scoring` — divergence scoring (relative error,
  shape checks, the scalar fidelity in [0, 1]);
* :mod:`repro.perf.runner` — artifact writers and the manifest;
* :mod:`repro.perf.gate` — the regression gate vs bench-baseline.json;
* :mod:`repro.perf.cli` — ``python -m repro bench``.

See ``docs/PERF.md`` for the artifact formats and workflows.
"""

from repro.perf.registry import BenchResult, BenchSpec, all_specs, bench, get_spec
from repro.perf.reference import REFERENCE, get_reference
from repro.perf.schema import SCHEMA_VERSION, SchemaError, validate_figure_payload
from repro.perf.scoring import DivergenceScore, score_result

__all__ = [
    "BenchResult",
    "BenchSpec",
    "DivergenceScore",
    "REFERENCE",
    "SCHEMA_VERSION",
    "SchemaError",
    "all_specs",
    "bench",
    "get_reference",
    "get_spec",
    "score_result",
    "validate_figure_payload",
]
