"""Wall-clock microbenchmarks: scalar reference vs vectorized data plane.

The perf scorecard (``runner.py``) measures *simulated* fidelity — its
committed artifacts are deterministic and carry no timing.  This module
measures the other axis: how fast the reproduction itself runs.  Each
microbenchmark times the pre-vectorization per-packet formulation
(:mod:`repro.apps.scalar_ref`) against the structure-of-arrays fast path
on identical inputs, so future PRs can see wall-clock regressions in
``bench-history.jsonl`` (git-ignored: timings are per-machine).

Invoked as ``python -m repro bench --wallclock``.  Methodology:
interleaved best-of-``repeat`` timing of a loop over pre-built chunks
(see :func:`_best_of_pair`); setup and frame construction are excluded
from the timed region.  Both formulations mutate TTLs in place, so
iteration counts stay well below the generator's initial TTL.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.apps import scalar_ref
from repro.apps.ipv4 import IPv4Forwarder
from repro.core.chunk import Chunk
from repro.gen.packetgen import PacketGenerator
from repro.lookup.dir24_8 import Dir24_8
from repro.net.checksum import checksum16, checksum16_batch
from repro.perf import runner, schema

#: Chunk sizes the classification benchmark sweeps (the acceptance
#: criterion targets >= 5x at 64+).
CHUNK_SIZES = (64, 256)
#: Chunks per timed loop and best-of repetitions.  Best-of-N with a
#: generous N: each timed region is well under a millisecond, so the
#: extra repetitions are cheap and the minimum shrugs off transient
#: scheduler/GC contention that can poison a whole 5-sample window.
CHUNKS_PER_RUN = 16
REPEAT = 9


def _best_of_pair(
    scalar_fn: Callable[[], None],
    vector_fn: Callable[[], None],
    repeat: int = REPEAT,
) -> Tuple[float, float]:
    """Interleaved best-of timing of the two formulations.

    Timing all scalar repetitions and then all vector repetitions lets
    a burst of background load poison one side's entire sample window
    and skew the speedup either way.  Alternating the samples means
    time-varying contention lands on adjacent samples of *both*
    formulations, and the per-side minimum only needs one quiet window
    each.  One untimed warmup of each side precedes the timed samples
    so first-touch costs (allocator warmup, lazy numpy dispatch setup,
    cache population) don't land on the first ones.
    """
    scalar_fn()
    vector_fn()
    scalar_best = vector_best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        scalar_fn()
        scalar_best = min(scalar_best, time.perf_counter() - start)
        start = time.perf_counter()
        vector_fn()
        vector_best = min(vector_best, time.perf_counter() - start)
    return scalar_best, vector_best


def _ipv4_chunks(chunk_size: int, seed: int = 20100830) -> List[Chunk]:
    generator = PacketGenerator(seed=seed)
    return [
        Chunk(frames=generator.ipv4_burst(chunk_size))
        for _ in range(CHUNKS_PER_RUN)
    ]


def bench_ipv4_classify(chunk_size: int) -> Dict[str, object]:
    """Scalar vs vectorized IPv4 classification (the tentpole number)."""
    app = IPv4Forwarder(table=Dir24_8())
    scalar_chunks = _ipv4_chunks(chunk_size)
    vector_chunks = _ipv4_chunks(chunk_size)
    reasons = dict(app.slow_path_reasons)

    def run_scalar() -> None:
        for chunk in scalar_chunks:
            scalar_ref.classify_ipv4_scalar(chunk, frozenset(), True, reasons)

    def run_vector() -> None:
        for chunk in vector_chunks:
            app._classify(chunk)

    scalar_s, vector_s = _best_of_pair(run_scalar, run_vector)
    packets = chunk_size * CHUNKS_PER_RUN
    return {
        "bench": "ipv4_classify",
        "chunk_size": chunk_size,
        "packets": packets,
        "scalar_us_per_packet": round(scalar_s / packets * 1e6, 4),
        "vector_us_per_packet": round(vector_s / packets * 1e6, 4),
        "speedup": round(scalar_s / vector_s, 2),
    }


def bench_checksum(regions: int = 256, length: int = 20) -> Dict[str, object]:
    """Per-header scalar checksum loop vs one batched column sum."""
    rng = np.random.default_rng(1624)
    buf = rng.integers(0, 256, size=regions * length, dtype=np.uint8)
    offsets = np.arange(regions, dtype=np.int64) * length
    lengths = np.full(regions, length, dtype=np.int64)
    view = memoryview(bytes(buf))

    def run_scalar() -> None:
        for offset in offsets.tolist():
            checksum16(view[offset:offset + length])

    def run_vector() -> None:
        checksum16_batch(buf, offsets, lengths)

    scalar_s, vector_s = _best_of_pair(run_scalar, run_vector)
    return {
        "bench": "checksum16",
        "regions": regions,
        "region_bytes": length,
        "scalar_us_per_region": round(scalar_s / regions * 1e6, 4),
        "vector_us_per_region": round(vector_s / regions * 1e6, 4),
        "speedup": round(scalar_s / vector_s, 2),
    }


def bench_egress_distribution(
    chunk_size: int = 256, ports: int = 4
) -> Dict[str, object]:
    """Per-packet egress append loop vs the argsort-grouped split."""
    generator = PacketGenerator(seed=5306)
    chunk = Chunk(frames=generator.ipv4_burst(chunk_size))
    rng = np.random.default_rng(5306)
    out_ports = rng.integers(0, ports, size=chunk_size)
    forwarded = rng.random(chunk_size) < 0.9
    chunk.set_forward(np.flatnonzero(forwarded), out_ports[forwarded])
    chunk.set_drop(np.flatnonzero(~forwarded))
    loops = 32

    def run_scalar() -> None:
        for _ in range(loops):
            scalar_ref.split_by_port_scalar(chunk)

    def run_vector() -> None:
        for _ in range(loops):
            chunk.split_by_port()

    scalar_s, vector_s = _best_of_pair(run_scalar, run_vector)
    packets = chunk_size * loops
    return {
        "bench": "egress_distribution",
        "chunk_size": chunk_size,
        "scalar_us_per_packet": round(scalar_s / packets * 1e6, 4),
        "vector_us_per_packet": round(vector_s / packets * 1e6, 4),
        "speedup": round(scalar_s / vector_s, 2),
    }


def run_scaling_wallclock(
    worker_counts: Tuple[int, ...] = (1, 2),
    app: str = "ipv4",
    packets: int = 1024,
    bursts: int = 4,
) -> List[Dict[str, object]]:
    """Measured wall-clock of the sharded plane vs worker count.

    The committed ``BENCH_scaling.json`` curve is the capacity model
    (deterministic, host-independent); this is the real thing — fork N
    workers, push the same stream through shared-memory chunk queues,
    time the whole run.  Speedup here depends on how many cores the
    host has, which is exactly why it goes to the git-ignored history
    and never into a committed artifact.
    """
    from repro.shard.plane import PlaneSpec, run_plane

    results: List[Dict[str, object]] = []
    base_s: float = 0.0
    for workers in worker_counts:
        spec = PlaneSpec(app=app, workers=workers, packets=packets,
                         bursts=bursts, num_routes=2048)
        start = time.perf_counter()
        report = run_plane(spec)
        elapsed = time.perf_counter() - start
        if not base_s:
            base_s = elapsed
        results.append({
            "bench": "plane_scaling",
            "app": app,
            "workers": workers,
            "packets": packets * bursts,
            "wall_s": round(elapsed, 4),
            "kpps": round(packets * bursts / elapsed / 1e3, 2),
            "speedup": round(base_s / elapsed, 2),
            "conservation_ok": report.conservation_ok,
            "shm_fallbacks": report.shm_fallbacks,
        })
    return results


def run_wallclock() -> List[Dict[str, object]]:
    """Every microbenchmark, scalar-before-vs-vectorized-after."""
    results: List[Dict[str, object]] = []
    for chunk_size in CHUNK_SIZES:
        results.append(bench_ipv4_classify(chunk_size))
    results.append(bench_checksum())
    results.append(bench_egress_distribution())
    return results


def append_wallclock_history(
    results: List[Dict[str, object]], root=runner.REPO_ROOT
):
    """One ``kind=wallclock`` line in the git-ignored trajectory."""
    line = {
        "schema_version": schema.SCHEMA_VERSION,
        "kind": "wallclock",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "results": results,
    }
    path = root / runner.HISTORY_NAME
    with path.open("a") as fh:
        fh.write(json.dumps(line, sort_keys=True) + "\n")
    return path


def format_scaling(results: List[Dict[str, object]]) -> str:
    header = (
        f"{'bench':<16} {'app':<6} {'workers':>7} {'wall':>9} "
        f"{'kpps':>9} {'speedup':>8}"
    )
    lines = [header, "-" * len(header)]
    for entry in results:
        lines.append(
            f"{entry['bench']:<16} {entry['app']:<6} "
            f"{entry['workers']:>7} {entry['wall_s']:>8.3f}s "
            f"{entry['kpps']:>9.1f} {entry['speedup']:>7.2f}x"
        )
    return "\n".join(lines)


def format_wallclock(results: List[Dict[str, object]]) -> str:
    header = f"{'bench':<22} {'size':>5} {'scalar':>10} {'vector':>10} {'speedup':>8}"
    lines = [header, "-" * len(header)]
    for entry in results:
        size = entry.get("chunk_size", entry.get("regions", "-"))
        scalar = entry.get(
            "scalar_us_per_packet", entry.get("scalar_us_per_region")
        )
        vector = entry.get(
            "vector_us_per_packet", entry.get("vector_us_per_region")
        )
        lines.append(
            f"{entry['bench']:<22} {size:>5} {scalar:>9.3f}u {vector:>9.3f}u "
            f"{entry['speedup']:>7.1f}x"
        )
    return "\n".join(lines)
