"""The benchmark runner: registry -> payloads -> artifacts -> scorecard.

One pipeline for every figure/table reproduction:

* :func:`run_figure` executes one registered producer, scores it against
  the paper-reference table, and assembles the schema-validated payload;
* :func:`run` sweeps the registry (optionally filtered), writes the
  per-figure ``BENCH_<figure>.json`` artifacts, and aggregates the
  ``BENCH_manifest.json`` scorecard;
* :func:`append_history` appends one line to the git-ignored
  ``bench-history.jsonl`` trajectory.

Committed artifacts (per-figure JSONs, the manifest, the baseline) are
deterministic — the models are analytic and the simulators seeded, so a
re-run on an unchanged tree is a byte-identical git diff.  Wall-clock
data therefore lives *only* in the history file.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs import get_registry, names
from repro.perf import schema
from repro.perf.registry import BenchSpec, all_specs, get_spec
from repro.perf.reference import get_reference
from repro.perf.scoring import score_result

#: Repository root: ``src/repro/perf/runner.py`` -> three levels up.
REPO_ROOT = Path(__file__).resolve().parents[3]

MANIFEST_NAME = "BENCH_manifest.json"
BASELINE_NAME = "bench-baseline.json"
HISTORY_NAME = "bench-history.jsonl"


def _rounded(value, digits: int = 6):
    """Round floats recursively so artifacts stay readable and stable."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return round(value, digits)
    if isinstance(value, dict):
        return {k: _rounded(v, digits) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_rounded(v, digits) for v in value]
    return value


def run_figure(spec: BenchSpec, quick: bool = False) -> Dict[str, object]:
    """Produce, score, and package one benchmark as a validated payload."""
    registry = get_registry()
    result = spec.produce(quick)
    registry.counter(names.BENCH_FIGURES).inc()
    registry.counter(names.BENCH_SERIES_POINTS).inc(len(result.series))

    divergence: Optional[Dict[str, object]] = None
    if get_reference(spec.figure) is not None:
        score = score_result(spec.figure, result, spec.x_key)
        divergence = score.to_dict()
        registry.gauge(names.BENCH_FIDELITY, figure=spec.figure).set(
            score.fidelity
        )

    return schema.figure_payload(
        figure=spec.figure,
        kind=spec.kind,
        title=spec.title,
        x_key=spec.x_key,
        mode="quick" if quick else "full",
        units=dict(spec.units),
        series=_rounded(result.series),
        headline=_rounded(result.headline),
        bottleneck=result.bottleneck,
        divergence=divergence,
    )


def build_manifest(payloads: List[Dict[str, object]]) -> Dict[str, object]:
    """Aggregate per-figure payloads into the scorecard manifest."""
    figures: Dict[str, Dict[str, object]] = {}
    fidelities: List[float] = []
    reference_points = 0
    out_of_tol: List[str] = []
    for payload in payloads:
        divergence = payload.get("divergence") or {}
        entry: Dict[str, object] = {
            "kind": payload["kind"],
            "title": payload["title"],
            "mode": payload["mode"],
            "bottleneck": payload["bottleneck"],
            "series_rows": len(payload["series"]),
            "headline": payload["headline"],
        }
        if divergence:
            entry["fidelity"] = divergence["fidelity"]
            entry["mean_rel_error"] = divergence["mean_rel_error"]
            entry["within_tol"] = divergence["within_tol"]
            entry["shape_ok"] = divergence["shape_ok"]
            entry["reference_points"] = divergence["points"]
            entry["source"] = divergence["source"]
            fidelities.append(float(divergence["fidelity"]))
            reference_points += int(divergence["points"])
            if not divergence["within_tol"]:
                out_of_tol.append(str(payload["figure"]))
        figures[str(payload["figure"])] = entry

    summary = {
        "figures": len(figures),
        "scored": len(fidelities),
        "reference_points": reference_points,
        "mean_fidelity": round(sum(fidelities) / len(fidelities), 4)
        if fidelities else None,
        "min_fidelity": round(min(fidelities), 4) if fidelities else None,
        "out_of_tolerance": sorted(out_of_tol),
    }
    return {
        "schema_version": schema.SCHEMA_VERSION,
        "figures": {k: figures[k] for k in sorted(figures)},
        "summary": summary,
    }


def write_figure(payload: Dict[str, object], root: Path = REPO_ROOT) -> Path:
    path = root / f"BENCH_{payload['figure']}.json"
    path.write_text(schema.dump(payload))
    return path


def write_manifest(manifest: Dict[str, object], root: Path = REPO_ROOT) -> Path:
    path = root / MANIFEST_NAME
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def append_history(
    manifest: Dict[str, object],
    elapsed_s: float,
    root: Path = REPO_ROOT,
) -> Path:
    """Append one run to the trajectory.  The only wall-clock artifact."""
    line = {
        "schema_version": schema.SCHEMA_VERSION,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "elapsed_s": round(elapsed_s, 3),
        "summary": manifest["summary"],
        "fidelity": {
            figure: entry.get("fidelity")
            for figure, entry in manifest["figures"].items()
        },
    }
    path = root / HISTORY_NAME
    with path.open("a") as fh:
        fh.write(json.dumps(line, sort_keys=True) + "\n")
    return path


def run(
    figures: Optional[List[str]] = None,
    quick: bool = False,
    root: Path = REPO_ROOT,
    write: bool = True,
) -> Dict[str, object]:
    """Run the suite and return the manifest.

    ``figures=None`` runs every registered benchmark; a filtered run
    still writes its per-figure artifacts but neither the manifest nor
    the history line, so the committed scorecard always reflects the
    full suite.
    """
    registry = get_registry()
    registry.counter(names.BENCH_RUNS).inc()
    started = time.monotonic()

    specs = all_specs() if figures is None else [get_spec(f) for f in figures]
    payloads = []
    for spec in specs:
        payloads.append(run_figure(spec, quick=quick))
        if write:
            write_figure(payloads[-1], root)

    manifest = build_manifest(payloads)
    elapsed = time.monotonic() - started
    registry.gauge(names.BENCH_RUN_SECONDS).set(elapsed)
    if write and figures is None:
        write_manifest(manifest, root)
        append_history(manifest, elapsed, root)
    return manifest
