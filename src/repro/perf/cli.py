"""``python -m repro bench`` — run the scorecard, check the gate.

Exit codes: 0 clean, 1 gate failure (regression / fidelity drift),
2 usage error (unknown figure, missing baseline, filtered gate run).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.perf import gate, runner
from repro.perf.registry import figure_ids


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Run the figure/table reproduction benchmarks through "
        "the schema'd pipeline and score them against the paper.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="shrink workloads/horizons for CI (models are unchanged)",
    )
    parser.add_argument(
        "--figure", action="append", metavar="FIG",
        help="run only this figure (repeatable); skips manifest/history",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the manifest as JSON instead of the table",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against bench-baseline.json; exit 1 on regression",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="accept this run: rewrite bench-baseline.json from it",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="compute only; write no artifacts",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered benchmarks"
    )
    parser.add_argument(
        "--wallclock", action="store_true",
        help="run the scalar-vs-vectorized wall-clock microbenchmarks "
        "and append to the git-ignored bench-history.jsonl (simulated "
        "artifacts are untouched)",
    )
    parser.add_argument(
        "--workers", type=int, action="append", metavar="N",
        help="with --wallclock: time the real sharded plane at this "
        "worker count instead (repeatable, e.g. --workers 1 --workers 4); "
        "measured scaling is host-dependent and goes to history only",
    )
    return parser


def _print_scorecard(manifest: dict) -> None:
    header = f"{'figure':<12} {'kind':<10} {'fidelity':>8} {'tol':>4}  bottleneck"
    print(header)
    print("-" * len(header))
    for figure, entry in manifest["figures"].items():
        fidelity = entry.get("fidelity")
        fidelity_s = f"{fidelity:.3f}" if fidelity is not None else "-"
        tol = "ok" if entry.get("within_tol", True) else "OUT"
        print(
            f"{figure:<12} {entry['kind']:<10} {fidelity_s:>8} {tol:>4}  "
            f"{entry['bottleneck']}"
        )
    summary = manifest["summary"]
    print("-" * len(header))
    print(
        f"{summary['figures']} benchmarks, {summary['scored']} scored, "
        f"{summary['reference_points']} reference points, "
        f"mean fidelity {summary['mean_fidelity']}, "
        f"min {summary['min_fidelity']}"
    )
    if summary["out_of_tolerance"]:
        print(f"out of tolerance: {', '.join(summary['out_of_tolerance'])}")


def bench_main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list:
        for figure in figure_ids():
            print(figure)
        return 0

    if args.workers and not args.wallclock:
        print("--workers only applies with --wallclock", file=sys.stderr)
        return 2

    if args.wallclock:
        from repro.perf import wallclock

        if args.workers:
            counts = tuple(sorted(set(args.workers)))
            if any(count < 1 for count in counts):
                print("--workers must be >= 1", file=sys.stderr)
                return 2
            results = wallclock.run_scaling_wallclock(counts)
            print(wallclock.format_scaling(results))
        else:
            results = wallclock.run_wallclock()
            print(wallclock.format_wallclock(results))
        if not args.no_write:
            path = wallclock.append_wallclock_history(results)
            print(f"history appended: {path}")
        return 0

    if args.figure:
        unknown = sorted(set(args.figure) - set(figure_ids()))
        if unknown:
            print(
                f"unknown figure(s): {', '.join(unknown)} "
                f"(choose from {', '.join(figure_ids())})",
                file=sys.stderr,
            )
            return 2
        if args.check or args.update_baseline:
            print(
                "--check/--update-baseline need the full suite; "
                "drop --figure",
                file=sys.stderr,
            )
            return 2

    manifest = runner.run(
        figures=args.figure,
        quick=args.quick,
        write=not args.no_write,
    )

    if args.update_baseline:
        path = gate.write_baseline(
            manifest, runner.REPO_ROOT / runner.BASELINE_NAME
        )
        print(f"baseline updated: {path}")

    if args.json:
        print(json.dumps(manifest, indent=2, sort_keys=True))
    else:
        _print_scorecard(manifest)

    if args.check:
        baseline = gate.load_baseline(runner.REPO_ROOT / runner.BASELINE_NAME)
        if baseline is None:
            print(
                "no bench-baseline.json — accept a run first with "
                "--update-baseline",
                file=sys.stderr,
            )
            return 2
        report = gate.check(manifest, baseline)
        for note in report.notes:
            print(f"note: {note}")
        if not report.ok:
            for failure in report.failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            print(
                f"bench gate: {len(report.failures)} failure(s)",
                file=sys.stderr,
            )
            return 1
        print("bench gate: ok")

    return 0
