"""The regression gate: fresh scorecard vs the committed baseline.

``bench-baseline.json`` pins, per figure, the headline scalars and the
fidelity score of an accepted run.  :func:`check` compares a freshly
built manifest against it and reports:

* **headline drift** — a metric moved more than its tolerance away from
  the pinned value.  Direction matters only for the message: a move in
  the harmful direction is a *regression*, a move in the good direction
  an *improvement* — but both fail the gate, because on a deterministic
  model either means the code changed and the baseline must be
  re-accepted deliberately (``--update-baseline``), never silently;
* **fidelity drift** — a figure's paper-fidelity score fell more than
  ``FIDELITY_DRIFT`` below the accepted score;
* **missing figures** — present in the baseline, absent from the run.

Figures new since the baseline are reported as notes, not failures, so
adding a bench doesn't break CI before the baseline catches up.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs import get_registry, names
from repro.perf import schema

#: Default relative tolerance for a pinned headline metric.
DEFAULT_REL_TOL = 0.05
#: Allowed drop in a figure's fidelity score before the gate trips.
FIDELITY_DRIFT = 0.02
#: Denominator floor so near-zero pinned values compare absolutely.
ABS_FLOOR = 1e-9

#: Headline-name fragments meaning "smaller is the good direction".
_LOWER_IS_BETTER = (
    "latency", "_us", "_ns", "cycles", "penalty", "cost", "usd",
    "missing", "power",
)


@dataclass
class GateReport:
    """The gate's verdict: failures trip CI, notes don't."""

    failures: List[str]
    notes: List[str]

    @property
    def ok(self) -> bool:
        return not self.failures


def lower_is_better(metric: str) -> bool:
    name = metric.lower()
    return any(fragment in name for fragment in _LOWER_IS_BETTER)


def baseline_from_manifest(manifest: Dict[str, object]) -> Dict[str, object]:
    """Distil a manifest into the committed baseline document."""
    figures: Dict[str, Dict[str, object]] = {}
    for figure, entry in manifest["figures"].items():
        figures[figure] = {
            "headline": dict(entry["headline"]),
            "fidelity": entry.get("fidelity"),
            "bottleneck": entry["bottleneck"],
            "mode": entry["mode"],
        }
    return {
        "schema_version": schema.SCHEMA_VERSION,
        "rel_tol": DEFAULT_REL_TOL,
        "figures": {k: figures[k] for k in sorted(figures)},
    }


def write_baseline(manifest: Dict[str, object], path: Path) -> Path:
    baseline = baseline_from_manifest(manifest)
    path.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: Path) -> Optional[Dict[str, object]]:
    if not path.exists():
        return None
    baseline = json.loads(path.read_text())
    if baseline.get("schema_version") != schema.SCHEMA_VERSION:
        raise schema.SchemaError([
            f"baseline schema_version {baseline.get('schema_version')!r} "
            f"!= {schema.SCHEMA_VERSION} — regenerate with --update-baseline"
        ])
    return baseline


def _drift(measured: float, pinned: float) -> float:
    return (measured - pinned) / max(abs(pinned), ABS_FLOOR)


def check(
    manifest: Dict[str, object], baseline: Dict[str, object]
) -> GateReport:
    """Compare a fresh manifest against the committed baseline."""
    failures: List[str] = []
    notes: List[str] = []
    rel_tol = float(baseline.get("rel_tol", DEFAULT_REL_TOL))
    fresh = manifest["figures"]

    for figure, pinned in sorted(baseline["figures"].items()):
        entry = fresh.get(figure)
        if entry is None:
            failures.append(f"{figure}: in baseline but missing from run")
            continue
        if entry["mode"] != pinned.get("mode"):
            failures.append(
                f"{figure}: run mode {entry['mode']!r} != baseline mode "
                f"{pinned.get('mode')!r} (rerun with the matching --quick "
                f"flag or --update-baseline)"
            )
            continue

        for metric, pinned_value in sorted(pinned["headline"].items()):
            value = entry["headline"].get(metric)
            if value is None:
                failures.append(f"{figure}.{metric}: pinned metric missing")
                continue
            drift = _drift(float(value), float(pinned_value))
            if abs(drift) <= rel_tol:
                continue
            harmful = drift < 0 if not lower_is_better(metric) else drift > 0
            label = "regression" if harmful else "improvement"
            failures.append(
                f"{figure}.{metric}: {label} {drift:+.1%} "
                f"({pinned_value} -> {value}, tol ±{rel_tol:.0%})"
            )

        pinned_fidelity = pinned.get("fidelity")
        fidelity = entry.get("fidelity")
        if pinned_fidelity is not None:
            if fidelity is None:
                failures.append(f"{figure}: fidelity score disappeared")
            elif float(fidelity) < float(pinned_fidelity) - FIDELITY_DRIFT:
                failures.append(
                    f"{figure}: fidelity fell {pinned_fidelity} -> "
                    f"{fidelity} (allowed drift {FIDELITY_DRIFT})"
                )

        if entry["bottleneck"] != pinned.get("bottleneck"):
            notes.append(
                f"{figure}: bottleneck verdict moved "
                f"{pinned.get('bottleneck')!r} -> {entry['bottleneck']!r}"
            )

    for figure in sorted(set(fresh) - set(baseline["figures"])):
        notes.append(f"{figure}: new benchmark, not in baseline yet")

    registry = get_registry()
    registry.counter(names.BENCH_REGRESSIONS).inc(len(failures))
    return GateReport(failures=failures, notes=notes)
