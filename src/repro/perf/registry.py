"""The benchmark registry: every figure/table reproduction, one pipeline.

A :class:`BenchSpec` names one paper figure or table (or one of the
reproduction's extension benches), how to produce its series, and how
the payload is labelled.  Producers are plain callables taking a
``quick`` flag — ``quick=True`` shrinks workload sizes and simulation
horizons for CI without changing any calibrated model, so headline
numbers agree between modes within the gate's tolerances.

The registry is what both consumers enumerate:

* ``python -m repro bench`` (:mod:`repro.perf.runner`) runs every spec
  through the schema'd emission pipeline;
* the pytest benchmarks (``benchmarks/test_*.py``) call the same
  producers through a thin adapter, assert the paper anchors, and emit
  the same JSON artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional


@dataclass
class BenchResult:
    """What a producer computes: series rows plus the derived verdicts.

    ``series`` rows are dicts keyed by column name; ``headline`` holds
    the scalar metrics the regression gate tracks; ``bottleneck`` is the
    analyzer's verdict for the figure (capacity-view where a pipeline
    report exists, data-derived otherwise).
    """

    series: List[Dict[str, object]]
    headline: Dict[str, float]
    bottleneck: str
    notes: str = ""


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark: identity, labelling, and the producer."""

    figure: str
    title: str
    kind: str  # "figure" | "table" | "extension"
    x_key: str
    units: Mapping[str, str] = field(default_factory=dict)
    produce: Callable[[bool], BenchResult] = None  # type: ignore[assignment]


_SPECS: Dict[str, BenchSpec] = {}


def register(spec: BenchSpec) -> BenchSpec:
    if spec.figure in _SPECS:
        raise ValueError(f"benchmark {spec.figure!r} registered twice")
    if spec.produce is None:
        raise ValueError(f"benchmark {spec.figure!r} has no producer")
    _SPECS[spec.figure] = spec
    return spec


def bench(
    figure: str,
    title: str,
    kind: str = "figure",
    x_key: str = "",
    units: Optional[Mapping[str, str]] = None,
) -> Callable:
    """Decorator form: ``@bench("fig6", "…", x_key="frame_len")``."""

    def wrap(fn: Callable[[bool], BenchResult]) -> Callable[[bool], BenchResult]:
        register(
            BenchSpec(
                figure=figure,
                title=title,
                kind=kind,
                x_key=x_key,
                units=dict(units or {}),
                produce=fn,
            )
        )
        return fn

    return wrap


def _ensure_suites_loaded() -> None:
    # The suites module registers specs on import; imported lazily so
    # ``repro.perf.registry`` itself stays import-cycle free.
    from repro.perf import suites  # noqa: F401


def all_specs() -> List[BenchSpec]:
    """Every registered spec, in stable (figure id) order."""
    _ensure_suites_loaded()
    return [_SPECS[figure] for figure in sorted(_SPECS)]


def figure_ids() -> List[str]:
    _ensure_suites_loaded()
    return sorted(_SPECS)


def get_spec(figure: str) -> BenchSpec:
    _ensure_suites_loaded()
    try:
        return _SPECS[figure]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {figure!r} (choose from {', '.join(sorted(_SPECS))})"
        ) from None
