"""The IPsec gateway application (paper Section 6.2.4).

ESP tunnel mode with AES-128-CTR and HMAC-SHA1.  The GPU kernel performs
the ciphering at two granularities, as the paper describes: AES at the
finest level ("we chop packets into AES blocks (16B) and map each block
to one GPU thread") and SHA-1 at the packet level (its block chain is
serial).  The CPU side — in both modes — assembles the ESP
encapsulation; in CPU-only mode it also runs the (SSE-modelled) ciphers.

Throughput accounting uses *input* bytes, as the paper does ("we take
input throughput as a metric rather than output throughput" since ESP
grows packets).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.calib.constants import APPS, GPU_KERNELS
from repro.core.application import GPUWorkItem, RouterApplication
from repro.core.chunk import Chunk
from repro.crypto.esp import (
    PROTO_ESP,
    SecurityAssociation,
    esp_decapsulate,
    esp_encapsulate,
)
from repro.crypto.sha1 import sha1_block_count
from repro.hw.gpu import KernelSpec
from repro.net.ethernet import ETHERNET_HEADER_LEN, ETHERTYPE_IPV4


class IPsecGateway(RouterApplication):
    """An ESP tunnel gateway: every IPv4 packet is encrypted outbound."""

    name = "ipsec"
    #: The paper selectively enables concurrent copy & execution (CUDA
    #: streams) for IPsec, the one payload-heavy application.
    use_streams = True
    #: Whole payloads stream over PCIe in both directions; such bulk DMA
    #: displaces NIC DMA on the shared IOH nearly byte-for-byte, unlike
    #: the small gathered address arrays of the lookup applications.
    #: Fitted to Figure 11(d): 20 Gbps input at 1514 B.
    gpu_displacement_override = 0.50

    def __init__(self, sa: SecurityAssociation, out_port: int = 0) -> None:
        self.sa = sa
        self.out_port = out_port

    # ------------------------------------------------------------------
    # Functional path.
    # ------------------------------------------------------------------

    def _encrypt_batch(self, inners: List[Optional[bytes]]) -> List[Optional[bytes]]:
        """The GPU kernel body: ESP-encapsulate each inner packet.

        AES-CTR inside ``esp_encapsulate`` is numpy-vectorised across the
        packet's blocks — the block-per-thread parallelism — while the
        per-packet loop is the packet-level SHA-1 parallelism.
        """
        out: List[Optional[bytes]] = []
        for inner in inners:
            out.append(None if inner is None else esp_encapsulate(self.sa, inner))
        return out

    def _gather(self, chunk: Chunk) -> List[Optional[bytes]]:
        batch = chunk.batch()
        eligible = batch.long_enough(34) & (
            batch.ethertypes() == ETHERTYPE_IPV4
        )
        chunk.set_slow_path(~eligible)
        inners: List[Optional[bytes]] = [None] * len(chunk)
        frames = chunk.frames
        # Payload extraction stays per selected packet: each inner packet
        # becomes an independently-owned buffer for the cipher.
        for index in np.flatnonzero(eligible).tolist():
            inners[index] = bytes(frames[index][ETHERNET_HEADER_LEN:])
        return inners

    def _apply(self, chunk: Chunk, outers: List[Optional[bytes]]) -> None:
        for index in chunk.pending_indices():
            outer = outers[index]
            if outer is None:
                chunk.verdicts[index].drop()
                continue
            eth = bytes(chunk.frames[index][:ETHERNET_HEADER_LEN])
            chunk.replace_frame(index, bytearray(eth + outer))
            chunk.verdicts[index].forward_to(self.out_port)

    def pre_shade(self, chunk: Chunk) -> Optional[GPUWorkItem]:
        inners = self._gather(chunk)
        if not chunk.pending_indices():
            return None
        frame_len = chunk.max_frame_len()
        spec, threads_per_packet = self.kernel_cost(frame_len)
        spec = KernelSpec(
            name=spec.name,
            compute_cycles=spec.compute_cycles,
            stream_bytes=spec.stream_bytes,
            fn=self._encrypt_batch,
        )
        bytes_in, bytes_out = self.gpu_bytes_per_packet(frame_len)
        return GPUWorkItem(
            spec=spec,
            threads=max(1, int(len(chunk) * threads_per_packet)),
            bytes_in=int(bytes_in * len(chunk)),
            bytes_out=int(bytes_out * len(chunk)),
            args=(inners,),
        )

    def kernel_fn(self, name: str):
        if name == "ipsec_aes_sha1":
            return self._encrypt_batch
        return None

    def post_shade(self, chunk: Chunk, gpu_output) -> None:
        if gpu_output is None:
            return
        self._apply(chunk, gpu_output)

    def cpu_process(self, chunk: Chunk) -> None:
        inners = self._gather(chunk)
        if chunk.pending_indices():
            self._apply(chunk, self._encrypt_batch(inners))

    # ------------------------------------------------------------------
    # Cost helpers.
    # ------------------------------------------------------------------

    @staticmethod
    def _crypto_bytes(frame_len: int) -> int:
        """Bytes AES-CTR covers: the inner IP packet plus ESP expansion."""
        inner = max(frame_len - ETHERNET_HEADER_LEN, 20)
        return inner + APPS.esp_expansion_bytes

    def _auth_bytes(self, frame_len: int) -> int:
        """Bytes HMAC covers: ESP header + IV + ciphertext."""
        return self._crypto_bytes(frame_len) + 16

    def cpu_cycles_per_packet(self, frame_len: int) -> float:
        crypto = self._crypto_bytes(frame_len)
        auth = self._auth_bytes(frame_len) + APPS.hmac_extra_bytes
        return (
            APPS.esp_fixed_cycles
            + crypto * APPS.aes_sse_cycles_per_byte
            + auth * APPS.sha1_cycles_per_byte
        )

    def worker_cycles_per_packet(self, frame_len: int) -> float:
        # Staging the payload to/from the GPU buffers plus ESP assembly.
        copies = 2.0 * self._crypto_bytes(frame_len) * APPS.copy_cycles_per_byte
        return APPS.ipsec_gpu_worker_fixed_cycles + copies

    def kernel_cost(self, frame_len: int) -> Tuple[KernelSpec, float]:
        blocks = math.ceil(self._crypto_bytes(frame_len) / 16)
        sha_blocks = sha1_block_count(self._auth_bytes(frame_len)) + 2
        # One thread per AES block; the packet-level SHA-1 cost is folded
        # in per block (both kernels are issue-bound, so per-SM cycles
        # scale identically whether folded or launched separately).
        compute = (
            GPU_KERNELS.aes_block_cycles
            + (sha_blocks * GPU_KERNELS.sha1_block_cycles
               + GPU_KERNELS.ipsec_fixed_cycles) / blocks
        )
        spec = KernelSpec(
            name="ipsec_aes_sha1",
            compute_cycles=compute,
            stream_bytes=32.0,  # each block thread streams 16 B in + out
        )
        return spec, float(blocks)

    def gpu_bytes_per_packet(self, frame_len: int) -> Tuple[float, float]:
        crypto = self._crypto_bytes(frame_len)
        # h2d: payload + keys/IV/metadata; d2h: ciphertext + ICV.
        return crypto + 52.0, crypto + 12.0


class IPsecDecapGateway(RouterApplication):
    """The receiving end of the tunnel: authenticate, decrypt, forward.

    The paper evaluates the encryption direction; a deployed gateway
    needs both.  Decapsulation shares the cipher cost structure (the
    same bytes flow through AES-CTR and HMAC), so the cost hooks mirror
    :class:`IPsecGateway`; the verdicts differ — failed ICVs and
    replays are *drops*, counted per reason like a real SAD would.
    """

    name = "ipsec-decap"
    use_streams = True
    gpu_displacement_override = IPsecGateway.gpu_displacement_override

    def __init__(self, sa: SecurityAssociation, out_port: int = 0,
                 check_replay: bool = True) -> None:
        self.sa = sa
        self.out_port = out_port
        self.check_replay = check_replay
        self.drop_reasons = {"bad-icv": 0, "replay": 0, "malformed": 0,
                             "bad-spi": 0}

    # -- functional ------------------------------------------------------

    def _decrypt_batch(self, outers: List[Optional[bytes]]):
        results = []
        for outer in outers:
            if outer is None:
                results.append((None, "not-esp"))
                continue
            results.append(
                esp_decapsulate(self.sa, outer, check_replay=self.check_replay)
            )
        return results

    def _gather(self, chunk: Chunk) -> List[Optional[bytes]]:
        batch = chunk.batch()
        is_esp = (
            batch.long_enough(34)
            & (batch.ethertypes() == ETHERTYPE_IPV4)
            & (batch.byte_at(ETHERNET_HEADER_LEN + 9) == PROTO_ESP)
        )
        chunk.set_slow_path(~is_esp)
        outers: List[Optional[bytes]] = [None] * len(chunk)
        frames = chunk.frames
        for index in np.flatnonzero(is_esp).tolist():
            outers[index] = bytes(frames[index][ETHERNET_HEADER_LEN:])
        return outers

    def _apply(self, chunk: Chunk, results) -> None:
        for index in chunk.pending_indices():
            inner, status = results[index]
            if status != "ok" or inner is None:
                chunk.verdicts[index].drop()
                if status in self.drop_reasons:
                    self.drop_reasons[status] += 1
                continue
            eth = bytes(chunk.frames[index][:ETHERNET_HEADER_LEN])
            chunk.replace_frame(index, bytearray(eth + inner))
            chunk.verdicts[index].forward_to(self.out_port)

    def pre_shade(self, chunk: Chunk) -> Optional[GPUWorkItem]:
        outers = self._gather(chunk)
        if not chunk.pending_indices():
            return None
        frame_len = chunk.max_frame_len()
        spec, threads_per_packet = self.kernel_cost(frame_len)
        spec = KernelSpec(
            name=spec.name,
            compute_cycles=spec.compute_cycles,
            stream_bytes=spec.stream_bytes,
            fn=self._decrypt_batch,
        )
        bytes_in, bytes_out = self.gpu_bytes_per_packet(frame_len)
        return GPUWorkItem(
            spec=spec,
            threads=max(1, int(len(chunk) * threads_per_packet)),
            bytes_in=int(bytes_in * len(chunk)),
            bytes_out=int(bytes_out * len(chunk)),
            args=(outers,),
        )

    def kernel_fn(self, name: str):
        if name == "ipsec_decap_aes_sha1":
            return self._decrypt_batch
        return None

    def post_shade(self, chunk: Chunk, gpu_output) -> None:
        if gpu_output is None:
            return
        self._apply(chunk, gpu_output)

    def cpu_process(self, chunk: Chunk) -> None:
        outers = self._gather(chunk)
        if chunk.pending_indices():
            self._apply(chunk, self._decrypt_batch(outers))

    # -- cost hooks: the cipher work mirrors the encap direction ---------

    def cpu_cycles_per_packet(self, frame_len: int) -> float:
        return IPsecGateway.cpu_cycles_per_packet(self, frame_len)

    def worker_cycles_per_packet(self, frame_len: int) -> float:
        return IPsecGateway.worker_cycles_per_packet(self, frame_len)

    def kernel_cost(self, frame_len: int) -> Tuple[KernelSpec, float]:
        spec, threads = IPsecGateway.kernel_cost(self, frame_len)
        spec = KernelSpec(
            name="ipsec_decap_aes_sha1",
            compute_cycles=spec.compute_cycles,
            stream_bytes=spec.stream_bytes,
        )
        return spec, threads

    def gpu_bytes_per_packet(self, frame_len: int) -> Tuple[float, float]:
        bytes_in, bytes_out = IPsecGateway.gpu_bytes_per_packet(self, frame_len)
        return bytes_out, bytes_in  # the payload flows the other way

    # Borrow the byte-count helpers from the encap twin.
    _crypto_bytes = staticmethod(IPsecGateway._crypto_bytes)
    _auth_bytes = IPsecGateway._auth_bytes
