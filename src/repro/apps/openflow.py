"""The OpenFlow switch application (paper Section 6.2.3).

Division of labour, exactly as the paper describes: "we offload hash
value calculation and the wildcard matching to GPU, while leaving others
in CPU for load distribution".  The pre-shader extracts ten-field keys;
the GPU kernel computes the key hashes and scans the wildcard table; the
post-shader does the exact-match probe with the precomputed hash, picks
exact-over-wildcard, applies actions, and queues misses for the
controller.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.calib.constants import APPS, GPU_KERNELS
from repro.core.application import GPUWorkItem, RouterApplication
from repro.core.chunk import Chunk
from repro.hw.gpu import KernelSpec
from repro.openflow.actions import PORT_CONTROLLER, apply_actions
from repro.openflow.flowkey import FlowKey, extract_flow_key
from repro.openflow.flowtable import WildcardEntry, fnv1a_hash
from repro.openflow.switch import OpenFlowSwitch


class OpenFlowApp(RouterApplication):
    """An OpenFlow 0.8.9 switch on the PacketShader framework."""

    name = "openflow"

    def __init__(self, switch: OpenFlowSwitch) -> None:
        self.switch = switch

    # ------------------------------------------------------------------
    # Functional path.
    # ------------------------------------------------------------------

    def _gpu_classify(
        self, keys: List[Optional[FlowKey]]
    ) -> List[Optional[Tuple[int, Optional[WildcardEntry]]]]:
        """The GPU kernel body: per-key hash + wildcard linear search.

        Both halves are data-parallel over packets, which is why the
        paper offloads exactly these.  Returns (hash, wildcard entry or
        None) per key.
        """
        results: List[Optional[Tuple[int, Optional[WildcardEntry]]]] = []
        for key in keys:
            if key is None:
                results.append(None)
                continue
            key_hash = fnv1a_hash(key.pack())
            entry, _ = self.switch.wildcard.lookup(key)
            results.append((key_hash, entry))
        return results

    def _extract_keys(self, chunk: Chunk) -> List[Optional[FlowKey]]:
        batch = chunk.batch()
        parseable = batch.long_enough(14)
        chunk.set_drop(~parseable)
        keys: List[Optional[FlowKey]] = [None] * len(chunk)
        frames = chunk.frames
        in_port = chunk.in_port
        # The ten-field parse builds a FlowKey object per packet; only
        # the length screen above is batch-level.
        for index in np.flatnonzero(parseable).tolist():
            keys[index] = extract_flow_key(bytes(frames[index]), in_port)
        return keys

    def _apply(self, chunk: Chunk, keys, classifications) -> None:
        """Post-shading: exact probe, precedence, actions."""
        for index in chunk.pending_indices():
            key = keys[index]
            result = classifications[index]
            if key is None or result is None:
                chunk.verdicts[index].drop()
                continue
            key_hash, wildcard_entry = result
            frame = chunk.frames[index]
            actions, _ = self.switch.exact.lookup(
                key, key_hash, frame_len=len(frame)
            )
            if actions is not None:
                self.switch.counters.exact_hits += 1
            elif wildcard_entry is not None:
                self.switch.counters.wildcard_hits += 1
                wildcard_entry.stats.count(len(frame))
                actions = wildcard_entry.actions
            else:
                self.switch.counters.misses += 1
                self.switch.controller_queue.append((key, bytes(frame)))
                chunk.verdicts[index].slow_path()
                continue
            _, outputs = apply_actions(frame, actions)
            if outputs and outputs[0] != PORT_CONTROLLER:
                chunk.verdicts[index].forward_to(outputs[0])
            elif outputs:
                self.switch.controller_queue.append((key, bytes(frame)))
                chunk.verdicts[index].slow_path()
            else:
                chunk.verdicts[index].drop()

    def pre_shade(self, chunk: Chunk) -> Optional[GPUWorkItem]:
        keys = self._extract_keys(chunk)
        chunk.app_state = keys  # stashed for post-shading
        if not chunk.pending_indices():
            return None
        spec, _ = self.kernel_cost(64)
        spec = KernelSpec(
            name=spec.name,
            compute_cycles=spec.compute_cycles,
            mem_accesses=spec.mem_accesses,
            fn=self._gpu_classify,
        )
        work = GPUWorkItem(
            spec=spec,
            threads=len(chunk),
            bytes_in=31 * len(chunk),  # packed ten-field keys
            bytes_out=8 * len(chunk),  # hash + wildcard result index
            args=(keys,),
        )
        return work

    def kernel_fn(self, name: str):
        if name == "openflow_hash_wildcard":
            return self._gpu_classify
        return None

    def post_shade(self, chunk: Chunk, gpu_output) -> None:
        if gpu_output is None:
            return
        self._apply(chunk, chunk.app_state, gpu_output)

    def cpu_process(self, chunk: Chunk) -> None:
        keys = self._extract_keys(chunk)
        if chunk.pending_indices():
            self._apply(chunk, keys, self._gpu_classify(keys))

    # ------------------------------------------------------------------
    # Cost hooks.
    # ------------------------------------------------------------------

    def cpu_cycles_per_packet(self, frame_len: int) -> float:
        return (
            APPS.of_extract_cycles
            + APPS.of_hash_cycles
            + APPS.of_exact_probe_cpu_cycles
            + len(self.switch.wildcard) * APPS.of_wildcard_entry_cycles
            + APPS.of_action_cycles
        )

    def worker_cycles_per_packet(self, frame_len: int) -> float:
        return (
            APPS.of_extract_cycles
            + APPS.of_exact_probe_gpu_mode_cycles
            + APPS.of_action_cycles
        )

    def kernel_cost(self, frame_len: int) -> Tuple[KernelSpec, float]:
        spec = KernelSpec(
            name="openflow_hash_wildcard",
            compute_cycles=(
                GPU_KERNELS.of_compute_cycles
                + len(self.switch.wildcard)
                * GPU_KERNELS.of_wildcard_entry_cycles
            ),
            mem_accesses=GPU_KERNELS.of_mem_accesses,
        )
        return spec, 1.0

    def gpu_bytes_per_packet(self, frame_len: int) -> Tuple[float, float]:
        return 31.0, 8.0
