"""IPv4 forwarding (paper Section 6.2.1).

Pre-shading: fetch a chunk, divert slow-path packets (destined to local,
malformed, TTL expired, bad checksum) to the Linux stack, update TTL and
checksum on the rest, and gather destination addresses into an array.
Shading: the DIR-24-8 lookup over the gathered addresses (a vectorised
numpy gather — the same two-level table walk the CUDA kernel performs).
Post-shading: distribute packets to ports by next hop.

The FIB-update hook (:meth:`IPv4Forwarder.swap_table`) implements the
double-buffering update the paper sketches in Section 7: a new table is
built off to the side and swapped in atomically between chunks.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

import numpy as np

from repro.calib.constants import APPS, GPU_KERNELS
from repro.core.application import GPUWorkItem, RouterApplication
from repro.core.chunk import Chunk
from repro.hw.gpu import KernelSpec
from repro.lookup.dir24_8 import Dir24_8, NO_ROUTE
from repro.net.ethernet import ETHERNET_HEADER_LEN, ETHERTYPE_IPV4
from repro.net.checksum import verify_checksum16
from repro.net.ipv4 import IPV4_HEADER_LEN, decrement_ttl, extract_dst
from repro.net.neighbors import NeighborTable


class IPv4Forwarder(RouterApplication):
    """The IPv4 application over a DIR-24-8 table."""

    name = "ipv4"

    def __init__(
        self,
        table: Dir24_8,
        local_addresses: Optional[Set[int]] = None,
        verify_checksums: bool = True,
        neighbors: Optional[NeighborTable] = None,
    ) -> None:
        self.table = table
        self.local_addresses = local_addresses or set()
        self.verify_checksums = verify_checksums
        #: Optional next-hop table; when set, post-shading rewrites the
        #: Ethernet header (next-hop MAC in, egress-port MAC out) and
        #: unresolved next hops divert to the slow path for ARP.
        self.neighbors = neighbors
        self.slow_path_reasons = {
            "non-ip": 0,
            "malformed": 0,
            "ttl-expired": 0,
            "bad-checksum": 0,
            "local": 0,
        }

    # ------------------------------------------------------------------
    # FIB update (Section 7: incremental update / double buffering).
    # ------------------------------------------------------------------

    def swap_table(self, new_table: Dir24_8) -> Dir24_8:
        """Atomically install a new FIB; returns the old one.

        Chunks in flight finish against the table they started with (the
        work item captures the table reference), so the data path never
        observes a half-updated FIB.
        """
        old, self.table = self.table, new_table
        return old

    # ------------------------------------------------------------------
    # Classification (the slow-path logic of Section 6.2.1).
    # ------------------------------------------------------------------

    def _classify(self, chunk: Chunk) -> np.ndarray:
        """Set DROP/SLOW_PATH verdicts; returns gathered destinations.

        Returns a uint32 array with one slot per packet; non-pending
        packets hold zero (their lookup result is ignored).
        """
        dsts = np.zeros(len(chunk), dtype=np.uint32)
        for index, (frame, verdict) in enumerate(zip(chunk.frames, chunk.verdicts)):
            l3 = ETHERNET_HEADER_LEN
            if len(frame) < l3 + IPV4_HEADER_LEN:
                verdict.drop()
                self.slow_path_reasons["malformed"] += 1
                continue
            ethertype = (frame[12] << 8) | frame[13]
            if ethertype != ETHERTYPE_IPV4:
                verdict.slow_path()
                self.slow_path_reasons["non-ip"] += 1
                continue
            if frame[l3] != 0x45:  # version 4, no options
                verdict.drop()
                self.slow_path_reasons["malformed"] += 1
                continue
            if self.verify_checksums and not verify_checksum16(
                bytes(frame[l3:l3 + IPV4_HEADER_LEN])
            ):
                verdict.drop()
                self.slow_path_reasons["bad-checksum"] += 1
                continue
            dst = extract_dst(frame, l3)
            if dst in self.local_addresses:
                verdict.slow_path()
                self.slow_path_reasons["local"] += 1
                continue
            if not decrement_ttl(frame, l3):
                verdict.slow_path()
                self.slow_path_reasons["ttl-expired"] += 1
                continue
            dsts[index] = dst
        return dsts

    def _apply_next_hops(self, chunk: Chunk, next_hops: np.ndarray) -> None:
        for index in chunk.pending_indices():
            next_hop = int(next_hops[index])
            if next_hop == NO_ROUTE:
                chunk.verdicts[index].drop()
            elif self.neighbors is None:
                chunk.verdicts[index].forward_to(next_hop)
            else:
                port = self.neighbors.rewrite(chunk.frames[index], next_hop)
                if port is None:
                    chunk.verdicts[index].slow_path()  # awaiting ARP
                else:
                    chunk.verdicts[index].forward_to(port)

    # ------------------------------------------------------------------
    # The three callbacks.
    # ------------------------------------------------------------------

    def pre_shade(self, chunk: Chunk) -> Optional[GPUWorkItem]:
        dsts = self._classify(chunk)
        if not chunk.pending_indices():
            return None
        table = self.table  # captured: FIB swaps don't affect in-flight work
        spec = KernelSpec(
            name="ipv4_dir24_8",
            compute_cycles=GPU_KERNELS.ipv4_compute_cycles,
            mem_accesses=GPU_KERNELS.ipv4_mem_accesses,
            fn=lambda addrs=dsts: table.lookup_batch(addrs),
        )
        return GPUWorkItem(
            spec=spec,
            threads=len(chunk),
            bytes_in=4 * len(chunk),
            bytes_out=4 * len(chunk),
        )

    def post_shade(self, chunk: Chunk, gpu_output) -> None:
        if gpu_output is None:
            return
        self._apply_next_hops(chunk, gpu_output)

    def cpu_process(self, chunk: Chunk) -> None:
        dsts = self._classify(chunk)
        if chunk.pending_indices():
            self._apply_next_hops(chunk, self.table.lookup_batch(dsts))

    # ------------------------------------------------------------------
    # Cost hooks (calibration notes in repro.calib.constants.AppCosts).
    # ------------------------------------------------------------------

    def cpu_cycles_per_packet(self, frame_len: int) -> float:
        accesses = 1.0 + 0.03  # 3% of RouteViews prefixes are longer than /24
        return (
            APPS.fast_path_header_cycles
            + accesses * APPS.ipv4_cpu_lookup_cycles
            + APPS.routing_decision_cycles
        )

    def worker_cycles_per_packet(self, frame_len: int) -> float:
        return APPS.fast_path_header_cycles

    def kernel_cost(self, frame_len: int) -> Tuple[KernelSpec, float]:
        spec = KernelSpec(
            name="ipv4_dir24_8",
            compute_cycles=GPU_KERNELS.ipv4_compute_cycles,
            mem_accesses=GPU_KERNELS.ipv4_mem_accesses,
        )
        return spec, 1.0

    def gpu_bytes_per_packet(self, frame_len: int) -> Tuple[float, float]:
        return 4.0, 4.0
