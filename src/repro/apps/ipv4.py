"""IPv4 forwarding (paper Section 6.2.1).

Pre-shading: fetch a chunk, divert slow-path packets (destined to local,
malformed, TTL expired, bad checksum) to the Linux stack, update TTL and
checksum on the rest, and gather destination addresses into an array.
Shading: the DIR-24-8 lookup over the gathered addresses (a vectorised
numpy gather — the same two-level table walk the CUDA kernel performs).
Post-shading: distribute packets to ports by next hop.

The FIB-update hook (:meth:`IPv4Forwarder.swap_table`) implements the
double-buffering update the paper sketches in Section 7: a new table is
built off to the side and swapped in atomically between chunks.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

import numpy as np

from repro.calib.constants import APPS, GPU_KERNELS
from repro.core.application import GPUWorkItem, RouterApplication
from repro.core.chunk import Chunk
from repro.hw.gpu import KernelSpec
from repro.lookup.dir24_8 import Dir24_8, NO_ROUTE
from repro.net.ethernet import ETHERNET_HEADER_LEN, ETHERTYPE_IPV4
from repro.net.ipv4 import IPV4_HEADER_LEN
from repro.net.neighbors import NeighborTable


class IPv4Forwarder(RouterApplication):
    """The IPv4 application over a DIR-24-8 table."""

    name = "ipv4"

    def __init__(
        self,
        table: Dir24_8,
        local_addresses: Optional[Set[int]] = None,
        verify_checksums: bool = True,
        neighbors: Optional[NeighborTable] = None,
    ) -> None:
        self.table = table
        self.local_addresses = local_addresses or set()
        self.verify_checksums = verify_checksums
        #: Optional next-hop table; when set, post-shading rewrites the
        #: Ethernet header (next-hop MAC in, egress-port MAC out) and
        #: unresolved next hops divert to the slow path for ARP.
        self.neighbors = neighbors
        self.slow_path_reasons = {
            "non-ip": 0,
            "malformed": 0,
            "ttl-expired": 0,
            "bad-checksum": 0,
            "local": 0,
        }

    # ------------------------------------------------------------------
    # FIB update (Section 7: incremental update / double buffering).
    # ------------------------------------------------------------------

    def swap_table(self, new_table: Dir24_8) -> Dir24_8:
        """Atomically install a new FIB; returns the old one.

        Chunks in flight finish against the table they started with (the
        work item captures the table reference), so the data path never
        observes a half-updated FIB.
        """
        old, self.table = self.table, new_table
        return old

    # ------------------------------------------------------------------
    # Classification (the slow-path logic of Section 6.2.1).
    # ------------------------------------------------------------------

    def _classify(self, chunk: Chunk) -> Tuple[np.ndarray, np.ndarray]:
        """Set DROP/SLOW_PATH verdicts; returns ``(dsts, pending)``.

        ``dsts`` is a uint32 array with one slot per packet (non-pending
        packets hold zero; their lookup result is ignored) and
        ``pending`` the boolean mask of packets awaiting the lookup —
        computed once here and reused by the callbacks instead of
        re-walking the chunk.

        The whole classification runs as masked column operations over a
        :class:`FrameBatch` — precedence matches the scalar reference in
        :mod:`repro.apps.scalar_ref` exactly: too short → drop
        (malformed); wrong ethertype → slow path (non-ip); not version
        4 / with options → drop (malformed); bad header checksum → drop;
        local destination → slow path; TTL expired → slow path; the rest
        get the TTL decrement + RFC 1624 checksum patch and their
        destination gathered.
        """
        reasons = self.slow_path_reasons
        l3 = ETHERNET_HEADER_LEN
        batch = chunk.batch()
        #: Tracks whether any packet failed a screen yet: while True,
        #: ``ok`` is known all-True and the masked gathers can be
        #: skipped (the all-pass case is the fast-path common case).
        all_ok = True

        if batch.grid is not None and batch.grid.shape[1] >= l3 + IPV4_HEADER_LEN:
            ok = np.ones(len(chunk), dtype=bool)  # uniform, wide enough
        else:
            ok = batch.long_enough(l3 + IPV4_HEADER_LEN)
            short = ~ok
            if short.any():
                chunk.set_drop(short)
                reasons["malformed"] += int(np.count_nonzero(short))
                all_ok = False

        non_ip = ok & ~batch.ethertype_is(ETHERTYPE_IPV4)
        if non_ip.any():
            chunk.set_slow_path(non_ip)
            reasons["non-ip"] += int(np.count_nonzero(non_ip))
            ok &= ~non_ip
            all_ok = False

        bad_version = ok & (batch.byte_at(l3) != 0x45)  # version 4, no options
        if bad_version.any():
            chunk.set_drop(bad_version)
            reasons["malformed"] += int(np.count_nonzero(bad_version))
            ok &= ~bad_version
            all_ok = False

        if self.verify_checksums and (all_ok or ok.any()):
            verified = batch.ipv4_checksum_ok(ok)
            bad = ok & ~verified
            if bad.any():
                chunk.set_drop(bad)
                reasons["bad-checksum"] += int(np.count_nonzero(bad))
                ok = verified
                all_ok = False

        addresses = batch.ipv4_dsts()
        if self.local_addresses:
            local = ok & np.isin(
                addresses,
                np.fromiter(
                    self.local_addresses,
                    dtype=np.uint32,
                    count=len(self.local_addresses),
                ),
            )
            if local.any():
                chunk.set_slow_path(local)
                reasons["local"] += int(np.count_nonzero(local))
                ok &= ~local
                all_ok = False

        expired = ok & (batch.byte_at(l3 + 8) <= 1)
        if expired.any():
            chunk.set_slow_path(expired)
            reasons["ttl-expired"] += int(np.count_nonzero(expired))
            ok &= ~expired
            all_ok = False

        batch.ipv4_decrement_ttl(ok, chunk.frames)
        if all_ok:
            dsts = addresses
        else:
            dsts = np.zeros(len(chunk), dtype=np.uint32)
            dsts[ok] = addresses[ok]
        return dsts, chunk.pending_mask() & ok

    def _apply_next_hops(
        self,
        chunk: Chunk,
        next_hops: np.ndarray,
        pending: Optional[np.ndarray] = None,
    ) -> None:
        mask = chunk.pending_mask() if pending is None else pending
        if not mask.any():
            return
        hops = np.asarray(next_hops)
        no_route = mask & (hops == NO_ROUTE)
        chunk.set_drop(no_route)
        routed = np.flatnonzero(mask & ~no_route)
        if self.neighbors is None:
            chunk.set_forward(routed, hops[routed])
            return
        frames = chunk.frames
        verdicts = chunk.verdicts
        for index in routed.tolist():
            port = self.neighbors.rewrite(frames[index], int(hops[index]))
            if port is None:
                verdicts[index].slow_path()  # awaiting ARP
            else:
                verdicts[index].forward_to(port)

    # ------------------------------------------------------------------
    # The three callbacks.
    # ------------------------------------------------------------------

    def pre_shade(self, chunk: Chunk) -> Optional[GPUWorkItem]:
        dsts, pending = self._classify(chunk)
        if not pending.any():
            return None
        chunk.app_state = pending  # reused by post_shade
        table = self.table  # captured: FIB swaps don't affect in-flight work
        spec = KernelSpec(
            name="ipv4_dir24_8",
            compute_cycles=GPU_KERNELS.ipv4_compute_cycles,
            mem_accesses=GPU_KERNELS.ipv4_mem_accesses,
            fn=table.lookup_batch,
        )
        # The gathered addresses ride in ``args`` — the H2D copy — so
        # the work item can cross a process boundary with the callable
        # stripped (rebound from kernel_fn on the master's side).
        return GPUWorkItem(
            spec=spec,
            threads=len(chunk),
            bytes_in=4 * len(chunk),
            bytes_out=4 * len(chunk),
            args=(dsts,),
        )

    def kernel_fn(self, name: str):
        if name == "ipv4_dir24_8":
            return self.table.lookup_batch
        return None

    def post_shade(self, chunk: Chunk, gpu_output) -> None:
        if gpu_output is None:
            return
        pending = chunk.app_state
        if not (isinstance(pending, np.ndarray) and pending.dtype == bool):
            pending = None  # stale/foreign state: recompute from verdicts
        self._apply_next_hops(chunk, gpu_output, pending)

    def cpu_process(self, chunk: Chunk) -> None:
        dsts, pending = self._classify(chunk)
        if pending.any():
            self._apply_next_hops(chunk, self.table.lookup_batch(dsts), pending)

    # ------------------------------------------------------------------
    # Cost hooks (calibration notes in repro.calib.constants.AppCosts).
    # ------------------------------------------------------------------

    def cpu_cycles_per_packet(self, frame_len: int) -> float:
        accesses = 1.0 + 0.03  # 3% of RouteViews prefixes are longer than /24
        return (
            APPS.fast_path_header_cycles
            + accesses * APPS.ipv4_cpu_lookup_cycles
            + APPS.routing_decision_cycles
        )

    def worker_cycles_per_packet(self, frame_len: int) -> float:
        return APPS.fast_path_header_cycles

    def kernel_cost(self, frame_len: int) -> Tuple[KernelSpec, float]:
        spec = KernelSpec(
            name="ipv4_dir24_8",
            compute_cycles=GPU_KERNELS.ipv4_compute_cycles,
            mem_accesses=GPU_KERNELS.ipv4_mem_accesses,
        )
        return spec, 1.0

    def gpu_bytes_per_packet(self, frame_len: int) -> Tuple[float, float]:
        return 4.0, 4.0
