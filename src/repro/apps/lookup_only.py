"""The Section 2.3 motivating microbenchmark (Figure 2).

IPv6 forwarding-table lookup with CPU and GPU, "randomly generated IPv6
addresses", "does not involve actual packet I/O via NICs".  The CPU line
is flat in batch size (no per-batch cost); the GPU curve rises with the
level of parallelism, crossing one quad-core X5550 past ~320 addresses
and two past ~640, and saturating around an order of magnitude over one
CPU.
"""

from __future__ import annotations

from repro.calib.constants import APPS, CPU, GPU_KERNELS
from repro.hw.gpu import GPUDevice, KernelSpec

#: Per-address bytes moved for the lookup: 16 B address in, 4 B result out.
ADDR_BYTES_IN = 16
RESULT_BYTES_OUT = 4


def cpu_ipv6_lookup_rate_pps(num_cpus: int = 1) -> float:
    """Lookup-only rate of ``num_cpus`` quad-core X5550 sockets.

    Seven dependent probes per lookup (hash + table access each); all
    cores busy, so per-core rate is latency-bound and flat in batch size.
    """
    if num_cpus < 1:
        raise ValueError("need at least one CPU")
    cycles = APPS.ipv6_probes * APPS.ipv6_cpu_probe_cycles
    return num_cpus * CPU.cores * CPU.clock_hz / cycles


def ipv6_lookup_kernel_spec() -> KernelSpec:
    """The GPU kernel cost of one IPv6 lookup thread."""
    return KernelSpec(
        name="ipv6_bsearch",
        compute_cycles=GPU_KERNELS.ipv6_compute_cycles,
        mem_accesses=GPU_KERNELS.ipv6_mem_accesses,
    )


def gpu_ipv6_lookup_rate_pps(
    batch_size: int, device: GPUDevice = None
) -> float:
    """GPU lookup rate at a batch size: ``n / T(n)`` with back-to-back
    batches (copy in, launch, execute, copy out, synchronise)."""
    if batch_size < 1:
        raise ValueError("batch size must be >= 1")
    device = device or GPUDevice()
    spec = ipv6_lookup_kernel_spec()
    total_ns = (
        device.model.sync_overhead_ns
        + device.launch_latency_ns(batch_size)
        + device.pcie.h2d_time_ns(batch_size * ADDR_BYTES_IN)
        + device.execution_time_ns(spec, batch_size)
        + device.pcie.d2h_time_ns(batch_size * RESULT_BYTES_OUT)
    )
    return batch_size / total_ns * 1e9


def gpu_crossover_batch(num_cpus: int = 1, limit: int = 65536) -> int:
    """Smallest batch where the GPU overtakes ``num_cpus`` X5550s."""
    target = cpu_ipv6_lookup_rate_pps(num_cpus)
    batch = 1
    while batch <= limit:
        if gpu_ipv6_lookup_rate_pps(batch) >= target:
            return batch
        batch += max(1, batch // 16)
    raise RuntimeError(f"no crossover below {limit}")
