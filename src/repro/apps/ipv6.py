"""IPv6 forwarding (paper Section 6.2.2).

The memory-intensive showcase: the Waldvogel binary search needs seven
dependent probes per lookup, so CPU throughput is latency-bound while the
GPU hides the latency with thousands of threads.  The workflow mirrors
IPv4 "except that a wide IPv6 address causes four times more data to be
copied into the GPU memory" (16 B per destination instead of 4 B).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.calib.constants import APPS, GPU_KERNELS
from repro.core.application import GPUWorkItem, RouterApplication
from repro.core.chunk import Chunk
from repro.hw.gpu import KernelSpec
from repro.lookup.ipv6_bsearch import IPv6BinarySearch
from repro.net.ethernet import ETHERNET_HEADER_LEN, ETHERTYPE_IPV6
from repro.net.ipv6 import IPV6_HEADER_LEN, decrement_hop_limit, extract_dst
from repro.net.neighbors import NeighborTable


class IPv6Forwarder(RouterApplication):
    """The IPv6 application over the binary-search-on-lengths table."""

    name = "ipv6"

    def __init__(
        self,
        table: IPv6BinarySearch,
        local_addresses: Optional[Set[int]] = None,
        neighbors: Optional[NeighborTable] = None,
    ) -> None:
        self.table = table
        self.local_addresses = local_addresses or set()
        #: Optional next-hop table (see the IPv4 twin); unresolved hops
        #: divert to the slow path for neighbor discovery.
        self.neighbors = neighbors
        self.slow_path_reasons = {
            "non-ip": 0,
            "malformed": 0,
            "hop-limit": 0,
            "local": 0,
        }

    def swap_table(self, new_table: IPv6BinarySearch) -> IPv6BinarySearch:
        """Double-buffered FIB update (Section 7), as for IPv4."""
        old, self.table = self.table, new_table
        return old

    def _classify(self, chunk: Chunk) -> List[int]:
        """Verdicts for broken/local packets; gathered destinations."""
        dsts = [0] * len(chunk)
        for index, (frame, verdict) in enumerate(zip(chunk.frames, chunk.verdicts)):
            l3 = ETHERNET_HEADER_LEN
            if len(frame) < l3 + IPV6_HEADER_LEN:
                verdict.drop()
                self.slow_path_reasons["malformed"] += 1
                continue
            ethertype = (frame[12] << 8) | frame[13]
            if ethertype != ETHERTYPE_IPV6:
                verdict.slow_path()
                self.slow_path_reasons["non-ip"] += 1
                continue
            if frame[l3] >> 4 != 6:
                verdict.drop()
                self.slow_path_reasons["malformed"] += 1
                continue
            dst = extract_dst(frame, l3)
            if dst in self.local_addresses:
                verdict.slow_path()
                self.slow_path_reasons["local"] += 1
                continue
            if not decrement_hop_limit(frame, l3):
                verdict.slow_path()
                self.slow_path_reasons["hop-limit"] += 1
                continue
            dsts[index] = dst
        return dsts

    def _apply_next_hops(self, chunk: Chunk, next_hops: List[Optional[int]]) -> None:
        for index in chunk.pending_indices():
            next_hop = next_hops[index]
            if next_hop is None:
                chunk.verdicts[index].drop()
            elif self.neighbors is None:
                chunk.verdicts[index].forward_to(next_hop)
            else:
                port = self.neighbors.rewrite(chunk.frames[index], next_hop)
                if port is None:
                    chunk.verdicts[index].slow_path()  # awaiting ND
                else:
                    chunk.verdicts[index].forward_to(port)

    def pre_shade(self, chunk: Chunk) -> Optional[GPUWorkItem]:
        dsts = self._classify(chunk)
        if not chunk.pending_indices():
            return None
        table = self.table
        spec = KernelSpec(
            name="ipv6_bsearch",
            compute_cycles=GPU_KERNELS.ipv6_compute_cycles,
            mem_accesses=GPU_KERNELS.ipv6_mem_accesses,
            fn=lambda addrs=dsts: table.lookup_batch(addrs),
        )
        return GPUWorkItem(
            spec=spec,
            threads=len(chunk),
            bytes_in=16 * len(chunk),
            bytes_out=4 * len(chunk),
        )

    def post_shade(self, chunk: Chunk, gpu_output) -> None:
        if gpu_output is None:
            return
        self._apply_next_hops(chunk, gpu_output)

    def cpu_process(self, chunk: Chunk) -> None:
        dsts = self._classify(chunk)
        if chunk.pending_indices():
            self._apply_next_hops(chunk, self.table.lookup_batch(dsts))

    # ------------------------------------------------------------------
    # Cost hooks.
    # ------------------------------------------------------------------

    def cpu_cycles_per_packet(self, frame_len: int) -> float:
        return (
            APPS.fast_path_header_cycles
            + APPS.ipv6_probes * APPS.ipv6_cpu_probe_cycles
            + APPS.routing_decision_cycles
        )

    def worker_cycles_per_packet(self, frame_len: int) -> float:
        return APPS.fast_path_header_cycles + APPS.ipv6_gather_extra_cycles

    def kernel_cost(self, frame_len: int) -> Tuple[KernelSpec, float]:
        spec = KernelSpec(
            name="ipv6_bsearch",
            compute_cycles=GPU_KERNELS.ipv6_compute_cycles,
            mem_accesses=GPU_KERNELS.ipv6_mem_accesses,
        )
        return spec, 1.0

    def gpu_bytes_per_packet(self, frame_len: int) -> Tuple[float, float]:
        return 16.0, 4.0
