"""IPv6 forwarding (paper Section 6.2.2).

The memory-intensive showcase: the Waldvogel binary search needs seven
dependent probes per lookup, so CPU throughput is latency-bound while the
GPU hides the latency with thousands of threads.  The workflow mirrors
IPv4 "except that a wide IPv6 address causes four times more data to be
copied into the GPU memory" (16 B per destination instead of 4 B).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from repro.calib.constants import APPS, GPU_KERNELS
from repro.core.application import GPUWorkItem, RouterApplication
from repro.core.chunk import Chunk
from repro.hw.gpu import KernelSpec
from repro.lookup.ipv6_bsearch import IPv6BinarySearch
from repro.net.ethernet import ETHERNET_HEADER_LEN, ETHERTYPE_IPV6
from repro.net.ipv6 import IPV6_HEADER_LEN
from repro.net.neighbors import NeighborTable


class IPv6Forwarder(RouterApplication):
    """The IPv6 application over the binary-search-on-lengths table."""

    name = "ipv6"

    def __init__(
        self,
        table: IPv6BinarySearch,
        local_addresses: Optional[Set[int]] = None,
        neighbors: Optional[NeighborTable] = None,
    ) -> None:
        self.table = table
        self.local_addresses = local_addresses or set()
        #: Optional next-hop table (see the IPv4 twin); unresolved hops
        #: divert to the slow path for neighbor discovery.
        self.neighbors = neighbors
        self.slow_path_reasons = {
            "non-ip": 0,
            "malformed": 0,
            "hop-limit": 0,
            "local": 0,
        }

    def swap_table(self, new_table: IPv6BinarySearch) -> IPv6BinarySearch:
        """Double-buffered FIB update (Section 7), as for IPv4."""
        old, self.table = self.table, new_table
        return old

    def _classify(self, chunk: Chunk) -> Tuple[List[int], np.ndarray]:
        """Verdicts for broken/local packets; ``(dsts, pending)``.

        Masked column operations over a :class:`FrameBatch`, with the
        same precedence as the scalar reference
        (:mod:`repro.apps.scalar_ref`): too short → drop; wrong
        ethertype → slow path; wrong version → drop; local destination
        → slow path; hop limit expired → slow path; the rest get the
        hop-limit decrement and their 128-bit destination gathered.
        ``pending`` is the boolean lookup mask, computed once here and
        reused by the callbacks.
        """
        reasons = self.slow_path_reasons
        l3 = ETHERNET_HEADER_LEN
        batch = chunk.batch()
        dsts: List[int] = [0] * len(chunk)

        ok = batch.long_enough(l3 + IPV6_HEADER_LEN)
        short = ~ok
        if short.any():
            chunk.set_drop(short)
            reasons["malformed"] += int(np.count_nonzero(short))

        non_ip = ok & (batch.ethertypes() != ETHERTYPE_IPV6)
        if non_ip.any():
            chunk.set_slow_path(non_ip)
            reasons["non-ip"] += int(np.count_nonzero(non_ip))
            ok &= ~non_ip

        bad_version = ok & ((batch.byte_at(l3) >> 4) != 6)
        if bad_version.any():
            chunk.set_drop(bad_version)
            reasons["malformed"] += int(np.count_nonzero(bad_version))
            ok &= ~bad_version

        # 128-bit destinations exceed numpy's integer width, so the
        # gather is vectorized into hi/lo 64-bit folds and only the
        # candidate packets pay a per-address combine.
        candidates = np.flatnonzero(ok)
        addresses = batch.ipv6_dsts(candidates)
        if self.local_addresses:
            local = candidates[
                np.fromiter(
                    (address in self.local_addresses for address in addresses),
                    dtype=bool,
                    count=len(addresses),
                )
            ]
            if local.size:
                chunk.set_slow_path(local)
                reasons["local"] += int(local.size)
                ok[local] = False

        expired = ok & (batch.byte_at(l3 + 7) <= 1)
        if expired.any():
            chunk.set_slow_path(expired)
            reasons["hop-limit"] += int(np.count_nonzero(expired))
            ok &= ~expired

        batch.ipv6_decrement_hop_limit(np.flatnonzero(ok), chunk.frames)
        for index, address in zip(candidates.tolist(), addresses):
            if ok[index]:
                dsts[index] = address
        return dsts, chunk.pending_mask() & ok

    def _apply_next_hops(
        self,
        chunk: Chunk,
        next_hops: List[Optional[int]],
        pending: Optional[np.ndarray] = None,
    ) -> None:
        mask = chunk.pending_mask() if pending is None else pending
        verdicts = chunk.verdicts
        frames = chunk.frames
        neighbors = self.neighbors
        for index in np.flatnonzero(mask).tolist():
            next_hop = next_hops[index]
            if next_hop is None:
                verdicts[index].drop()
            elif neighbors is None:
                verdicts[index].forward_to(next_hop)
            else:
                port = neighbors.rewrite(frames[index], next_hop)
                if port is None:
                    verdicts[index].slow_path()  # awaiting ND
                else:
                    verdicts[index].forward_to(port)

    def pre_shade(self, chunk: Chunk) -> Optional[GPUWorkItem]:
        dsts, pending = self._classify(chunk)
        if not pending.any():
            return None
        chunk.app_state = pending  # reused by post_shade
        table = self.table
        spec = KernelSpec(
            name="ipv6_bsearch",
            compute_cycles=GPU_KERNELS.ipv6_compute_cycles,
            mem_accesses=GPU_KERNELS.ipv6_mem_accesses,
            fn=table.lookup_batch,
        )
        # Addresses in ``args``: the H2D copy, and the picklable wire
        # form of the work (the callable rebinds master-side).
        return GPUWorkItem(
            spec=spec,
            threads=len(chunk),
            bytes_in=16 * len(chunk),
            bytes_out=4 * len(chunk),
            args=(dsts,),
        )

    def kernel_fn(self, name: str):
        if name == "ipv6_bsearch":
            return self.table.lookup_batch
        return None

    def post_shade(self, chunk: Chunk, gpu_output) -> None:
        if gpu_output is None:
            return
        pending = chunk.app_state
        if not (isinstance(pending, np.ndarray) and pending.dtype == bool):
            pending = None  # stale/foreign state: recompute from verdicts
        self._apply_next_hops(chunk, gpu_output, pending)

    def cpu_process(self, chunk: Chunk) -> None:
        dsts, pending = self._classify(chunk)
        if pending.any():
            self._apply_next_hops(chunk, self.table.lookup_batch(dsts), pending)

    # ------------------------------------------------------------------
    # Cost hooks.
    # ------------------------------------------------------------------

    def cpu_cycles_per_packet(self, frame_len: int) -> float:
        return (
            APPS.fast_path_header_cycles
            + APPS.ipv6_probes * APPS.ipv6_cpu_probe_cycles
            + APPS.routing_decision_cycles
        )

    def worker_cycles_per_packet(self, frame_len: int) -> float:
        return APPS.fast_path_header_cycles + APPS.ipv6_gather_extra_cycles

    def kernel_cost(self, frame_len: int) -> Tuple[KernelSpec, float]:
        spec = KernelSpec(
            name="ipv6_bsearch",
            compute_cycles=GPU_KERNELS.ipv6_compute_cycles,
            mem_accesses=GPU_KERNELS.ipv6_mem_accesses,
        )
        return spec, 1.0

    def gpu_bytes_per_packet(self, frame_len: int) -> Tuple[float, float]:
        return 16.0, 4.0
