"""Scalar reference data plane: the packet-at-a-time formulation.

These are the pre-vectorization per-packet loops, kept verbatim as the
*reference semantics* for the structure-of-arrays fast path in
:mod:`repro.apps.ipv4` / :mod:`repro.apps.ipv6`:

- the differential tests fuzz malformed/valid frame mixes through both
  formulations and require identical verdicts, slow-path reason counts,
  and egress maps;
- the wall-clock microbenchmark (``python -m repro bench --wallclock``)
  times the scalar loop against the vectorized path to record the
  speedup.

The per-packet loops here are deliberate — this module IS the slow
formulation — hence the RL006 suppressions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.chunk import Chunk
from repro.lookup.dir24_8 import NO_ROUTE
from repro.net.checksum import verify_checksum16
from repro.net.ethernet import (
    ETHERNET_HEADER_LEN,
    ETHERTYPE_IPV4,
    ETHERTYPE_IPV6,
)
from repro.net.ipv4 import IPV4_HEADER_LEN, decrement_ttl, extract_dst
from repro.net.ipv6 import IPV6_HEADER_LEN, decrement_hop_limit
from repro.net.ipv6 import extract_dst as extract_dst_v6
from repro.net.neighbors import NeighborTable


def classify_ipv4_scalar(
    chunk: Chunk,
    local_addresses: frozenset,
    verify_checksums: bool,
    reasons: Dict[str, int],
) -> np.ndarray:
    """The original per-packet IPv4 classification loop."""
    dsts = np.zeros(len(chunk), dtype=np.uint32)
    for index, (frame, verdict) in enumerate(  # reprolint: ignore[RL006]
        zip(chunk.frames, chunk.verdicts)
    ):
        l3 = ETHERNET_HEADER_LEN
        if len(frame) < l3 + IPV4_HEADER_LEN:
            verdict.drop()
            reasons["malformed"] += 1
            continue
        ethertype = (frame[12] << 8) | frame[13]
        if ethertype != ETHERTYPE_IPV4:
            verdict.slow_path()
            reasons["non-ip"] += 1
            continue
        if frame[l3] != 0x45:  # version 4, no options
            verdict.drop()
            reasons["malformed"] += 1
            continue
        if verify_checksums and not verify_checksum16(
            bytes(frame[l3:l3 + IPV4_HEADER_LEN])
        ):
            verdict.drop()
            reasons["bad-checksum"] += 1
            continue
        dst = extract_dst(frame, l3)
        if dst in local_addresses:
            verdict.slow_path()
            reasons["local"] += 1
            continue
        if not decrement_ttl(frame, l3):
            verdict.slow_path()
            reasons["ttl-expired"] += 1
            continue
        dsts[index] = dst
    return dsts


def apply_next_hops_ipv4_scalar(
    chunk: Chunk,
    next_hops: np.ndarray,
    neighbors: Optional[NeighborTable] = None,
) -> None:
    """The original per-packet next-hop application loop."""
    for index in chunk.pending_indices():
        next_hop = int(next_hops[index])
        if next_hop == NO_ROUTE:
            chunk.verdicts[index].drop()
        elif neighbors is None:
            chunk.verdicts[index].forward_to(next_hop)
        else:
            port = neighbors.rewrite(chunk.frames[index], next_hop)
            if port is None:
                chunk.verdicts[index].slow_path()  # awaiting ARP
            else:
                chunk.verdicts[index].forward_to(port)


def classify_ipv6_scalar(
    chunk: Chunk,
    local_addresses: frozenset,
    reasons: Dict[str, int],
) -> List[int]:
    """The original per-packet IPv6 classification loop."""
    dsts = [0] * len(chunk)
    for index, (frame, verdict) in enumerate(  # reprolint: ignore[RL006]
        zip(chunk.frames, chunk.verdicts)
    ):
        l3 = ETHERNET_HEADER_LEN
        if len(frame) < l3 + IPV6_HEADER_LEN:
            verdict.drop()
            reasons["malformed"] += 1
            continue
        ethertype = (frame[12] << 8) | frame[13]
        if ethertype != ETHERTYPE_IPV6:
            verdict.slow_path()
            reasons["non-ip"] += 1
            continue
        if frame[l3] >> 4 != 6:
            verdict.drop()
            reasons["malformed"] += 1
            continue
        dst = extract_dst_v6(frame, l3)
        if dst in local_addresses:
            verdict.slow_path()
            reasons["local"] += 1
            continue
        if not decrement_hop_limit(frame, l3):
            verdict.slow_path()
            reasons["hop-limit"] += 1
            continue
        dsts[index] = dst
    return dsts


def split_by_port_scalar(chunk: Chunk) -> dict:
    """The original per-packet egress-distribution loop."""
    from repro.core.chunk import Disposition

    by_port: dict = {}
    for frame, verdict in zip(  # reprolint: ignore[RL006]
        chunk.frames, chunk.verdicts
    ):
        if verdict.disposition is Disposition.FORWARD:
            by_port.setdefault(verdict.out_port, []).append(frame)
    return by_port
