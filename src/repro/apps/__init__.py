"""The four evaluated applications (paper Section 6.2).

Each application implements the three-callback interface of
:class:`repro.core.application.RouterApplication` twice over:

* functionally — real frames in, real verdicts out, with the heavy work
  (lookup, hashing, crypto) executed by the "GPU kernel" (a numpy/Python
  function run through the GPU device model) in CPU+GPU mode, or inline
  in CPU-only mode; both modes produce bit-identical results;
* temporally — the cost hooks the solver turns into Figure 11's bars.

:mod:`repro.apps.lookup_only` is the Section 2.3 microbenchmark (IPv6
lookup without packet I/O — Figure 2).
"""

from repro.apps.ipv4 import IPv4Forwarder
from repro.apps.ipv6 import IPv6Forwarder
from repro.apps.openflow import OpenFlowApp
from repro.apps.ipsec import IPsecDecapGateway, IPsecGateway
from repro.apps.lookup_only import (
    cpu_ipv6_lookup_rate_pps,
    gpu_ipv6_lookup_rate_pps,
)

__all__ = [
    "IPsecDecapGateway",
    "IPsecGateway",
    "IPv4Forwarder",
    "IPv6Forwarder",
    "OpenFlowApp",
    "cpu_ipv6_lookup_rate_pps",
    "gpu_ipv6_lookup_rate_pps",
]
