"""Figure 11(c): OpenFlow switch throughput (64 B) versus table size.
Runs through the perf registry and emits ``BENCH_fig11c.json``."""

import pytest

from conftest import assert_within_tolerance, print_payload, series_by


def test_figure11c_openflow(benchmark, bench_payload):
    payload = benchmark.pedantic(
        lambda: bench_payload("fig11c"), rounds=1, iterations=1
    )
    print_payload(payload, ("config", "cpu_gbps", "gpu_gbps", "speedup"))
    by_config = series_by(payload)
    # Paper: 32 Gbps at the NetFPGA-comparison configuration (32K+32),
    # about eight NetFPGA cards (4 Gbps line rate each).
    assert by_config["32K+32"]["gpu_gbps"] == pytest.approx(32.0, rel=0.03)
    assert payload["headline"]["netfpga_equivalents"] == pytest.approx(
        8.0, rel=0.05
    )
    # "CPU+GPU mode outperforms CPU-only mode for all configurations."
    for row in payload["series"]:
        assert row["gpu_gbps"] > row["cpu_gbps"]
    # Wildcard growth devastates the CPU and barely dents the GPU.
    assert by_config["32K+512"]["cpu_gbps"] < by_config["32K+32"]["cpu_gbps"] / 3
    assert by_config["32K+512"]["gpu_gbps"] > by_config["32K+32"]["gpu_gbps"] * 0.9
    # Speedup grows with table size.
    assert by_config["32K+512"]["speedup"] > by_config["1K+32"]["speedup"] * 3
    assert_within_tolerance(payload)
