"""Figure 11(c): OpenFlow switch throughput (64 B) versus table size."""

import pytest

from conftest import print_table
from repro import app_throughput_report
from repro.apps.openflow import OpenFlowApp
from repro.gen.workloads import openflow_workload

#: (exact entries, wildcard entries) sweeps: exact growth with the small
#: wildcard table, then wildcard growth (the dominant effect the paper
#: calls out: "wildcard-match offload becomes dominant as the table size
#: grows").
CONFIGS = (
    (1 << 10, 32),
    (1 << 12, 32),
    (1 << 14, 32),
    (32 << 10, 32),
    (1 << 16, 32),
    (32 << 10, 128),
    (32 << 10, 512),
)


def reproduce_figure11c():
    rows = []
    for num_exact, num_wildcard in CONFIGS:
        # Exact-table size does not change the per-packet cost model
        # (hash tables are O(1)), so build small tables with the right
        # wildcard count for speed; the wildcard count is what matters.
        workload = openflow_workload(
            num_exact=min(num_exact, 2048), num_wildcard=num_wildcard
        )
        app = OpenFlowApp(workload.switch)
        cpu = app_throughput_report(app, 64, use_gpu=False)
        gpu = app_throughput_report(app, 64, use_gpu=True)
        rows.append(
            (f"{num_exact // 1024}K+{num_wildcard}", cpu.gbps, gpu.gbps,
             gpu.gbps / cpu.gbps)
        )
    return rows


def test_figure11c_openflow(benchmark):
    rows = benchmark.pedantic(reproduce_figure11c, rounds=1, iterations=1)
    print_table(
        "Figure 11(c): OpenFlow switch @64B (Gbps)",
        ("exact+wildcard", "CPU-only", "CPU+GPU", "speedup"),
        rows,
    )
    by_config = {row[0]: row for row in rows}
    # Paper: 32 Gbps at the NetFPGA-comparison configuration (32K+32),
    # about eight NetFPGA cards (4 Gbps line rate each).
    assert by_config["32K+32"][2] == pytest.approx(32.0, rel=0.03)
    assert by_config["32K+32"][2] / 4.0 == pytest.approx(8.0, rel=0.05)
    # "CPU+GPU mode outperforms CPU-only mode for all configurations."
    for row in rows:
        assert row[2] > row[1]
    # Wildcard growth devastates the CPU and barely dents the GPU.
    assert by_config["32K+512"][1] < by_config["32K+32"][1] / 3
    assert by_config["32K+512"][2] > by_config["32K+32"][2] * 0.9
    # Speedup grows with table size.
    assert by_config["32K+512"][3] > by_config["1K+32"][3] * 3
