"""Table 1: data transfer rate between host and device (MB/s), plus the
Section 2.2 kernel-launch latency microbenchmark."""

import pytest

from conftest import print_table
from repro.hw.gpu import GPUDevice
from repro.hw.pcie import PCIeLink

PAPER_TABLE_1 = {
    256: (55, 63),
    1024: (185, 211),
    4096: (759, 786),
    16384: (2069, 1743),
    65536: (4046, 2848),
    262144: (5142, 3242),
    1048576: (5577, 3394),
}


def reproduce_table1():
    link = PCIeLink()
    rows = []
    for size, (paper_h2d, paper_d2h) in sorted(PAPER_TABLE_1.items()):
        rows.append(
            (
                size,
                paper_h2d,
                link.h2d_rate_mbps(size),
                paper_d2h,
                link.d2h_rate_mbps(size),
            )
        )
    return rows


def test_table1_pcie_transfer_rates(benchmark):
    rows = benchmark(reproduce_table1)
    print_table(
        "Table 1: host<->device transfer rate (MB/s)",
        ("bytes", "paper h2d", "model h2d", "paper d2h", "model d2h"),
        rows,
    )
    for size, paper_h2d, model_h2d, paper_d2h, model_d2h in rows:
        assert model_h2d == pytest.approx(paper_h2d, rel=0.20)
        assert model_d2h == pytest.approx(paper_d2h, rel=0.20)
        assert model_d2h <= model_h2d * 1.25  # the dual-IOH asymmetry


def test_section22_kernel_launch_latency(benchmark):
    device = GPUDevice()
    rows = benchmark(
        lambda: [
            (n, device.launch_latency_ns(n) / 1000.0)
            for n in (1, 64, 512, 4096, 32768)
        ]
    )
    print_table(
        "Section 2.2: kernel launch latency (us)",
        ("threads", "latency us"),
        rows,
    )
    by_threads = dict(rows)
    assert by_threads[1] == pytest.approx(3.8, rel=0.01)
    assert by_threads[4096] == pytest.approx(4.1, rel=0.01)
