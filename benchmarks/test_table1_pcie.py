"""Table 1: data transfer rate between host and device (MB/s), plus the
Section 2.2 kernel-launch latency microbenchmark.  Runs through the
perf registry and emits ``BENCH_table1.json``."""

import pytest

from conftest import assert_within_tolerance, print_payload, series_by

PAPER_TABLE_1 = {
    256: (55, 63),
    1024: (185, 211),
    4096: (759, 786),
    16384: (2069, 1743),
    65536: (4046, 2848),
    262144: (5142, 3242),
    1048576: (5577, 3394),
}


def test_table1_pcie_transfer_rates(benchmark, bench_payload):
    payload = benchmark(lambda: bench_payload("table1"))
    print_payload(payload, ("bytes", "h2d_mbps", "d2h_mbps"))
    by_size = series_by(payload)
    for size, (paper_h2d, paper_d2h) in PAPER_TABLE_1.items():
        row = by_size[size]
        assert row["h2d_mbps"] == pytest.approx(paper_h2d, rel=0.20)
        assert row["d2h_mbps"] == pytest.approx(paper_d2h, rel=0.20)
        assert row["d2h_mbps"] <= row["h2d_mbps"] * 1.25  # dual-IOH asymmetry
    # The asymmetric peak is the d2h path (the Figure 12 return leg).
    assert payload["bottleneck"] == "d2h_path"
    assert_within_tolerance(payload)


def test_section22_kernel_launch_latency(benchmark, bench_payload):
    payload = benchmark(lambda: bench_payload("table1"))
    headline = payload["headline"]
    print(
        f"\nkernel launch: {headline['launch_us_1thread']:.1f} us (1 thread) "
        f"-> {headline['launch_us_4096threads']:.1f} us (4096 threads)"
    )
    assert headline["launch_us_1thread"] == pytest.approx(3.8, rel=0.01)
    assert headline["launch_us_4096threads"] == pytest.approx(4.1, rel=0.01)
