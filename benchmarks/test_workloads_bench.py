"""Adversarial workloads: goodput and p99 under flood, per scenario.

The overload-control acceptance bar (docs/RESILIENCE.md, "Overload
control"): under heavy-tail, SYN-flood, and spoofed-source DDoS traffic
the established goodput must not collapse, the windowed p99 must sit
inside the SLO budget (headroom > 1), the bounded flow table must churn
at its cap rather than grow past it, and every run's drop accounting
must close exactly.  Runs through the perf registry and emits
``BENCH_workloads.json``.
"""


from conftest import assert_within_tolerance, print_payload, series_by


def test_flood_workloads(benchmark, bench_payload):
    payload = benchmark.pedantic(
        lambda: bench_payload("workloads"), rounds=1, iterations=1
    )
    print_payload(
        payload,
        ("scenario", "goodput", "p99_us", "slo_headroom", "shed_share",
         "table_occupancy"),
    )
    rows = series_by(payload)
    for row in payload["series"]:
        assert row["conservation_ok"], (
            f"{row['scenario']}: drop accounting must close exactly"
        )
        assert row["goodput"] >= 0.9, (
            f"{row['scenario']}: goodput collapsed to {row['goodput']:.1%}"
        )
        assert row["slo_headroom"] > 1.0, (
            f"{row['scenario']}: p99 blew the SLO budget"
        )
    # The floods actually shed; the healthy mix does not.
    assert rows["heavy-tail"]["shed_share"] == 0.0
    assert rows["syn-flood"]["shed_share"] > 0.1
    assert rows["ddos"]["shed_share"] > 0.1
    # The ddos run drives the bounded table exactly to its cap.
    assert rows["ddos"]["table_occupancy"] == 1.0
    assert payload["headline"]["min_goodput"] >= 0.9
    assert_within_tolerance(payload)
