"""Figure 11(d): IPsec gateway throughput (input Gbps), CPU vs CPU+GPU.
Runs through the perf registry and emits ``BENCH_fig11d.json``."""

import pytest

from conftest import assert_within_tolerance, print_payload, series_by


def test_figure11d_ipsec(benchmark, bench_payload):
    payload = benchmark.pedantic(
        lambda: bench_payload("fig11d"), rounds=1, iterations=1
    )
    print_payload(payload, ("frame_len", "cpu_gbps", "gpu_gbps", "speedup"))
    by_size = series_by(payload)
    # Paper: 10.2 Gbps at 64B, 20.0 at 1514B with GPU; the CPU-only mode
    # improves "by a factor of 3.5, regardless of packet sizes".
    assert by_size[64]["gpu_gbps"] == pytest.approx(10.2, rel=0.10)
    assert 18.0 <= by_size[1514]["gpu_gbps"] <= 24.0
    # "by a factor of 3.5, regardless of packet sizes": the speedup
    # stays within a narrow band across the whole sweep.
    for row in payload["series"]:
        assert 3.0 <= row["speedup"] <= 5.2
    # Paper: 5x RouteBricks (1.9 Gbps at 64B, 6.1 at large).
    assert by_size[64]["gpu_gbps"] / 1.9 > 5.0
    assert by_size[1514]["gpu_gbps"] / 6.1 > 3.0
    # Throughput grows with frame size (per-packet costs amortise).
    gpu_series = [row["gpu_gbps"] for row in payload["series"]]
    assert gpu_series == sorted(gpu_series)
    assert_within_tolerance(payload)
