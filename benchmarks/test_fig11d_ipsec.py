"""Figure 11(d): IPsec gateway throughput (input Gbps), CPU vs CPU+GPU."""

import pytest

from conftest import print_table
from repro import app_throughput_report
from repro.apps.ipsec import IPsecGateway
from repro.gen.workloads import EVAL_FRAME_SIZES, ipsec_workload


def reproduce_figure11d():
    app = IPsecGateway(ipsec_workload().sa)
    rows = []
    for size in EVAL_FRAME_SIZES:
        cpu = app_throughput_report(app, size, use_gpu=False)
        gpu = app_throughput_report(app, size, use_gpu=True)
        rows.append((size, cpu.gbps, gpu.gbps, gpu.gbps / cpu.gbps))
    return rows


def test_figure11d_ipsec(benchmark):
    rows = benchmark.pedantic(reproduce_figure11d, rounds=1, iterations=1)
    print_table(
        "Figure 11(d): IPsec gateway, input throughput (Gbps)",
        ("frame B", "CPU-only", "CPU+GPU", "speedup"),
        rows,
    )
    by_size = {row[0]: row for row in rows}
    # Paper: 10.2 Gbps at 64B, 20.0 at 1514B with GPU; the CPU-only mode
    # improves "by a factor of 3.5, regardless of packet sizes".
    assert by_size[64][2] == pytest.approx(10.2, rel=0.10)
    assert 18.0 <= by_size[1514][2] <= 24.0
    # "by a factor of 3.5, regardless of packet sizes": the speedup
    # stays within a narrow band across the whole sweep.
    for size in EVAL_FRAME_SIZES:
        assert 3.0 <= by_size[size][3] <= 5.2
    # Paper: 5x RouteBricks (1.9 Gbps at 64B, 6.1 at large).
    assert by_size[64][2] / 1.9 > 5.0
    assert by_size[1514][2] / 6.1 > 3.0
    # Throughput grows with frame size (per-packet costs amortise).
    gpu_series = [row[2] for row in rows]
    assert gpu_series == sorted(gpu_series)
