"""Table 3: CPU cycle breakdown in packet RX (unmodified driver).

Reproduced by *measurement*: the modelled stock driver receives and
silently drops 64 B packets (the paper's exact experiment) while the
slab-model allocator and the cache model accumulate cycles per
functional bin.  Runs through the perf registry and emits
``BENCH_table3.json``.
"""

import pytest

from conftest import assert_within_tolerance, print_table, series_by

PAPER_TABLE_3 = {
    "skb initialization": 0.049,
    "skb (de)allocation": 0.080,
    "memory subsystem": 0.502,
    "NIC device driver": 0.133,
    "others": 0.098,
    "compulsory cache misses": 0.138,
}


def test_table3_rx_cycle_breakdown(benchmark, bench_payload):
    payload = benchmark(lambda: bench_payload("table3"))
    shares = {
        bin_name: row["share"]
        for bin_name, row in series_by(payload).items()
    }
    rows = [
        (bin_name, f"{paper*100:.1f}%", f"{shares[bin_name]*100:.1f}%")
        for bin_name, paper in PAPER_TABLE_3.items()
    ]
    print_table(
        "Table 3: CPU cycle breakdown in packet RX",
        ("functional bin", "paper", "measured"),
        rows,
    )
    for bin_name, paper in PAPER_TABLE_3.items():
        assert shares[bin_name] == pytest.approx(paper, abs=0.01)
    # The headline: skb-related operations take 63.1% of the cycles.
    skb_related = payload["headline"]["skb_related_share"]
    print(f"skb-related total: {skb_related*100:.1f}% (paper: 63.1%)")
    assert skb_related == pytest.approx(0.631, abs=0.01)
    # The verdict the paper draws: the memory subsystem dominates.
    assert payload["bottleneck"] == "memory subsystem"
    assert_within_tolerance(payload)
