"""Section 7 (Discussion) quantitative claims: vertical-scaling economics,
power, and opportunistic offloading."""

import pytest

from conftest import print_table
from repro import app_latency_ns, app_throughput_report
from repro.apps.ipv6 import IPv6Forwarder
from repro.calib.constants import SYSTEM
from repro.gen.workloads import ipv6_workload
from repro.sim.metrics import gbps_to_pps


def test_vertical_scaling_economics(benchmark):
    """Section 7: CPU price per gigahertz rises steeply with socket
    count, while a GPU adds compute for free slot space."""

    def compute():
        # The paper's own price points: $/GHz of aggregate clock.
        single = 240 / (2.66 * 4)     # Core i7 920
        dual = 925 / (2.66 * 4)       # Xeon X5550
        quad = 2190 / (2.00 * 6)      # Xeon E7540
        return [
            ("single-socket ($240 i7-920)", single),
            ("dual-socket ($925 X5550)", dual),
            ("quad-socket ($2190 E7540)", quad),
        ]

    rows = benchmark(compute)
    print_table(
        "Section 7: CPU price per aggregate GHz ($)",
        ("machine class", "$/GHz"),
        rows,
    )
    values = [value for _, value in rows]
    assert values == sorted(values)
    # Paper: $23, $87, $183 per GHz — ratios of roughly 1 : 3.8 : 8.
    assert values[0] == pytest.approx(23, rel=0.05)
    assert values[1] == pytest.approx(87, rel=0.05)
    assert values[2] == pytest.approx(183, rel=0.05)


def test_power_efficiency(benchmark):
    """Section 7: 594 W with GPUs vs 353 W without at full load — a 68%
    increase buying a ~5x IPv6 throughput improvement."""
    app = IPv6Forwarder(ipv6_workload(num_routes=1000).table)

    def compute():
        gpu = app_throughput_report(app, 64, use_gpu=True).gbps
        cpu = app_throughput_report(app, 64, use_gpu=False).gbps
        return {
            "CPU-only": (cpu, SYSTEM.power_full_cpu_w, cpu / SYSTEM.power_full_cpu_w),
            "CPU+GPU": (gpu, SYSTEM.power_full_gpu_w, gpu / SYSTEM.power_full_gpu_w),
        }

    rows = benchmark(compute)
    print_table(
        "Section 7: power efficiency (IPv6 @64B)",
        ("mode", "Gbps", "watts", "Gbps/W"),
        [(name, *values) for name, values in rows.items()],
    )
    power_increase = SYSTEM.power_full_gpu_w / SYSTEM.power_full_cpu_w - 1
    assert power_increase == pytest.approx(0.68, abs=0.01)
    # Per-watt the GPU still wins for the memory-intensive workload.
    assert rows["CPU+GPU"][2] > 2 * rows["CPU-only"][2]


def test_opportunistic_offloading(benchmark):
    """Section 7: "using CPU for low latency under light load and
    exploiting GPU for high throughput when heavily loaded".  The
    policy: pick whichever mode is cheaper in latency at the offered
    load; verify it is CPU at light load and GPU past CPU saturation."""
    app = IPv6Forwarder(ipv6_workload(num_routes=1000).table)

    def best_mode(gbps):
        pps = gbps_to_pps(gbps, 64)
        cpu = app_latency_ns(app, 64, pps, use_gpu=False)
        gpu = app_latency_ns(app, 64, pps, use_gpu=True)
        return "cpu" if cpu <= gpu else "gpu", cpu, gpu

    def compute():
        return {gbps: best_mode(gbps) for gbps in (1, 4, 7, 12, 20, 28)}

    decisions = benchmark(compute)
    rows = [
        (gbps, mode, _us(cpu), _us(gpu))
        for gbps, (mode, cpu, gpu) in decisions.items()
    ]
    print_table(
        "Section 7: opportunistic offloading decision (IPv6 @64B)",
        ("offered Gbps", "choice", "CPU us", "GPU us"),
        rows,
    )
    assert decisions[1][0] == "cpu"
    assert decisions[4][0] == "cpu"
    for gbps in (12, 20, 28):
        assert decisions[gbps][0] == "gpu"


def _us(ns):
    import math

    return "sat" if math.isinf(ns) else f"{ns/1000:.0f}"


def test_mshr_microbenchmark(benchmark):
    """Section 2.4: "an X5550 core can handle about 6 outstanding cache
    misses in the optimal case, and only 4 misses when all four cores
    burst memory references" — the memory model must show exactly that
    overlap collapse."""
    from repro.hw.cpu import memory_access_time

    def compute():
        accesses = 16.0
        serial = memory_access_time(accesses)
        alone = memory_access_time(0.0, independent_accesses=accesses,
                                   all_cores_busy=False)
        bursting = memory_access_time(0.0, independent_accesses=accesses,
                                      all_cores_busy=True)
        return [
            ("dependent chain", serial, 1.0),
            ("independent, one busy core", alone, serial / alone),
            ("independent, all cores bursting", bursting, serial / bursting),
        ]

    rows = benchmark(compute)
    print_table(
        "Section 2.4: 16 DRAM accesses from one core (ns)",
        ("access pattern", "time ns", "overlap factor"),
        rows,
    )
    by_name = {row[0]: row for row in rows}
    assert by_name["independent, one busy core"][2] == pytest.approx(6.0)
    assert by_name["independent, all cores bursting"][2] == pytest.approx(4.0)


def test_memory_bandwidth_argument(benchmark):
    """Section 2.4: "every 4B random memory access consumes 64B of
    memory bandwidth" — and the GPU brings 5.5x the bandwidth."""
    from repro.calib.constants import CPU, GPU

    def compute():
        cache_line = CPU.cache_line
        random_4b_rate_cpu = CPU.mem_bandwidth / cache_line
        return {
            "wasted fraction per 4B access": 1 - 4 / cache_line,
            "CPU random 4B accesses/s": random_4b_rate_cpu,
            "GPU/CPU bandwidth ratio": GPU.mem_bandwidth / CPU.mem_bandwidth,
        }

    values = benchmark(compute)
    print(f"\nrandom 4B access wastes {values['wasted fraction per 4B access']:.1%} "
          f"of a cache line; GPU has {values['GPU/CPU bandwidth ratio']:.1f}x "
          f"the bandwidth (paper: 177.4 vs 32 GB/s)")
    assert values["wasted fraction per 4B access"] == pytest.approx(0.9375)
    assert values["GPU/CPU bandwidth ratio"] == pytest.approx(5.54, rel=0.01)
