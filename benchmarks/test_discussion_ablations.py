"""Section 7 (Discussion) quantitative claims: vertical-scaling economics,
power, the MSHR microbenchmark, and the memory-bandwidth argument —
aggregated by the ``ablations`` registry bench into
``BENCH_ablations.json``.  Opportunistic offloading stays a direct
policy test (a decision table, not a scalar series)."""

import pytest

from conftest import (
    assert_within_tolerance,
    print_payload,
    print_table,
    series_by,
)
from repro import app_latency_ns
from repro.apps.ipv6 import IPv6Forwarder
from repro.gen.workloads import ipv6_workload
from repro.sim.metrics import gbps_to_pps


def test_vertical_scaling_economics(benchmark, bench_payload):
    """Section 7: CPU price per gigahertz rises steeply with socket
    count, while a GPU adds compute for free slot space."""
    payload = benchmark(lambda: bench_payload("ablations"))
    print_payload(payload, ("machine_class", "usd_per_ghz"))
    values = [row["usd_per_ghz"] for row in payload["series"]]
    assert values == sorted(values)
    # Paper: $23, $87, $183 per GHz — ratios of roughly 1 : 3.8 : 8.
    by_class = series_by(payload)
    assert by_class["single-socket"]["usd_per_ghz"] == pytest.approx(23, rel=0.05)
    assert by_class["dual-socket"]["usd_per_ghz"] == pytest.approx(87, rel=0.05)
    assert by_class["quad-socket"]["usd_per_ghz"] == pytest.approx(183, rel=0.05)
    assert_within_tolerance(payload)


def test_power_efficiency(benchmark, bench_payload):
    """Section 7: 594 W with GPUs vs 353 W without at full load — a 68%
    increase buying a ~5x IPv6 throughput improvement."""
    payload = benchmark(lambda: bench_payload("ablations"))
    headline = payload["headline"]
    print_table(
        "Section 7: power efficiency (IPv6 @64B)",
        ("mode", "Gbps/W"),
        [("CPU-only", headline["cpu_gbps_per_watt"]),
         ("CPU+GPU", headline["gpu_gbps_per_watt"])],
    )
    assert headline["power_increase"] == pytest.approx(0.68, abs=0.01)
    # Per-watt the GPU still wins for the memory-intensive workload.
    assert headline["gpu_gbps_per_watt"] > 2 * headline["cpu_gbps_per_watt"]


def test_mshr_microbenchmark(benchmark, bench_payload):
    """Section 2.4: "an X5550 core can handle about 6 outstanding cache
    misses in the optimal case, and only 4 misses when all four cores
    burst memory references" — the memory model must show exactly that
    overlap collapse."""
    payload = benchmark(lambda: bench_payload("ablations"))
    headline = payload["headline"]
    print(
        f"\nMSHR overlap: {headline['mshr_one_core']:.1f}x alone, "
        f"{headline['mshr_all_cores']:.1f}x with all cores bursting"
    )
    assert headline["mshr_one_core"] == pytest.approx(6.0)
    assert headline["mshr_all_cores"] == pytest.approx(4.0)


def test_memory_bandwidth_argument(benchmark, bench_payload):
    """Section 2.4: "every 4B random memory access consumes 64B of
    memory bandwidth" — and the GPU brings 5.5x the bandwidth."""
    from repro.calib.constants import CPU

    payload = benchmark(lambda: bench_payload("ablations"))
    ratio = payload["headline"]["gpu_bw_ratio"]
    wasted = 1 - 4 / CPU.cache_line
    print(f"\nrandom 4B access wastes {wasted:.1%} of a cache line; "
          f"GPU has {ratio:.1f}x the bandwidth (paper: 177.4 vs 32 GB/s)")
    assert wasted == pytest.approx(0.9375)
    assert ratio == pytest.approx(5.54, rel=0.01)
    assert payload["bottleneck"] == "cpu_memory_bandwidth"


def test_opportunistic_offloading(benchmark):
    """Section 7: "using CPU for low latency under light load and
    exploiting GPU for high throughput when heavily loaded".  The
    policy: pick whichever mode is cheaper in latency at the offered
    load; verify it is CPU at light load and GPU past CPU saturation."""
    app = IPv6Forwarder(ipv6_workload(num_routes=1000).table)

    def best_mode(gbps):
        pps = gbps_to_pps(gbps, 64)
        cpu = app_latency_ns(app, 64, pps, use_gpu=False)
        gpu = app_latency_ns(app, 64, pps, use_gpu=True)
        return "cpu" if cpu <= gpu else "gpu", cpu, gpu

    def compute():
        return {gbps: best_mode(gbps) for gbps in (1, 4, 7, 12, 20, 28)}

    decisions = benchmark(compute)
    rows = [
        (gbps, mode, _us(cpu), _us(gpu))
        for gbps, (mode, cpu, gpu) in decisions.items()
    ]
    print_table(
        "Section 7: opportunistic offloading decision (IPv6 @64B)",
        ("offered Gbps", "choice", "CPU us", "GPU us"),
        rows,
    )
    assert decisions[1][0] == "cpu"
    assert decisions[4][0] == "cpu"
    for gbps in (12, 20, 28):
        assert decisions[gbps][0] == "gpu"


def _us(ns):
    import math

    return "sat" if math.isinf(ns) else f"{ns/1000:.0f}"
