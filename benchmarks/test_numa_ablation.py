"""Section 4.5 / 5.4 ablations: NUMA awareness, gather/scatter, and
chunk pipelining — the design choices DESIGN.md calls out.  The NUMA
comparison runs through the perf registry and emits ``BENCH_numa.json``.
"""

import pytest

from conftest import (
    assert_within_tolerance,
    print_payload,
    print_table,
    series_by,
)
from repro.apps.ipv6 import IPv6Forwarder
from repro.core.config import RouterConfig
from repro.core.solver import gpu_batch_time_ns
from repro.gen.workloads import ipv6_workload


def test_numa_aware_vs_blind(benchmark, bench_payload):
    payload = benchmark(lambda: bench_payload("numa"))
    print_payload(payload, ("configuration", "io_gbps", "app_gbps"))
    by_config = series_by(payload)
    # Paper: blind stays below 25 Gbps, aware around 40 (+60%).
    assert by_config["blind"]["io_gbps"] < 25.5
    assert payload["headline"]["aware_over_blind"] == pytest.approx(
        1.6, rel=0.05
    )
    # NUMA-blind hurts the full application pipeline too.
    assert by_config["blind"]["app_gbps"] < by_config["aware"]["app_gbps"] * 0.65
    assert_within_tolerance(payload)


def test_gather_scatter_ablation(benchmark):
    """Section 5.4: gathering multiple chunks per launch amortises the
    per-launch overheads and raises GPU-stage throughput."""
    app = IPv6Forwarder(ipv6_workload(num_routes=1000).table)

    def compute():
        gathered = RouterConfig(gather_scatter=True)
        single = RouterConfig(gather_scatter=False)
        rate = {}
        for name, config in (("gather/scatter", gathered), ("single chunk", single)):
            n = config.chunk_capacity * config.effective_gather_chunks()
            rate[name] = n / gpu_batch_time_ns(app, 64, n) * 1e9 / 1e6
        return rate

    rates = benchmark(compute)
    print_table(
        "Section 5.4: GPU-stage rate per device (Mpps)",
        ("configuration", "Mpps"),
        list(rates.items()),
    )
    assert rates["gather/scatter"] > rates["single chunk"] * 1.2


def test_streams_help_ipsec_not_lookups(benchmark):
    """Section 5.4: concurrent copy & execution is enabled only for
    IPsec; for lightweight kernels the per-call stream overhead loses."""
    from repro.apps.ipsec import IPsecGateway
    from repro.gen.workloads import ipsec_workload

    ipsec = IPsecGateway(ipsec_workload().sa)
    ipv6 = IPv6Forwarder(ipv6_workload(num_routes=1000).table)

    def compute():
        n = 3072
        return {
            "ipsec serial": n / gpu_batch_time_ns(ipsec, 1514, n, streams=False) * 1e9,
            "ipsec streams": n / gpu_batch_time_ns(ipsec, 1514, n, streams=True) * 1e9,
            "ipv6 serial": n / gpu_batch_time_ns(ipv6, 64, n, streams=False) * 1e9,
            "ipv6 streams": n / gpu_batch_time_ns(ipv6, 64, n, streams=True) * 1e9,
        }

    rates = benchmark(compute)
    print_table(
        "Section 5.4: concurrent copy & execution (pps per GPU)",
        ("configuration", "pps"),
        [(k, f"{v/1e6:.2f}M") for k, v in rates.items()],
    )
    # Streams win for the transfer-heavy IPsec kernel...
    assert rates["ipsec streams"] > rates["ipsec serial"]
    # ...and lose for the lightweight IPv6 lookup kernel.
    assert rates["ipv6 streams"] < rates["ipv6 serial"]
