"""Section 4.5 / 5.4 ablations: NUMA awareness, gather/scatter, and
chunk pipelining — the design choices DESIGN.md calls out."""

import pytest

from conftest import print_table
from repro import app_throughput_report
from repro.apps.ipv6 import IPv6Forwarder
from repro.core.config import RouterConfig
from repro.core.solver import gpu_batch_time_ns
from repro.gen.workloads import ipv6_workload
from repro.io_engine.engine import io_throughput_report


def reproduce_numa_ablation():
    aware = io_throughput_report(64, mode="forward", numa_aware=True).gbps
    blind = io_throughput_report(64, mode="forward", numa_aware=False).gbps
    return aware, blind


def test_numa_aware_vs_blind(benchmark):
    aware, blind = benchmark(reproduce_numa_ablation)
    print_table(
        "Section 4.5: NUMA-aware vs NUMA-blind forwarding @64B",
        ("configuration", "Gbps"),
        [("NUMA-aware", aware), ("NUMA-blind", blind)],
    )
    # Paper: blind stays below 25 Gbps, aware around 40 (+60%).
    assert blind < 25.5
    assert aware / blind == pytest.approx(1.6, rel=0.05)


def test_gather_scatter_ablation(benchmark):
    """Section 5.4: gathering multiple chunks per launch amortises the
    per-launch overheads and raises GPU-stage throughput."""
    app = IPv6Forwarder(ipv6_workload(num_routes=1000).table)

    def compute():
        gathered = RouterConfig(gather_scatter=True)
        single = RouterConfig(gather_scatter=False)
        rate = {}
        for name, config in (("gather/scatter", gathered), ("single chunk", single)):
            n = config.chunk_capacity * config.effective_gather_chunks()
            rate[name] = n / gpu_batch_time_ns(app, 64, n) * 1e9 / 1e6
        return rate

    rates = benchmark(compute)
    print_table(
        "Section 5.4: GPU-stage rate per device (Mpps)",
        ("configuration", "Mpps"),
        list(rates.items()),
    )
    assert rates["gather/scatter"] > rates["single chunk"] * 1.2


def test_streams_help_ipsec_not_lookups(benchmark):
    """Section 5.4: concurrent copy & execution is enabled only for
    IPsec; for lightweight kernels the per-call stream overhead loses."""
    from repro.apps.ipsec import IPsecGateway
    from repro.gen.workloads import ipsec_workload

    ipsec = IPsecGateway(ipsec_workload().sa)
    ipv6 = IPv6Forwarder(ipv6_workload(num_routes=1000).table)

    def compute():
        n = 3072
        return {
            "ipsec serial": n / gpu_batch_time_ns(ipsec, 1514, n, streams=False) * 1e9,
            "ipsec streams": n / gpu_batch_time_ns(ipsec, 1514, n, streams=True) * 1e9,
            "ipv6 serial": n / gpu_batch_time_ns(ipv6, 64, n, streams=False) * 1e9,
            "ipv6 streams": n / gpu_batch_time_ns(ipv6, 64, n, streams=True) * 1e9,
        }

    rates = benchmark(compute)
    print_table(
        "Section 5.4: concurrent copy & execution (pps per GPU)",
        ("configuration", "pps"),
        [(k, f"{v/1e6:.2f}M") for k, v in rates.items()],
    )
    # Streams win for the transfer-heavy IPsec kernel...
    assert rates["ipsec streams"] > rates["ipsec serial"]
    # ...and lose for the lightweight IPv6 lookup kernel.
    assert rates["ipv6 streams"] < rates["ipv6 serial"]


def test_numa_blind_hurts_applications_too(benchmark):
    app = IPv6Forwarder(ipv6_workload(num_routes=1000).table)

    def compute():
        aware = app_throughput_report(app, 64, use_gpu=True)
        blind = app_throughput_report(
            app, 64, use_gpu=True, config=RouterConfig(numa_aware=False)
        )
        return aware.gbps, blind.gbps

    aware, blind = benchmark(compute)
    print(f"\nIPv6 CPU+GPU: NUMA-aware {aware:.1f} vs blind {blind:.1f} Gbps")
    assert blind < aware * 0.65
