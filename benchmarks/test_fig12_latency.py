"""Figure 12: average round-trip latency for IPv6 forwarding vs offered
load, in three configurations: CPU-only without batching, CPU-only with
batching, and CPU+GPU."""

import math


from conftest import print_table
from repro import app_latency_ns
from repro.apps.ipv6 import IPv6Forwarder
from repro.gen.workloads import ipv6_workload
from repro.sim.metrics import gbps_to_pps

OFFERED_GBPS = (0.5, 1, 2, 3, 4, 6, 7.5, 12, 16, 20, 24, 28)


def reproduce_figure12():
    app = IPv6Forwarder(ipv6_workload(num_routes=2000).table)
    rows = []
    for gbps in OFFERED_GBPS:
        pps = gbps_to_pps(gbps, 64)
        no_batch = app_latency_ns(app, 64, pps, use_gpu=False, batching=False)
        cpu_batch = app_latency_ns(app, 64, pps, use_gpu=False, batching=True)
        cpu_gpu = app_latency_ns(app, 64, pps, use_gpu=True)
        rows.append(
            (
                gbps,
                _us(no_batch),
                _us(cpu_batch),
                _us(cpu_gpu),
            )
        )
    return rows


def _us(latency_ns):
    return "sat" if math.isinf(latency_ns) else latency_ns / 1000.0


def test_figure12_latency(benchmark):
    rows = benchmark.pedantic(reproduce_figure12, rounds=1, iterations=1)
    print_table(
        "Figure 12: IPv6 round-trip latency (us; 'sat' = beyond capacity)",
        ("offered Gbps", "CPU w/o batch", "CPU w/ batch", "CPU+GPU"),
        rows,
    )
    by_load = {row[0]: row for row in rows}
    # The GPU path runs 200-400 us across the measured range (paper:
    # "yet still showing a reasonable range (200-400us in the figure)").
    for gbps in OFFERED_GBPS:
        gpu = by_load[gbps][3]
        assert gpu != "sat"
        assert 150 < gpu < 450
    # GPU latency exceeds the CPU configurations where they coexist
    # ("GPU acceleration causes higher latency due to GPU transaction
    # overheads and additional queueing").
    for gbps in (1, 2, 3):
        assert by_load[gbps][3] > by_load[gbps][2]
        assert by_load[gbps][3] > by_load[gbps][1]
    # Saturation ordering: no-batch dies first (~3.5 Gbps), CPU+batch
    # at its ~8 Gbps capacity, the GPU survives past 28 Gbps.
    assert by_load[4][1] == "sat"
    assert by_load[3][1] != "sat"
    assert by_load[12][2] == "sat"
    assert by_load[7.5][2] != "sat"
    # The low-load moderation hump: latency at 0.5 Gbps exceeds the
    # mid-load minimum for every configuration.
    assert by_load[0.5][2] > by_load[6][2]
    assert by_load[0.5][3] > by_load[12][3]


def test_figure12_gpu_latency_vs_ipv4(benchmark):
    """The paper quotes 140-260us for IPv4 vs 200-400us for IPv6: the
    lighter kernel and smaller transfers shave the pipeline."""
    from repro.apps.ipv4 import IPv4Forwarder
    from repro.gen.workloads import ipv4_workload

    def compute():
        ipv6 = IPv6Forwarder(ipv6_workload(num_routes=2000).table)
        ipv4 = IPv4Forwarder(ipv4_workload(num_routes=2000).table)
        pps = gbps_to_pps(12, 64)
        return (
            app_latency_ns(ipv4, 64, pps, use_gpu=True),
            app_latency_ns(ipv6, 64, pps, use_gpu=True),
        )

    v4_latency, v6_latency = benchmark.pedantic(compute, rounds=1, iterations=1)
    print(f"\nIPv4 RTT @12G: {v4_latency/1000:.0f} us; IPv6: {v6_latency/1000:.0f} us")
    assert v4_latency < v6_latency
