"""Figure 12: average round-trip latency for IPv6 forwarding vs offered
load, in three configurations: CPU-only without batching, CPU-only with
batching, and CPU+GPU.  Runs through the perf registry and emits
``BENCH_fig12.json`` (saturated points are ``null``) with the
event-simulator latency percentiles in the headline."""


from conftest import assert_within_tolerance, print_payload, series_by


def test_figure12_latency(benchmark, bench_payload):
    payload = benchmark.pedantic(
        lambda: bench_payload("fig12"), rounds=1, iterations=1
    )
    print_payload(
        payload, ("offered_gbps", "cpu_nobatch_us", "cpu_batch_us", "gpu_us")
    )
    by_load = series_by(payload)
    # The GPU path runs 200-400 us across the measured range (paper:
    # "yet still showing a reasonable range (200-400us in the figure)").
    for row in payload["series"]:
        assert row["gpu_us"] is not None
        assert 150 < row["gpu_us"] < 450
    # GPU latency exceeds the CPU configurations where they coexist
    # ("GPU acceleration causes higher latency due to GPU transaction
    # overheads and additional queueing").
    for gbps in (1, 2, 3):
        assert by_load[gbps]["gpu_us"] > by_load[gbps]["cpu_batch_us"]
        assert by_load[gbps]["gpu_us"] > by_load[gbps]["cpu_nobatch_us"]
    # Saturation ordering: no-batch dies first (~3.5 Gbps), CPU+batch
    # at its ~8 Gbps capacity, the GPU survives past 28 Gbps.
    assert by_load[4]["cpu_nobatch_us"] is None
    assert by_load[3]["cpu_nobatch_us"] is not None
    assert by_load[12]["cpu_batch_us"] is None
    assert by_load[7.5]["cpu_batch_us"] is not None
    # The low-load moderation hump: latency at 0.5 Gbps exceeds the
    # mid-load minimum for every configuration.
    assert by_load[0.5]["cpu_batch_us"] > by_load[6]["cpu_batch_us"]
    assert by_load[0.5]["gpu_us"] > by_load[12]["gpu_us"]
    assert_within_tolerance(payload)


def test_figure12_latency_percentiles(benchmark, bench_payload):
    """The event-driven simulator's sojourn-time distribution at the
    12 Gbps operating point, read through the registry histogram's
    percentile estimator: the tail stays inside the paper's band."""
    payload = benchmark.pedantic(
        lambda: bench_payload("fig12"), rounds=1, iterations=1
    )
    headline = payload["headline"]
    p50, p95, p99 = (
        headline["gpu_p50_us"], headline["gpu_p95_us"], headline["gpu_p99_us"]
    )
    print(f"\nsimulated GPU sojourn @12G: p50 {p50:.0f} us, "
          f"p95 {p95:.0f} us, p99 {p99:.0f} us")
    assert p50 <= p95 <= p99
    # The distribution sits in the same order of magnitude as the
    # analytic mean and inside a generous reading of the 200-400us band.
    assert 100 < p50 < 500
    assert p99 < 1000


def test_figure12_gpu_latency_vs_ipv4(benchmark):
    """The paper quotes 140-260us for IPv4 vs 200-400us for IPv6: the
    lighter kernel and smaller transfers shave the pipeline."""
    from repro import app_latency_ns
    from repro.apps.ipv4 import IPv4Forwarder
    from repro.apps.ipv6 import IPv6Forwarder
    from repro.gen.workloads import ipv4_workload, ipv6_workload
    from repro.sim.metrics import gbps_to_pps

    def compute():
        ipv6 = IPv6Forwarder(ipv6_workload(num_routes=2000).table)
        ipv4 = IPv4Forwarder(ipv4_workload(num_routes=2000).table)
        pps = gbps_to_pps(12, 64)
        return (
            app_latency_ns(ipv4, 64, pps, use_gpu=True),
            app_latency_ns(ipv6, 64, pps, use_gpu=True),
        )

    v4_latency, v6_latency = benchmark.pedantic(compute, rounds=1, iterations=1)
    print(f"\nIPv4 RTT @12G: {v4_latency/1000:.0f} us; IPv6: {v6_latency/1000:.0f} us")
    assert v4_latency < v6_latency
