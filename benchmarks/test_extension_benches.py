"""Benchmarks for the reproduction's extensions beyond the paper's
figures: the skb-vs-huge-buffer ablation behind Section 4.2, the
event-driven validation of the Figure 12 model, multi-functional
composition, and VLB horizontal scaling (Sections 7-8).  The scalar
claims aggregate through the ``extensions`` registry bench into
``BENCH_extensions.json``."""

import pytest

from conftest import (
    assert_within_tolerance,
    print_payload,
    print_table,
    series_by,
)
from repro.apps.ipv6 import IPv6Forwarder
from repro.core.solver import app_latency_ns
from repro.gen.workloads import ipv6_workload
from repro.sim.latency import LatencySimulator
from repro.sim.metrics import gbps_to_pps


def test_skb_vs_huge_buffer(benchmark, bench_payload):
    """The Section 4.1 -> 4.2 transition: per-packet RX cycles of the
    stock Linux path vs the huge-packet-buffer engine — an order of
    magnitude, as the Section 4 redesign targets."""
    payload = benchmark(lambda: bench_payload("extensions"))
    ratio = payload["headline"]["skb_engine_ratio"]
    print(f"\nLinux skb path / huge packet buffer: {ratio:.1f}x cycles/packet")
    assert ratio > 10


def test_fig12_event_sim_validation(benchmark):
    """The event-driven simulator replays the Figure 12 GPU curve and
    must agree with the analytic model within ~2x at every load."""
    app = IPv6Forwarder(ipv6_workload(num_routes=1000).table)

    def compute():
        rows = []
        for gbps in (2, 12, 28):
            pps = gbps_to_pps(gbps, 64)
            simulator = LatencySimulator(app, 64, use_gpu=True)
            measured = simulator.run(pps, duration_ns=8e6, warmup_ns=2e6).mean_ns
            analytic = app_latency_ns(app, 64, pps, use_gpu=True,
                                      round_trip=False)
            rows.append((gbps, measured / 1000, analytic / 1000))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "Figure 12 validation: event sim vs analytic (one-way us)",
        ("offered Gbps", "simulated", "analytic"),
        rows,
    )
    for _, measured, analytic in rows:
        assert analytic / 2.2 <= measured <= analytic * 2.2


def test_composite_multifunctionality(benchmark, bench_payload):
    """Section 7 future work: IPv4 + IPsec in one router.  The fused
    pipeline still gains several-fold from the GPU."""
    payload = benchmark(lambda: bench_payload("extensions"))
    headline = payload["headline"]
    print(
        f"\nipv4+ipsec composite @64B: {headline['composite_gpu_gbps_64']:.1f}"
        f" Gbps CPU+GPU, speedup {headline['composite_speedup_64']:.1f}x"
    )
    assert headline["composite_speedup_64"] > 3
    # Bounded by the heavier stage: below the IPsec-only GPU figure.
    assert headline["composite_gpu_gbps_64"] < 12.0


def test_vlb_horizontal_scaling(benchmark, bench_payload):
    """Sections 7-8: cluster scaling and the RB4 comparison."""
    payload = benchmark(lambda: bench_payload("extensions"))
    print_payload(payload, ("nodes", "direct_gbps", "classic_gbps"))
    headline = payload["headline"]
    # "PacketShader could replace RB4 ... with better performance."
    assert headline["ps_vs_rb4_ratio"] > 1.0
    assert headline["vlb8_direct_gbps"] == pytest.approx(160.0, rel=0.05)
    for row in payload["series"]:
        assert row["direct_gbps"] >= row["classic_gbps"]
    by_nodes = series_by(payload)
    assert by_nodes[8]["direct_gbps"] > by_nodes[1]["direct_gbps"]
    assert_within_tolerance(payload)
