"""Benchmarks for the reproduction's extensions beyond the paper's
figures: the skb-vs-huge-buffer ablation behind Section 4.2, the
event-driven validation of the Figure 12 model, multi-functional
composition, and VLB horizontal scaling (Sections 7-8)."""


from conftest import print_table
from repro.calib.constants import CPU, IO_ENGINE, LINUX_STACK
from repro.core.composite import CompositeApplication
from repro.core.scaling import VLBCluster, packetshader_vs_rb4
from repro.core.solver import app_latency_ns, app_throughput_report
from repro.apps.ipsec import IPsecGateway
from repro.apps.ipv4 import IPv4Forwarder
from repro.apps.ipv6 import IPv6Forwarder
from repro.gen.workloads import ipsec_workload, ipv4_workload, ipv6_workload
from repro.sim.latency import LatencySimulator
from repro.sim.metrics import gbps_to_pps


def test_skb_vs_huge_buffer(benchmark):
    """The Section 4.1 -> 4.2 transition: per-packet RX cycles of the
    stock Linux path vs the huge-packet-buffer engine."""

    def compute():
        stock = LINUX_STACK.total_cycles
        engine = IO_ENGINE.rx_only_per_packet_cycles
        return {
            "Linux skb path": (stock, CPU.clock_hz / stock / 1e6),
            "huge packet buffer": (engine, CPU.clock_hz / engine / 1e6),
        }

    rows = benchmark(compute)
    print_table(
        "Section 4.2: RX cost per packet (one core)",
        ("path", "cycles/packet", "Mpps/core"),
        [(name, cycles, rate) for name, (cycles, rate) in rows.items()],
    )
    stock_cycles = rows["Linux skb path"][0]
    engine_cycles = rows["huge packet buffer"][0]
    # An order of magnitude, as the Section 4 redesign targets.
    assert stock_cycles / engine_cycles > 10


def test_fig12_event_sim_validation(benchmark):
    """The event-driven simulator replays the Figure 12 GPU curve and
    must agree with the analytic model within ~2x at every load."""
    app = IPv6Forwarder(ipv6_workload(num_routes=1000).table)

    def compute():
        rows = []
        for gbps in (2, 12, 28):
            pps = gbps_to_pps(gbps, 64)
            simulator = LatencySimulator(app, 64, use_gpu=True)
            measured = simulator.run(pps, duration_ns=8e6, warmup_ns=2e6).mean_ns
            analytic = app_latency_ns(app, 64, pps, use_gpu=True,
                                      round_trip=False)
            rows.append((gbps, measured / 1000, analytic / 1000))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "Figure 12 validation: event sim vs analytic (one-way us)",
        ("offered Gbps", "simulated", "analytic"),
        rows,
    )
    for _, measured, analytic in rows:
        assert analytic / 2.2 <= measured <= analytic * 2.2


def test_composite_multifunctionality(benchmark):
    """Section 7 future work: IPv4 + IPsec in one router.  The fused
    pipeline costs roughly the sum of its parts on the CPU side and is
    bounded by the heavier stage end to end."""
    ipv4 = IPv4Forwarder(ipv4_workload(num_routes=1000).table)
    ipsec = IPsecGateway(ipsec_workload().sa)
    composite = CompositeApplication([ipv4, ipsec])

    def compute():
        rows = []
        for app, label in ((ipv4, "ipv4"), (ipsec, "ipsec"),
                           (composite, "ipv4+ipsec")):
            gpu = app_throughput_report(app, 64, use_gpu=True).gbps
            cpu = app_throughput_report(app, 64, use_gpu=False).gbps
            rows.append((label, cpu, gpu))
        return rows

    rows = benchmark(compute)
    print_table(
        "Section 7: multi-functional composition @64B (Gbps)",
        ("application", "CPU-only", "CPU+GPU"),
        rows,
    )
    by_name = {row[0]: row for row in rows}
    assert by_name["ipv4+ipsec"][2] < by_name["ipsec"][2]
    assert by_name["ipv4+ipsec"][1] < by_name["ipsec"][1]
    # The composite still gains several-fold from the GPU.
    assert by_name["ipv4+ipsec"][2] / by_name["ipv4+ipsec"][1] > 3


def test_vlb_horizontal_scaling(benchmark):
    """Sections 7-8: cluster scaling and the RB4 comparison."""

    def compute():
        rows = []
        for nodes in (1, 2, 4, 8):
            direct = VLBCluster(num_nodes=nodes, node_capacity_gbps=40.0,
                                mesh_link_gbps=10.0, direct=True)
            classic = VLBCluster(num_nodes=nodes, node_capacity_gbps=40.0,
                                 mesh_link_gbps=10.0, direct=False)
            rows.append((nodes, direct.external_capacity_gbps(),
                         classic.external_capacity_gbps()))
        return rows, packetshader_vs_rb4()

    rows, comparison = benchmark(compute)
    print_table(
        "Section 7: VLB cluster external capacity (Gbps)",
        ("nodes", "direct VLB", "classic VLB"),
        rows,
    )
    print(
        f"one PacketShader box: {comparison['packetshader_single_box']:.1f} Gbps"
        f" vs RB4 cluster: {comparison['routebricks_rb4']:.1f} Gbps"
    )
    # "PacketShader could replace RB4 ... with better performance."
    assert (
        comparison["packetshader_single_box"] > comparison["routebricks_rb4"]
    )
    for nodes, direct, classic in rows:
        assert direct >= classic
