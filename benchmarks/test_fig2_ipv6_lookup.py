"""Figure 2: IPv6 lookup throughput of X5550 and GTX480 vs batch size.

The motivating example of Section 2.3: lookup only, no packet I/O.  The
published shape: the GPU curve rises with parallelism, crosses one
quad-core X5550 past ~320 packets, two past ~640, and saturates around
ten X5550s.
"""


from conftest import print_table
from repro.apps.lookup_only import (
    cpu_ipv6_lookup_rate_pps,
    gpu_crossover_batch,
    gpu_ipv6_lookup_rate_pps,
)

BATCH_SIZES = (32, 64, 128, 256, 320, 512, 640, 1024, 2048, 4096, 8192, 16384)


def reproduce_figure2():
    cpu1 = cpu_ipv6_lookup_rate_pps(1) / 1e6
    cpu2 = cpu_ipv6_lookup_rate_pps(2) / 1e6
    rows = [
        (batch, gpu_ipv6_lookup_rate_pps(batch) / 1e6, cpu1, cpu2)
        for batch in BATCH_SIZES
    ]
    return rows, cpu1, cpu2


def test_figure2_lookup_throughput(benchmark):
    (rows, cpu1, cpu2) = benchmark(reproduce_figure2)
    print_table(
        "Figure 2: IPv6 lookup throughput (Mpps)",
        ("batch", "GTX480", "1x X5550", "2x X5550"),
        rows,
    )
    gpu = {batch: rate for batch, rate, _, _ in rows}
    # GPU throughput proportional to the level of parallelism.
    assert gpu[16384] > gpu[1024] > gpu[128] > gpu[32]
    # Crossovers where the paper reports them.
    assert gpu[320] <= cpu1 * 1.05
    assert gpu[512] >= cpu1
    assert gpu[640] <= cpu2 * 1.05
    assert gpu[1024] >= cpu2
    # Peak "comparable to about ten X5550 processors".
    assert 7.5 <= gpu[16384] / cpu1 <= 11.0


def test_figure2_crossover_points(benchmark):
    crossovers = benchmark(
        lambda: (gpu_crossover_batch(1), gpu_crossover_batch(2))
    )
    print(f"\ncrossover vs 1 CPU: {crossovers[0]} packets (paper: >320)")
    print(f"crossover vs 2 CPUs: {crossovers[1]} packets (paper: >640)")
    assert 250 <= crossovers[0] <= 450
    assert 600 <= crossovers[1] <= 1100
