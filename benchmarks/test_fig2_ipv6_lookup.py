"""Figure 2: IPv6 lookup throughput of X5550 and GTX480 vs batch size.

The motivating example of Section 2.3: lookup only, no packet I/O.  The
published shape: the GPU curve rises with parallelism, crosses one
quad-core X5550 past ~320 packets, two past ~640, and saturates around
ten X5550s.  Runs through the perf registry and emits ``BENCH_fig2.json``.
"""


from conftest import assert_within_tolerance, print_payload, series_by
from repro.apps.lookup_only import gpu_crossover_batch


def test_figure2_lookup_throughput(benchmark, bench_payload):
    payload = benchmark(lambda: bench_payload("fig2"))
    print_payload(payload, ("batch", "gpu_mpps", "cpu1_mpps", "cpu2_mpps"))
    rows = series_by(payload)
    gpu = {batch: row["gpu_mpps"] for batch, row in rows.items()}
    cpu1 = rows[32]["cpu1_mpps"]
    cpu2 = rows[32]["cpu2_mpps"]
    # GPU throughput proportional to the level of parallelism.
    assert gpu[16384] > gpu[1024] > gpu[128] > gpu[32]
    # Crossovers where the paper reports them.
    assert gpu[320] <= cpu1 * 1.05
    assert gpu[512] >= cpu1
    assert gpu[640] <= cpu2 * 1.05
    assert gpu[1024] >= cpu2
    # Peak "comparable to about ten X5550 processors".
    assert 7.5 <= payload["headline"]["peak_vs_1cpu"] <= 11.0
    assert_within_tolerance(payload)


def test_figure2_crossover_points(benchmark):
    crossovers = benchmark(
        lambda: (gpu_crossover_batch(1), gpu_crossover_batch(2))
    )
    print(f"\ncrossover vs 1 CPU: {crossovers[0]} packets (paper: >320)")
    print(f"crossover vs 2 CPUs: {crossovers[1]} packets (paper: >640)")
    assert 250 <= crossovers[0] <= 450
    assert 600 <= crossovers[1] <= 1100
