"""Degraded-mode throughput: breaker-open CPU fallback vs the baselines.

The resilience acceptance bar (docs/RESILIENCE.md): with every GPU
circuit breaker open, the router's modelled capacity must land within
10% of the Figure 11 CPU-only baseline — degradation to the paper's
CPU-only path, not collapse behind a dead device.  Emits
``BENCH_degraded.json``.
"""

import pytest

from conftest import print_table
from repro import app_throughput_report
from repro.apps.ipv4 import IPv4Forwarder
from repro.apps.ipv6 import IPv6Forwarder
from repro.core.solver import degraded_throughput_report
from repro.gen.workloads import EVAL_FRAME_SIZES, ipv4_workload, ipv6_workload


def reproduce_degraded():
    apps = {
        "ipv4": IPv4Forwarder(ipv4_workload(num_routes=5_000).table),
        "ipv6": IPv6Forwarder(ipv6_workload(num_routes=5_000).table),
    }
    rows = []
    for name, app in apps.items():
        for size in EVAL_FRAME_SIZES:
            clean = app_throughput_report(app, size, use_gpu=True)
            cpu_only = app_throughput_report(app, size, use_gpu=False)
            degraded = degraded_throughput_report(app, size)
            rows.append((
                name, size, clean.gbps, cpu_only.gbps, degraded.gbps,
                degraded.gbps / cpu_only.gbps,
            ))
    return rows


def test_degraded_throughput(benchmark, figure_json):
    rows = benchmark.pedantic(reproduce_degraded, rounds=1, iterations=1)
    print_table(
        "Degraded mode: breaker-open CPU fallback (Gbps)",
        ("app", "frame B", "CPU+GPU", "CPU-only", "degraded", "ratio"),
        rows,
    )
    figure_json("degraded", {
        "figure": "degraded",
        "title": "Breaker-open degraded throughput vs CPU-only baseline (Gbps)",
        "series": [
            {
                "app": app,
                "frame_len": size,
                "clean_gbps": clean,
                "cpu_only_gbps": cpu_only,
                "degraded_gbps": degraded,
                "ratio": ratio,
            }
            for app, size, clean, cpu_only, degraded, ratio in rows
        ],
    })
    for app, size, clean, cpu_only, degraded, ratio in rows:
        # The acceptance bar: within 10% of the CPU-only baseline,
        # and never better than it (the fallback adds cost, it cannot
        # remove any).
        assert ratio >= 0.9, f"{app}@{size}B degraded to {ratio:.1%} of baseline"
        assert degraded <= cpu_only * 1.001
        # Degradation is real: at small frames the GPU path is faster.
        if size == 64:
            assert clean > degraded
