"""Degraded-mode throughput: breaker-open CPU fallback vs the baselines.

The resilience acceptance bar (docs/RESILIENCE.md): with every GPU
circuit breaker open, the router's modelled capacity must land within
10% of the Figure 11 CPU-only baseline — degradation to the paper's
CPU-only path, not collapse behind a dead device.  Runs through the
perf registry and emits ``BENCH_degraded.json``.
"""


from conftest import assert_within_tolerance, print_payload


def test_degraded_throughput(benchmark, bench_payload):
    payload = benchmark.pedantic(
        lambda: bench_payload("degraded"), rounds=1, iterations=1
    )
    print_payload(
        payload,
        ("case", "clean_gbps", "cpu_only_gbps", "degraded_gbps", "ratio"),
    )
    for row in payload["series"]:
        # The acceptance bar: within 10% of the CPU-only baseline,
        # and never better than it (the fallback adds cost, it cannot
        # remove any).
        assert row["ratio"] >= 0.9, (
            f"{row['case']} degraded to {row['ratio']:.1%} of baseline"
        )
        assert row["degraded_gbps"] <= row["cpu_only_gbps"] * 1.001
        # Degradation is real: at small frames the GPU path is faster.
        if row["frame_len"] == 64:
            assert row["clean_gbps"] > row["degraded_gbps"]
    assert payload["headline"]["min_ratio"] >= 0.9
    assert_within_tolerance(payload)
