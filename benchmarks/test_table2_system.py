"""Table 2: test system hardware specification and cost."""

import pytest

from conftest import print_table
from repro.calib.constants import CPU, GPU, NIC, SYSTEM


def reproduce_table2():
    return [
        ("CPU", f"Xeon X5550 ({CPU.cores} cores, {CPU.clock_hz/1e9:.2f} GHz)",
         SYSTEM.num_nodes, SYSTEM.price_cpu),
        ("RAM", "DDR3 ECC 2GB (1333 MHz)", SYSTEM.ram_modules, SYSTEM.price_ram),
        ("M/B", "Super Micro X8DAH+F (dual IOH)", 1, SYSTEM.price_motherboard),
        ("GPU", f"GTX480 ({GPU.total_cores} cores, {GPU.clock_hz/1e9:.1f} GHz, "
         f"{GPU.device_memory >> 20} MB)", SYSTEM.num_nodes, SYSTEM.price_gpu),
        ("NIC", "Intel X520-DA2 (dual-port 10GbE)",
         SYSTEM.num_nodes * SYSTEM.nics_per_node, SYSTEM.price_nic),
        ("misc", "chassis / PSU / storage", 1, SYSTEM.price_misc),
    ]


def test_table2_specification(benchmark):
    rows = benchmark(reproduce_table2)
    print_table(
        f"Table 2: test system (total ${SYSTEM.total_cost})",
        ("item", "specification", "qty", "unit $"),
        rows,
    )
    assert SYSTEM.total_cost == pytest.approx(7000, rel=0.05)
    assert GPU.total_cores == 480
    assert SYSTEM.total_ports == 8
    # The GPU price argument of Section 7: far cheaper compute than an
    # extra dual-socket CPU.
    assert SYSTEM.price_gpu < SYSTEM.price_cpu
