"""Table 2: test system hardware specification and cost.  Runs through
the perf registry and emits ``BENCH_table2.json``."""

import pytest

from conftest import assert_within_tolerance, print_payload, series_by
from repro.calib.constants import GPU, SYSTEM


def test_table2_specification(benchmark, bench_payload):
    payload = benchmark(lambda: bench_payload("table2"))
    print_payload(payload, ("item", "qty", "unit_usd"))
    headline = payload["headline"]
    assert headline["total_cost_usd"] == pytest.approx(7000, rel=0.05)
    assert headline["gpu_cores"] == GPU.total_cores == 480
    assert headline["cpu_cores"] == SYSTEM.num_nodes * 4
    assert headline["total_ports"] == 8
    # The GPU price argument of Section 7: far cheaper compute than an
    # extra dual-socket CPU.
    by_item = series_by(payload)
    assert by_item["GPU"]["unit_usd"] < by_item["CPU"]["unit_usd"]
    assert_within_tolerance(payload)
