"""Figure 11(a): IPv4 forwarding throughput, CPU-only vs CPU+GPU."""

import pytest

from conftest import print_table
from repro import app_throughput_report
from repro.apps.ipv4 import IPv4Forwarder
from repro.gen.workloads import EVAL_FRAME_SIZES, ipv4_workload


def reproduce_figure11a():
    # The full RouteViews-sized table is built once (282,797 prefixes);
    # the throughput sweep then queries the calibrated models.
    workload = ipv4_workload()
    app = IPv4Forwarder(workload.table)
    rows = []
    for size in EVAL_FRAME_SIZES:
        cpu = app_throughput_report(app, size, use_gpu=False)
        gpu = app_throughput_report(app, size, use_gpu=True)
        rows.append((size, cpu.gbps, gpu.gbps, gpu.bottleneck))
    return rows


def test_figure11a_ipv4_forwarding(benchmark, figure_json):
    rows = benchmark.pedantic(reproduce_figure11a, rounds=1, iterations=1)
    print_table(
        "Figure 11(a): IPv4 forwarding (Gbps)",
        ("frame B", "CPU-only", "CPU+GPU", "GPU bottleneck"),
        rows,
    )
    figure_json("fig11a", {
        "figure": "fig11a",
        "title": "IPv4 forwarding throughput (Gbps)",
        "series": [
            {
                "frame_len": size,
                "cpu_gbps": cpu,
                "gpu_gbps": gpu,
                "bottleneck": bottleneck,
            }
            for size, cpu, gpu, bottleneck in rows
        ],
    })
    by_size = {row[0]: row for row in rows}
    # Paper: 39 Gbps at 64B with GPU; CPU-only around 28.
    assert by_size[64][2] == pytest.approx(39.0, rel=0.02)
    assert by_size[64][1] == pytest.approx(28.0, rel=0.05)
    # "the CPU+GPU mode reaches close to the maximum throughput of
    # 40 Gbps" for all sizes.
    for size in EVAL_FRAME_SIZES[1:]:
        assert by_size[size][2] >= 39.5
    # CPU-only catches up at large frames (both I/O bound).
    assert by_size[1514][1] == pytest.approx(by_size[1514][2], rel=0.01)
