"""Figure 11(a): IPv4 forwarding throughput, CPU-only vs CPU+GPU.
Runs through the perf registry and emits ``BENCH_fig11a.json``."""

import pytest

from conftest import assert_within_tolerance, print_payload, series_by
from repro.gen.workloads import EVAL_FRAME_SIZES


def test_figure11a_ipv4_forwarding(benchmark, bench_payload):
    payload = benchmark.pedantic(
        lambda: bench_payload("fig11a"), rounds=1, iterations=1
    )
    print_payload(
        payload, ("frame_len", "cpu_gbps", "gpu_gbps", "bottleneck")
    )
    by_size = series_by(payload)
    # Paper: 39 Gbps at 64B with GPU; CPU-only around 28.
    assert by_size[64]["gpu_gbps"] == pytest.approx(39.0, rel=0.02)
    assert by_size[64]["cpu_gbps"] == pytest.approx(28.0, rel=0.05)
    # "the CPU+GPU mode reaches close to the maximum throughput of
    # 40 Gbps" for all sizes.
    for size in EVAL_FRAME_SIZES[1:]:
        assert by_size[size]["gpu_gbps"] >= 39.5
    # CPU-only catches up at large frames (both I/O bound).
    assert by_size[1514]["cpu_gbps"] == pytest.approx(
        by_size[1514]["gpu_gbps"], rel=0.01
    )
    assert_within_tolerance(payload)
