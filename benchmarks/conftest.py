"""Shared helpers for the reproduction benchmarks.

Each benchmark file regenerates one table or figure of the paper
through the perf registry (``repro.perf``): the ``bench_payload``
fixture runs the same registered producer that ``python -m repro
bench`` runs, scores it against the paper-reference table, validates
the payload against the artifact schema, and writes the same
``BENCH_<figure>.json`` artifact.  The tests then print the series side
by side with the published numbers and assert the qualitative shape.
Run them with::

    pytest benchmarks/ --benchmark-only -s

Artifacts are written in **quick** mode — the committed mode (CI runs
``python -m repro bench --quick --check``), so a benchmark run leaves
the tree clean.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Sequence

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def bench_payload():
    """Run one registered benchmark through the runner pipeline.

    Returns the schema-validated payload (series, headline, bottleneck,
    divergence scoring) after writing ``BENCH_<figure>.json`` exactly as
    ``python -m repro bench --quick`` would.
    """

    def run(figure: str, quick: bool = True) -> Dict[str, object]:
        from repro.perf.registry import get_spec
        from repro.perf.runner import run_figure, write_figure

        payload = run_figure(get_spec(figure), quick=quick)
        path = write_figure(payload)
        print(f"\nwrote {path}")
        return payload

    return run


def series_by(payload: Dict[str, object], *keys: str) -> Dict[object, Dict]:
    """Index a payload's series rows by x value (or by explicit keys)."""
    x_key = keys[0] if keys else payload["x_key"]
    return {row[x_key]: row for row in payload["series"]}


def assert_within_tolerance(payload: Dict[str, object]) -> None:
    """The scorecard verdict: every reference point within tolerance."""
    divergence = payload.get("divergence")
    assert divergence is not None, f"{payload['figure']}: no reference scored"
    assert divergence["within_tol"], (
        f"{payload['figure']}: out of tolerance vs {divergence['source']} "
        f"(fidelity {divergence['fidelity']}, "
        f"max rel error {divergence['max_rel_error']})"
    )


def print_payload(payload: Dict[str, object], columns: Sequence[str]) -> None:
    """Print a payload's series in the fixed-width layout."""
    rows: List[Sequence] = [
        [row.get(column) for column in columns] for row in payload["series"]
    ]
    print_table(payload["title"], columns, rows)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print one reproduced table in a fixed-width layout."""
    rows = [["" if v is None else v for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(_fmt(row[i])) for row in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(_fmt(v).rjust(w) for v, w in zip(row, widths)))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
