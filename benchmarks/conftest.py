"""Shared helpers for the reproduction benchmarks.

Each benchmark file regenerates one table or figure of the paper: it
computes the series with the library, prints it side by side with the
published numbers, asserts the qualitative shape, and times the harness
with pytest-benchmark.  Run them with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print one reproduced table in a fixed-width layout."""
    rows = [["" if v is None else v for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(_fmt(row[i])) for row in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(_fmt(v).rjust(w) for v, w in zip(row, widths)))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
