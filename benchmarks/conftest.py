"""Shared helpers for the reproduction benchmarks.

Each benchmark file regenerates one table or figure of the paper: it
computes the series with the library, prints it side by side with the
published numbers, asserts the qualitative shape, and times the harness
with pytest-benchmark.  Run them with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def figure_json():
    """Write a figure's reproduced series to ``BENCH_<figure>.json``.

    Benchmarks call ``figure_json("fig6", payload)`` after computing a
    figure; the payload lands at the repo root as machine-readable output
    next to the printed table, so runs can be diffed or plotted without
    re-parsing stdout.
    """

    def write(figure: str, payload) -> Path:
        path = REPO_ROOT / f"BENCH_{figure}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {path}")
        return path

    return write


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print one reproduced table in a fixed-width layout."""
    rows = [["" if v is None else v for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(_fmt(row[i])) for row in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(_fmt(v).rjust(w) for v, w in zip(row, widths)))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
