"""Figure 6: performance of the packet I/O engine — RX, TX, forwarding,
and node-crossing forwarding over the evaluation frame sizes."""

import pytest

from conftest import print_table
from repro.gen.workloads import EVAL_FRAME_SIZES
from repro.io_engine.engine import io_throughput_report

PAPER_ANCHORS = {
    # frame -> (rx, tx, forward) published points
    64: (53.1, 79.3, 41.1),
    1514: (59.9, 80.0, 40.0),
}


def reproduce_figure6():
    rows = []
    for size in EVAL_FRAME_SIZES:
        rx = io_throughput_report(size, mode="rx").gbps
        tx = io_throughput_report(size, mode="tx").gbps
        forward = io_throughput_report(size, mode="forward").gbps
        crossing = io_throughput_report(
            size, mode="forward", node_crossing=True
        ).gbps
        rows.append((size, rx, tx, forward, crossing))
    return rows


def test_figure6_io_engine(benchmark, figure_json):
    rows = benchmark(reproduce_figure6)
    print_table(
        "Figure 6: packet I/O engine (Gbps)",
        ("frame B", "RX", "TX", "forward", "node-crossing"),
        rows,
    )
    figure_json("fig6", {
        "figure": "fig6",
        "title": "packet I/O engine throughput (Gbps)",
        "series": [
            {
                "frame_len": size,
                "rx_gbps": rx,
                "tx_gbps": tx,
                "forward_gbps": forward,
                "node_crossing_gbps": crossing,
                "bottleneck": io_throughput_report(
                    size, mode="forward"
                ).bottleneck,
            }
            for size, rx, tx, forward, crossing in rows
        ],
    })
    by_size = {row[0]: row[1:] for row in rows}
    for size, (paper_rx, paper_tx, paper_fwd) in PAPER_ANCHORS.items():
        rx, tx, forward, crossing = by_size[size]
        assert rx == pytest.approx(paper_rx, rel=0.02)
        assert tx == pytest.approx(paper_tx, rel=0.02)
        assert forward == pytest.approx(paper_fwd, rel=0.03)
    for size, (rx, tx, forward, crossing) in by_size.items():
        # TX > RX (the dual-IOH asymmetry), forwarding ~40+, crossing
        # close behind.
        assert tx > rx > forward
        assert forward >= 39.9
        assert forward * 0.97 <= crossing <= forward


def test_figure6_mpps_headline(benchmark):
    report = benchmark(lambda: io_throughput_report(64, mode="forward"))
    print(
        f"\nminimal forwarding @64B: {report.gbps:.1f} Gbps "
        f"({report.mpps:.1f} Mpps) — paper: 41.1 Gbps / 58.4 Mpps; "
        f"RouteBricks: 13.3 Gbps / 18.96 Mpps"
    )
    assert report.mpps == pytest.approx(58.4, rel=0.02)
