"""Figure 6: performance of the packet I/O engine — RX, TX, forwarding,
and node-crossing forwarding over the evaluation frame sizes.  Runs
through the perf registry and emits ``BENCH_fig6.json``."""

import pytest

from conftest import assert_within_tolerance, print_payload, series_by

PAPER_ANCHORS = {
    # frame -> (rx, tx, forward) published points
    64: (53.1, 79.3, 41.1),
    1514: (59.9, 80.0, 40.0),
}


def test_figure6_io_engine(benchmark, bench_payload):
    payload = benchmark(lambda: bench_payload("fig6"))
    print_payload(
        payload,
        ("frame_len", "rx_gbps", "tx_gbps", "forward_gbps",
         "node_crossing_gbps"),
    )
    by_size = series_by(payload)
    for size, (paper_rx, paper_tx, paper_fwd) in PAPER_ANCHORS.items():
        row = by_size[size]
        assert row["rx_gbps"] == pytest.approx(paper_rx, rel=0.02)
        assert row["tx_gbps"] == pytest.approx(paper_tx, rel=0.02)
        assert row["forward_gbps"] == pytest.approx(paper_fwd, rel=0.03)
    for row in payload["series"]:
        # TX > RX (the dual-IOH asymmetry), forwarding ~40+, crossing
        # close behind.
        assert row["tx_gbps"] > row["rx_gbps"] > row["forward_gbps"]
        assert row["forward_gbps"] >= 39.9
        assert (
            row["forward_gbps"] * 0.97
            <= row["node_crossing_gbps"]
            <= row["forward_gbps"]
        )
    assert_within_tolerance(payload)


def test_figure6_mpps_headline(benchmark, bench_payload):
    payload = benchmark(lambda: bench_payload("fig6"))
    headline = payload["headline"]
    print(
        f"\nminimal forwarding @64B: {headline['forward_gbps_64']:.1f} Gbps "
        f"({headline['forward_mpps_64']:.1f} Mpps) — paper: 41.1 Gbps / "
        f"58.4 Mpps; RouteBricks: 13.3 Gbps / 18.96 Mpps"
    )
    assert headline["forward_mpps_64"] == pytest.approx(58.4, rel=0.02)
