"""Shard scaling: modelled throughput vs worker-process count.

The sharding acceptance bar (docs/SHARDING.md): the capacity model
must scale near-linearly through four workers (ipv4 speedup >= 3.0 at
4 workers) and hit the packet I/O ceiling — not a shading stage — by
eight.  Runs through the perf registry and emits ``BENCH_scaling.json``;
the measured multi-process wall-clock companion is
``python -m repro bench --wallclock --workers N`` (history-only, since
real speedup depends on the host's core count).
"""


from conftest import assert_within_tolerance, print_payload, series_by


def test_scaling_curve(benchmark, bench_payload):
    payload = benchmark.pedantic(
        lambda: bench_payload("scaling"), rounds=1, iterations=1
    )
    print_payload(
        payload,
        ("workers", "ipv4_gbps", "ipv4_speedup", "ipv6_gbps",
         "ipv6_speedup"),
    )
    by_workers = series_by(payload)
    # The acceptance criterion: near-linear through 4 workers.
    assert payload["headline"]["ipv4_speedup_4w"] >= 3.0
    assert payload["headline"]["ipv6_speedup_4w"] >= 3.0
    # Monotone: more workers never model slower.
    for app in ("ipv4", "ipv6"):
        curve = [by_workers[w][f"{app}_gbps"] for w in (1, 2, 4, 8)]
        assert curve == sorted(curve)
        # The linear region is worker-bound; the 8-worker point is not.
        assert by_workers[1][f"{app}_bottleneck"] == "workers"
        assert by_workers[8][f"{app}_bottleneck"] != "workers"
    # Sub-linear by 8: the I/O engine caps the curve.
    assert payload["headline"]["ipv4_speedup_8w"] < 8.0
    assert payload["bottleneck"] == "io"
    assert_within_tolerance(payload)
