"""Figure 11(b): IPv6 forwarding throughput, CPU-only vs CPU+GPU."""

import pytest

from conftest import print_table
from repro import app_throughput_report
from repro.apps.ipv6 import IPv6Forwarder
from repro.gen.workloads import EVAL_FRAME_SIZES, ipv6_workload


def reproduce_figure11b():
    workload = ipv6_workload()  # the paper's 200,000 random prefixes
    app = IPv6Forwarder(workload.table)
    rows = []
    for size in EVAL_FRAME_SIZES:
        cpu = app_throughput_report(app, size, use_gpu=False)
        gpu = app_throughput_report(app, size, use_gpu=True)
        rows.append((size, cpu.gbps, gpu.gbps, gpu.gbps / cpu.gbps))
    return rows


def test_figure11b_ipv6_forwarding(benchmark):
    rows = benchmark.pedantic(reproduce_figure11b, rounds=1, iterations=1)
    print_table(
        "Figure 11(b): IPv6 forwarding (Gbps)",
        ("frame B", "CPU-only", "CPU+GPU", "speedup"),
        rows,
    )
    by_size = {row[0]: row for row in rows}
    # Paper: 38.2 Gbps at 64B with GPU vs ~8 CPU-only: the largest GPU
    # win of the four applications (memory-intensive workload).
    assert by_size[64][2] == pytest.approx(38.2, rel=0.03)
    assert by_size[64][1] == pytest.approx(8.0, rel=0.10)
    assert by_size[64][3] > 4.0
    # Speedup shrinks as frames grow (I/O bound swallows both), down
    # to parity within rounding.
    speedups = [row[3] for row in rows]
    for earlier, later in zip(speedups, speedups[1:]):
        assert later <= earlier * 1.02
