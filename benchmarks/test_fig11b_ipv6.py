"""Figure 11(b): IPv6 forwarding throughput, CPU-only vs CPU+GPU.
Runs through the perf registry and emits ``BENCH_fig11b.json``."""

import pytest

from conftest import assert_within_tolerance, print_payload, series_by


def test_figure11b_ipv6_forwarding(benchmark, bench_payload):
    payload = benchmark.pedantic(
        lambda: bench_payload("fig11b"), rounds=1, iterations=1
    )
    print_payload(payload, ("frame_len", "cpu_gbps", "gpu_gbps", "speedup"))
    by_size = series_by(payload)
    # Paper: 38.2 Gbps at 64B with GPU vs ~8 CPU-only: the largest GPU
    # win of the four applications (memory-intensive workload).
    assert by_size[64]["gpu_gbps"] == pytest.approx(38.2, rel=0.03)
    assert by_size[64]["cpu_gbps"] == pytest.approx(8.0, rel=0.10)
    assert by_size[64]["speedup"] > 4.0
    # Speedup shrinks as frames grow (I/O bound swallows both), down
    # to parity within rounding.
    speedups = [row["speedup"] for row in payload["series"]]
    for earlier, later in zip(speedups, speedups[1:]):
        assert later <= earlier * 1.02
    assert_within_tolerance(payload)
