"""Section 5.5 ablation: warp divergence and the classify-and-sort fix.

The paper: "To avoid warp divergence for differentiated packet
processing (e.g., packet encryption with different cipher suites), one
may classify and sort packets to be grouped into separate warps."  This
bench quantifies the claim on the GPU model: a mixed-cipher IPsec batch
run as-arrived versus pre-sorted.  Runs through the perf registry and
emits ``BENCH_divergence.json``.
"""


from conftest import assert_within_tolerance, print_payload, series_by


def test_divergence_sort_ablation(benchmark, bench_payload):
    payload = benchmark(lambda: bench_payload("divergence"))
    print_payload(
        payload, ("mix", "divergence_factor", "unsorted_us", "sorted_us")
    )
    by_mix = series_by(payload)
    # A uniform batch is the baseline; sorting recovers (almost) all of
    # the divergence penalty for the mixed batches.
    baseline = by_mix["single suite"]["sorted_us"]
    assert by_mix["four suites"]["unsorted_us"] > 3.5 * baseline
    assert by_mix["four suites"]["sorted_us"] < 1.2 * baseline
    assert by_mix["two suites"]["unsorted_us"] > 1.8 * baseline
    assert payload["bottleneck"] == "warp_divergence"
    assert_within_tolerance(payload)
