"""Section 5.5 ablation: warp divergence and the classify-and-sort fix.

The paper: "To avoid warp divergence for differentiated packet
processing (e.g., packet encryption with different cipher suites), one
may classify and sort packets to be grouped into separate warps."  This
bench quantifies the claim on the GPU model: a mixed-cipher IPsec batch
run as-arrived versus pre-sorted.
"""

import random


from conftest import print_table
from repro.hw.divergence import (
    divergence_report,
    divergent_execution_factor,
    sort_for_warps,
)
from repro.hw.gpu import GPUDevice, KernelSpec


def reproduce_divergence_ablation():
    rng = random.Random(55)
    device = GPUDevice()
    n = 3072
    rows = []
    for paths, mix_name in ((1, "single suite"), (2, "two suites"),
                            (4, "four suites")):
        labels = [rng.randrange(paths) for _ in range(n)]
        unsorted_factor = divergent_execution_factor(labels)
        sorted_labels = [labels[i] for i in sort_for_warps(labels)]
        sorted_factor = divergent_execution_factor(sorted_labels)
        time_unsorted = device.execution_time_ns(
            KernelSpec(name="mix", compute_cycles=400.0,
                       divergence_factor=unsorted_factor), n)
        time_sorted = device.execution_time_ns(
            KernelSpec(name="mix", compute_cycles=400.0,
                       divergence_factor=sorted_factor), n)
        rows.append((mix_name, unsorted_factor, time_unsorted / 1000,
                     time_sorted / 1000))
    return rows


def test_divergence_sort_ablation(benchmark):
    rows = benchmark(reproduce_divergence_ablation)
    print_table(
        "Section 5.5: mixed-suite kernel, as-arrived vs classify-and-sort",
        ("cipher mix", "divergence factor", "unsorted us", "sorted us"),
        rows,
    )
    by_mix = {row[0]: row for row in rows}
    # A uniform batch is the baseline; sorting recovers (almost) all of
    # the divergence penalty for the mixed batches.
    baseline = by_mix["single suite"][3]
    assert by_mix["four suites"][2] > 3.5 * baseline
    assert by_mix["four suites"][3] < 1.2 * baseline
    assert by_mix["two suites"][2] > 1.8 * baseline
