"""Figure 5: effect of batch processing — 64 B forwarding throughput of
one core with two 10 GbE ports, versus the I/O batch size.  Runs
through the perf registry and emits ``BENCH_fig5.json``."""

import pytest

from conftest import (
    assert_within_tolerance,
    print_payload,
    print_table,
    series_by,
)


def test_figure5_batching(benchmark, bench_payload):
    payload = benchmark(lambda: bench_payload("fig5"))
    print_payload(payload, ("batch", "gbps"))
    gbps = {batch: row["gbps"] for batch, row in series_by(payload).items()}
    # The paper's anchors: 0.78 Gbps packet-by-packet, 10.5 at 64,
    # speedup 13.5, gain stalling past 32.
    assert gbps[1] == pytest.approx(0.78, rel=0.02)
    assert gbps[64] == pytest.approx(10.5, rel=0.02)
    assert payload["headline"]["speedup_64"] == pytest.approx(13.5, rel=0.03)
    assert gbps[128] / gbps[64] < 1.15
    assert list(gbps.values()) == sorted(gbps.values())
    assert_within_tolerance(payload)


def test_figure5_ablations(benchmark, bench_payload):
    """The contributions behind the curve: software prefetch and the
    Section 4.4 queue-alignment fix, carried as headline metrics."""
    payload = benchmark(lambda: bench_payload("fig5"))
    headline = payload["headline"]
    print_table(
        "Figure 5 ablations: per-packet cycles at batch 64",
        ("configuration", "cycles/packet"),
        [
            ("optimized", headline["cycles_optimized"]),
            ("no prefetch", headline["cycles_no_prefetch"]),
            ("unaligned queues (8 cores)", headline["cycles_unaligned_8core"]),
        ],
    )
    assert headline["cycles_no_prefetch"] > headline["cycles_optimized"]
    assert headline["cycles_unaligned_8core"] == pytest.approx(
        headline["cycles_optimized"] * 1.2, rel=0.01
    )
