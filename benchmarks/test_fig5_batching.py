"""Figure 5: effect of batch processing — 64 B forwarding throughput of
one core with two 10 GbE ports, versus the I/O batch size."""

import pytest

from conftest import print_table
from repro.io_engine.batching import forwarding_pps_single_core
from repro.sim.metrics import pps_to_gbps

BATCH_SIZES = (1, 2, 4, 8, 16, 32, 64, 128)


def reproduce_figure5():
    return [
        (batch, pps_to_gbps(forwarding_pps_single_core(batch), 64))
        for batch in BATCH_SIZES
    ]


def test_figure5_batching(benchmark):
    rows = benchmark(reproduce_figure5)
    print_table(
        "Figure 5: single-core 64B forwarding vs batch size",
        ("batch", "Gbps"),
        rows,
    )
    gbps = dict(rows)
    # The paper's anchors: 0.78 Gbps packet-by-packet, 10.5 at 64,
    # speedup 13.5, gain stalling past 32.
    assert gbps[1] == pytest.approx(0.78, rel=0.02)
    assert gbps[64] == pytest.approx(10.5, rel=0.02)
    assert gbps[64] / gbps[1] == pytest.approx(13.5, rel=0.03)
    assert gbps[128] / gbps[64] < 1.15
    assert [g for _, g in rows] == sorted(g for _, g in rows)


def test_figure5_ablations(benchmark):
    """The contributions behind the curve: software prefetch and the
    Section 4.4 queue-alignment fix."""
    from repro.io_engine.batching import forwarding_cycles_per_packet

    def compute():
        base = forwarding_cycles_per_packet(64)
        return {
            "optimized": base,
            "no prefetch": forwarding_cycles_per_packet(64, prefetch=False),
            "unaligned queues (8 cores)": forwarding_cycles_per_packet(
                64, aligned_queues=False, num_cores=8
            ),
        }

    cycles = benchmark(compute)
    print_table(
        "Figure 5 ablations: per-packet cycles at batch 64",
        ("configuration", "cycles/packet"),
        list(cycles.items()),
    )
    assert cycles["no prefetch"] > cycles["optimized"]
    assert cycles["unaligned queues (8 cores)"] == pytest.approx(
        cycles["optimized"] * 1.2, rel=0.01
    )
