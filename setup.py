"""Setup shim; all metadata lives in pyproject.toml.

Kept because this offline environment lacks the ``wheel`` package that
PEP 660 editable installs require; ``python setup.py develop`` still works.
"""

from setuptools import setup

setup()
